//! Redundancy parameter algebra (paper §6.1, "Data Block Generation").
//!
//! A user enrolls `N` clouds and sets two requirements:
//!
//! * **Reliability** `K_r`: the data must survive with only `K_r` clouds
//!   reachable, so each cloud must permanently hold a *fair share* of
//!   `⌈k/K_r⌉` blocks.
//! * **Security** `K_s`: no coalition of `K_s − 1` clouds may reconstruct
//!   a file, so each cloud may hold at most `⌈k/(K_s−1)⌉ − 1` blocks
//!   (or all `k` when `K_s = 1`, i.e. no security requirement).
//!
//! [`RedundancyConfig`] validates `1 ≤ K_s ≤ K_r ≤ N`, checks the two
//! constraints are jointly satisfiable, and derives the block counts the
//! scheduler uses.

use std::fmt;

/// Validated redundancy parameters of a multi-cloud deployment.
///
/// # Examples
///
/// The paper's evaluation setting — 5 clouds, tolerate 2 down, no 1 cloud
/// can read the data, 3 data blocks per segment:
///
/// ```
/// use unidrive_erasure::RedundancyConfig;
///
/// # fn main() -> Result<(), unidrive_erasure::ConfigError> {
/// let cfg = RedundancyConfig::new(5, 3, 3, 2)?;
/// assert_eq!(cfg.fair_share(), 1);       // ⌈3/3⌉ blocks per cloud
/// assert_eq!(cfg.per_cloud_cap(), 2);    // ⌈3/1⌉ − 1
/// assert_eq!(cfg.normal_block_count(), 5);
/// assert_eq!(cfg.max_block_count(), 10); // over-provisioning budget: 5
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RedundancyConfig {
    clouds: usize,
    k: usize,
    k_r: usize,
    k_s: usize,
}

/// Error constructing a [`RedundancyConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Violates `1 ≤ K_s ≤ K_r ≤ N` or `k ≥ 1`.
    InvalidOrdering {
        /// Human-readable description of the violated relation.
        detail: String,
    },
    /// The security cap forbids even the fair share per cloud, so the two
    /// requirements cannot be met together.
    Infeasible {
        /// Required blocks per cloud.
        fair_share: usize,
        /// Allowed blocks per cloud.
        cap: usize,
    },
    /// More than 255 total blocks would be needed (GF(2⁸) limit).
    TooManyBlocks {
        /// Blocks the configuration implies.
        needed: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidOrdering { detail } => {
                write!(f, "invalid redundancy parameters: {detail}")
            }
            ConfigError::Infeasible { fair_share, cap } => write!(
                f,
                "reliability needs {fair_share} blocks per cloud but security allows {cap}"
            ),
            ConfigError::TooManyBlocks { needed } => {
                write!(f, "configuration implies {needed} blocks, limit is 255")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl RedundancyConfig {
    /// Creates and validates a configuration: `clouds` = N, `k` data
    /// blocks per segment, reliability `k_r`, security `k_s`.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`].
    pub fn new(clouds: usize, k: usize, k_r: usize, k_s: usize) -> Result<Self, ConfigError> {
        let bad = |detail: String| Err(ConfigError::InvalidOrdering { detail });
        if k == 0 {
            return bad("k must be at least 1".into());
        }
        if k_s < 1 {
            return bad("K_s must be at least 1".into());
        }
        if k_s > k_r {
            return bad(format!("K_s ({k_s}) must not exceed K_r ({k_r})"));
        }
        if k_r > clouds {
            return bad(format!("K_r ({k_r}) must not exceed N ({clouds})"));
        }
        let cfg = RedundancyConfig {
            clouds,
            k,
            k_r,
            k_s,
        };
        if cfg.fair_share() > cfg.per_cloud_cap() {
            return Err(ConfigError::Infeasible {
                fair_share: cfg.fair_share(),
                cap: cfg.per_cloud_cap(),
            });
        }
        if cfg.max_block_count() > 255 {
            return Err(ConfigError::TooManyBlocks {
                needed: cfg.max_block_count(),
            });
        }
        Ok(cfg)
    }

    /// The paper's evaluation defaults: N = 5, k = 3, K_r = 3, K_s = 2.
    pub fn paper_default() -> Self {
        RedundancyConfig::new(5, 3, 3, 2).expect("paper defaults are valid")
    }

    /// Number of enrolled clouds (N).
    pub fn clouds(&self) -> usize {
        self.clouds
    }

    /// Data blocks per segment (k).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reliability parameter: any `K_r` clouds suffice to reconstruct.
    pub fn k_r(&self) -> usize {
        self.k_r
    }

    /// Security parameter: no `K_s − 1` clouds can reconstruct.
    pub fn k_s(&self) -> usize {
        self.k_s
    }

    /// Blocks every cloud must eventually hold: `⌈k/K_r⌉`.
    pub fn fair_share(&self) -> usize {
        ceil_div(self.k, self.k_r)
    }

    /// Most blocks any cloud may ever hold: `⌈k/(K_s−1)⌉ − 1`, or `k`
    /// when `K_s = 1`.
    pub fn per_cloud_cap(&self) -> usize {
        if self.k_s == 1 {
            self.k
        } else {
            ceil_div(self.k, self.k_s - 1) - 1
        }
    }

    /// Normal (deterministically scheduled) parity blocks: fair share on
    /// every cloud.
    pub fn normal_block_count(&self) -> usize {
        self.fair_share() * self.clouds
    }

    /// Total blocks the code must be able to produce, including
    /// over-provisioned ones: per-cloud cap on every cloud.
    pub fn max_block_count(&self) -> usize {
        self.per_cloud_cap() * self.clouds
    }

    /// How many over-provisioned parity blocks may exist beyond the
    /// normal ones.
    pub fn overprovision_budget(&self) -> usize {
        self.max_block_count() - self.normal_block_count()
    }

    /// Re-derives the configuration for a different cloud count, keeping
    /// k, K_r, K_s (used when the user adds or removes a CCS).
    ///
    /// # Errors
    ///
    /// Same as [`RedundancyConfig::new`] — in particular removing clouds
    /// below `K_r` is invalid.
    pub fn with_clouds(&self, clouds: usize) -> Result<Self, ConfigError> {
        RedundancyConfig::new(clouds, self.k, self.k_r, self.k_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_compute_paper_numbers() {
        let cfg = RedundancyConfig::paper_default();
        assert_eq!(cfg.fair_share(), 1);
        assert_eq!(cfg.per_cloud_cap(), 2);
        assert_eq!(cfg.normal_block_count(), 5);
        assert_eq!(cfg.max_block_count(), 10);
        assert_eq!(cfg.overprovision_budget(), 5);
    }

    #[test]
    fn ordering_violations_rejected() {
        assert!(RedundancyConfig::new(5, 3, 2, 3).is_err()); // Ks > Kr
        assert!(RedundancyConfig::new(3, 3, 4, 2).is_err()); // Kr > N
        assert!(RedundancyConfig::new(5, 0, 3, 2).is_err()); // k = 0
        assert!(RedundancyConfig::new(5, 3, 3, 0).is_err()); // Ks = 0
    }

    #[test]
    fn infeasible_combination_detected() {
        // k=4, Kr=4 -> fair share 1. k=4, Ks=3 -> cap ⌈4/2⌉-1 = 1. Feasible.
        assert!(RedundancyConfig::new(5, 4, 4, 3).is_ok());
        // k=2, Ks=3 -> cap ⌈2/2⌉-1 = 0 < fair share 1. Infeasible.
        let err = RedundancyConfig::new(5, 2, 3, 3).unwrap_err();
        assert!(matches!(err, ConfigError::Infeasible { fair_share: 1, cap: 0 }));
    }

    #[test]
    fn security_property_holds_for_valid_configs() {
        // (K_s − 1) × cap < k for every accepted configuration: no K_s−1
        // clouds can gather k blocks.
        for n in 1..=8 {
            for k in 1..=12 {
                for k_r in 1..=n {
                    for k_s in 1..=k_r {
                        if let Ok(cfg) = RedundancyConfig::new(n, k, k_r, k_s) {
                            assert!(
                                (k_s - 1) * cfg.per_cloud_cap() < k,
                                "security violated for N={n} k={k} Kr={k_r} Ks={k_s}"
                            );
                            assert!(
                                k_r * cfg.fair_share() >= k,
                                "reliability violated for N={n} k={k} Kr={k_r} Ks={k_s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn no_security_requirement_allows_full_replication() {
        let cfg = RedundancyConfig::new(3, 4, 1, 1).unwrap();
        assert_eq!(cfg.per_cloud_cap(), 4);
        assert_eq!(cfg.fair_share(), 4);
        assert_eq!(cfg.overprovision_budget(), 0);
    }

    #[test]
    fn gf_block_limit_enforced() {
        // 200 clouds x cap 2 = 400 blocks > 255.
        assert!(matches!(
            RedundancyConfig::new(200, 3, 3, 2).unwrap_err(),
            ConfigError::TooManyBlocks { .. }
        ));
    }

    #[test]
    fn with_clouds_revalidates() {
        let cfg = RedundancyConfig::paper_default();
        assert!(cfg.with_clouds(6).is_ok());
        assert!(cfg.with_clouds(2).is_err()); // below K_r
    }

    #[test]
    fn storage_efficiency_beats_replication() {
        // The paper's intro example: 3 clouds, tolerate 1 down. With
        // erasure coding across clouds, storing D bytes costs
        // fair_share × N / k = 1.5 D (k=2, Kr=2) versus 2 D with
        // replication on two clouds.
        let cfg = RedundancyConfig::new(3, 2, 2, 1).unwrap();
        let stored_fraction =
            cfg.normal_block_count() as f64 / cfg.k() as f64;
        assert_eq!(stored_fraction, 1.5);
    }
}
