//! # unidrive-baseline
//!
//! The three comparison systems of the UniDrive evaluation (paper §7.1):
//!
//! * [`SingleCloudClient`] — a native CCS app's transfer engine: chunked
//!   multi-connection transfer to one cloud.
//! * [`IntuitiveMultiCloud`] — file parts handed to N native apps; no
//!   redundancy, completion dominated by the slowest cloud.
//! * [`MultiCloudBenchmark`] — RACS/DepSky-style: erasure-coded, evenly
//!   distributed, statically scheduled (no over-provisioning, no dynamic
//!   scheduling).
//! * [`UniDriveTransfer`] — UniDrive's own data plane behind the same
//!   interface so the harness can compare all four uniformly.
//!
//! All three baselines run on the same pull-based
//! [`TransferEngine`](unidrive_core::TransferEngine) as UniDrive's own
//! data plane — only their [`TransferPolicy`](unidrive_core::TransferPolicy)
//! differs (static plans instead of dynamic scheduling), which keeps the
//! comparison about *scheduling*, not about transfer-loop plumbing, and
//! gives them the same retry and observability wiring for free.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmark;
mod intuitive;
mod planned;
mod single;
mod unidrive_transfer;

pub use benchmark::{MultiCloudBenchmark, SegmentManifest};
pub use intuitive::IntuitiveMultiCloud;
pub use single::SingleCloudClient;
pub use unidrive_transfer::UniDriveTransfer;
