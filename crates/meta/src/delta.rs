//! Delta-sync: the log-structured metadata *delta* file (paper §5.2,
//! "Delta-sync for Efficiency").
//!
//! The gross metadata grows with the number of files, so UniDrive splits
//! it HDFS-style into a **base** (a full [`SyncFolderImage`] snapshot)
//! and a **delta** — an append-only log of [`DeltaRecord`]s since that
//! base. Normally only the delta travels; when it outgrows the threshold
//! λ it is merged into a new base by the lock holder.

use unidrive_util::bytes::Bytes;
use unidrive_crypto::Digest;

use crate::codec::{DecodeError, Reader, Writer};
use crate::model::{decode_snapshot, encode_snapshot};
use crate::{BlockRef, SegmentId, Snapshot, SyncFolderImage, VersionStamp};

const DELTA_MAGIC: [u8; 4] = *b"UDDL";
const DELTA_VERSION: u8 = 1;

/// One log-structured update to the metadata image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaRecord {
    /// A file was created or replaced.
    UpsertFile {
        /// Sync-folder-relative path.
        path: String,
        /// The new snapshot.
        snapshot: Snapshot,
    },
    /// A file was deleted.
    DeleteFile {
        /// Sync-folder-relative path.
        path: String,
    },
    /// A segment entered the pool.
    EnsureSegment {
        /// Content-addressed id.
        id: SegmentId,
        /// Plaintext length.
        len: u64,
    },
    /// A block finished uploading somewhere.
    AddBlock {
        /// Segment the block belongs to.
        id: SegmentId,
        /// Location.
        block: BlockRef,
    },
    /// A block was removed (over-provision cleanup, cloud removal).
    RemoveBlock {
        /// Segment the block belonged to.
        id: SegmentId,
        /// Former location.
        block: BlockRef,
    },
    /// A conflict copy was attached to a file.
    AttachConflict {
        /// Contested path.
        path: String,
        /// Device whose version was retained.
        device: String,
        /// The retained snapshot.
        snapshot: Snapshot,
    },
}

/// The delta file: every change since `base` (identified by its version
/// stamp), in commit order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaLog {
    /// Version of the base image this log applies to.
    pub base: VersionStamp,
    /// Version after applying the log (the latest committed version).
    pub head: VersionStamp,
    /// Updates in order.
    pub records: Vec<DeltaRecord>,
}

impl DeltaLog {
    /// An empty log on top of `base`.
    pub fn new(base: VersionStamp) -> Self {
        DeltaLog {
            head: base.clone(),
            base,
            records: Vec::new(),
        }
    }

    /// Appends records and advances the head version.
    pub fn append(&mut self, records: impl IntoIterator<Item = DeltaRecord>, head: VersionStamp) {
        self.records.extend(records);
        self.head = head;
    }

    /// Applies every record to `image` in order, leaving its version at
    /// the log head.
    pub fn apply_to(&self, image: &mut SyncFolderImage) {
        for record in &self.records {
            apply_record(image, record);
        }
        image.version = self.head.clone();
    }

    /// Whether the delta has outgrown the paper's threshold
    /// λ = max(`ratio` × base size, `floor_bytes`) and should be merged
    /// into a new base. The paper uses ratio 0.25 and floor 10 KB.
    pub fn should_compact(&self, base_size: usize, ratio: f64, floor_bytes: usize) -> bool {
        let threshold = ((base_size as f64 * ratio) as usize).max(floor_bytes);
        self.encoded_len() > threshold
    }

    /// Size of the serialized log.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Serializes the log.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_header(DELTA_MAGIC, DELTA_VERSION);
        encode_stamp(&mut w, &self.base);
        encode_stamp(&mut w, &self.head);
        w.put_u32(self.records.len() as u32);
        for r in &self.records {
            encode_record(&mut w, r);
        }
        w.finish()
    }

    /// Deserializes a log.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on corruption or unknown record kinds.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(data, DELTA_MAGIC, DELTA_VERSION)?;
        let base = decode_stamp(&mut r)?;
        let head = decode_stamp(&mut r)?;
        let count = r.get_u32("record count")?;
        let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            records.push(decode_record(&mut r)?);
        }
        Ok(DeltaLog {
            base,
            head,
            records,
        })
    }

    /// Extracts the records that turn `from` into `to` (plus the pool
    /// bookkeeping both sides need). This is what a committer appends
    /// after merging.
    pub fn records_for(from: &SyncFolderImage, to: &SyncFolderImage) -> Vec<DeltaRecord> {
        let mut records = Vec::new();
        // Pool first so file records find their segments.
        for (id, entry) in to.segments() {
            match from.segment(id) {
                None => {
                    records.push(DeltaRecord::EnsureSegment {
                        id: *id,
                        len: entry.len,
                    });
                    for b in &entry.blocks {
                        records.push(DeltaRecord::AddBlock { id: *id, block: *b });
                    }
                }
                Some(old) => {
                    for b in &entry.blocks {
                        if !old.blocks.contains(b) {
                            records.push(DeltaRecord::AddBlock { id: *id, block: *b });
                        }
                    }
                    for b in &old.blocks {
                        if !entry.blocks.contains(b) {
                            records.push(DeltaRecord::RemoveBlock { id: *id, block: *b });
                        }
                    }
                }
            }
        }
        let delta = crate::diff(from, to);
        for (path, change) in delta.iter() {
            match change {
                crate::EntryChange::Upsert(snapshot) => records.push(DeltaRecord::UpsertFile {
                    path: path.to_owned(),
                    snapshot: snapshot.clone(),
                }),
                crate::EntryChange::Delete => records.push(DeltaRecord::DeleteFile {
                    path: path.to_owned(),
                }),
            }
        }
        // Conflict attachments that appeared.
        for (path, entry) in to.files() {
            if let Some((device, snapshot)) = &entry.conflict {
                let existed = from
                    .file(path)
                    .and_then(|e| e.conflict.as_ref())
                    .is_some_and(|(d, s)| d == device && s == snapshot);
                if !existed {
                    records.push(DeltaRecord::AttachConflict {
                        path: path.to_owned(),
                        device: device.clone(),
                        snapshot: snapshot.clone(),
                    });
                }
            }
        }
        records
    }
}

/// Applies one record to `image` (shared by [`DeltaLog::apply_to`] and
/// the oplog fold in [`crate::op`]).
pub(crate) fn apply_record(image: &mut SyncFolderImage, record: &DeltaRecord) {
    match record {
        DeltaRecord::UpsertFile { path, snapshot } => {
            for id in &snapshot.segments {
                image.ensure_segment_if_absent(*id);
            }
            image.upsert_file(path, snapshot.clone());
        }
        DeltaRecord::DeleteFile { path } => {
            image.delete_file(path);
        }
        DeltaRecord::EnsureSegment { id, len } => {
            image.ensure_segment(*id, *len);
        }
        DeltaRecord::AddBlock { id, block } => {
            image.record_block(*id, *block);
        }
        DeltaRecord::RemoveBlock { id, block } => {
            image.remove_block(id, *block);
        }
        DeltaRecord::AttachConflict {
            path,
            device,
            snapshot,
        } => {
            for id in &snapshot.segments {
                image.ensure_segment_if_absent(*id);
            }
            if image.file(path).is_some() {
                image.attach_conflict(path, device, snapshot.clone());
            }
        }
    }
}

/// Encodes one record with its wire tag (shared with the op codec).
pub(crate) fn encode_record(w: &mut Writer, r: &DeltaRecord) {
    match r {
        DeltaRecord::UpsertFile { path, snapshot } => {
            w.put_u8(0);
            w.put_str(path);
            encode_snapshot(w, snapshot);
        }
        DeltaRecord::DeleteFile { path } => {
            w.put_u8(1);
            w.put_str(path);
        }
        DeltaRecord::EnsureSegment { id, len } => {
            w.put_u8(2);
            w.put_fixed(id.0.as_bytes());
            w.put_u64(*len);
        }
        DeltaRecord::AddBlock { id, block } => {
            w.put_u8(3);
            w.put_fixed(id.0.as_bytes());
            w.put_u16(block.index);
            w.put_u16(block.cloud);
        }
        DeltaRecord::RemoveBlock { id, block } => {
            w.put_u8(4);
            w.put_fixed(id.0.as_bytes());
            w.put_u16(block.index);
            w.put_u16(block.cloud);
        }
        DeltaRecord::AttachConflict {
            path,
            device,
            snapshot,
        } => {
            w.put_u8(5);
            w.put_str(path);
            w.put_str(device);
            encode_snapshot(w, snapshot);
        }
    }
}

/// Decodes one tagged record (shared with the op codec).
pub(crate) fn decode_record(r: &mut Reader<'_>) -> Result<DeltaRecord, DecodeError> {
    let kind = r.get_u8("record kind")?;
    Ok(match kind {
        0 => DeltaRecord::UpsertFile {
            path: r.get_str("path")?,
            snapshot: decode_snapshot(r)?,
        },
        1 => DeltaRecord::DeleteFile {
            path: r.get_str("path")?,
        },
        2 => DeltaRecord::EnsureSegment {
            id: SegmentId(Digest(r.get_fixed::<20>("segment id")?)),
            len: r.get_u64("segment len")?,
        },
        3 => DeltaRecord::AddBlock {
            id: SegmentId(Digest(r.get_fixed::<20>("segment id")?)),
            block: BlockRef {
                index: r.get_u16("block index")?,
                cloud: r.get_u16("block cloud")?,
            },
        },
        4 => DeltaRecord::RemoveBlock {
            id: SegmentId(Digest(r.get_fixed::<20>("segment id")?)),
            block: BlockRef {
                index: r.get_u16("block index")?,
                cloud: r.get_u16("block cloud")?,
            },
        },
        5 => DeltaRecord::AttachConflict {
            path: r.get_str("path")?,
            device: r.get_str("device")?,
            snapshot: decode_snapshot(r)?,
        },
        other => {
            return Err(DecodeError::BadVersion { found: other });
        }
    })
}

pub(crate) fn encode_stamp(w: &mut Writer, v: &VersionStamp) {
    w.put_str(&v.device);
    w.put_u64(v.counter);
    w.put_u64(v.timestamp_ns);
}

pub(crate) fn decode_stamp(r: &mut Reader<'_>) -> Result<VersionStamp, DecodeError> {
    Ok(VersionStamp {
        device: r.get_str("stamp device")?,
        counter: r.get_u64("stamp counter")?,
        timestamp_ns: r.get_u64("stamp timestamp")?,
    })
}

/// Helper used by [`DeltaLog::apply_to`]: register a segment with an
/// unknown length (length arrives with its `EnsureSegment` record; this
/// placeholder only keeps `upsert_file` sound when records are applied
/// out of original order).
impl SyncFolderImage {
    pub(crate) fn ensure_segment_if_absent(&mut self, id: SegmentId) {
        if self.segment(&id).is_none() {
            self.ensure_segment(id, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_crypto::Sha1;

    fn seg(tag: &str) -> SegmentId {
        SegmentId(Sha1::digest(tag.as_bytes()))
    }

    fn snap(tag: &str) -> Snapshot {
        Snapshot {
            mtime_ns: 0,
            size: 10,
            segments: vec![seg(tag)],
        }
    }

    fn stamp(device: &str, counter: u64) -> VersionStamp {
        VersionStamp {
            device: device.into(),
            counter,
            timestamp_ns: counter * 100,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut log = DeltaLog::new(stamp("a", 1));
        log.append(
            vec![
                DeltaRecord::EnsureSegment {
                    id: seg("s"),
                    len: 10,
                },
                DeltaRecord::AddBlock {
                    id: seg("s"),
                    block: BlockRef { index: 1, cloud: 2 },
                },
                DeltaRecord::UpsertFile {
                    path: "f.txt".into(),
                    snapshot: snap("s"),
                },
                DeltaRecord::DeleteFile { path: "g".into() },
                DeltaRecord::RemoveBlock {
                    id: seg("s"),
                    block: BlockRef { index: 1, cloud: 2 },
                },
                DeltaRecord::AttachConflict {
                    path: "f.txt".into(),
                    device: "phone".into(),
                    snapshot: snap("s"),
                },
            ],
            stamp("a", 2),
        );
        assert_eq!(DeltaLog::decode(&log.encode()).unwrap(), log);
    }

    #[test]
    fn applying_log_reproduces_target_image() {
        let from = {
            let mut img = SyncFolderImage::new();
            img.ensure_segment(seg("old"), 10);
            img.upsert_file("stay.txt", snap("old"));
            img.upsert_file("gone.txt", snap("old"));
            img.version = stamp("a", 1);
            img
        };
        let to = {
            let mut img = from.clone();
            img.delete_file("gone.txt");
            img.ensure_segment(seg("new"), 12);
            img.upsert_file("fresh.txt", snap("new"));
            img.record_block(seg("new"), BlockRef { index: 0, cloud: 3 });
            img.collect_garbage();
            img.version = stamp("a", 2);
            img
        };

        let mut log = DeltaLog::new(stamp("a", 1));
        log.append(DeltaLog::records_for(&from, &to), stamp("a", 2));

        let mut rebuilt = from.clone();
        log.apply_to(&mut rebuilt);
        rebuilt.collect_garbage();
        assert_eq!(rebuilt.version, to.version);
        assert_eq!(
            rebuilt.files().map(|(p, _)| p).collect::<Vec<_>>(),
            to.files().map(|(p, _)| p).collect::<Vec<_>>()
        );
        assert_eq!(
            rebuilt.segment(&seg("new")).unwrap().blocks,
            to.segment(&seg("new")).unwrap().blocks
        );
    }

    #[test]
    fn compaction_threshold_uses_ratio_and_floor() {
        let mut log = DeltaLog::new(stamp("a", 1));
        // Tiny log: never compacts against a 10 KB floor.
        assert!(!log.should_compact(1_000_000, 0.25, 10_240));
        // Grow the log past 10 KB.
        let records: Vec<DeltaRecord> = (0..500)
            .map(|i| DeltaRecord::UpsertFile {
                path: format!("dir/file-{i:04}.dat"),
                snapshot: snap(&format!("s{i}")),
            })
            .collect();
        log.append(records, stamp("a", 2));
        assert!(log.encoded_len() > 10_240);
        // Small base: floor dominates -> compact.
        assert!(log.should_compact(1_000, 0.25, 10_240));
        // Huge base: ratio dominates -> not yet.
        assert!(!log.should_compact(100_000_000, 0.25, 10_240));
    }

    #[test]
    fn delta_is_much_smaller_than_base_for_small_updates() {
        // The premise of Fig. 13: transferring the delta beats
        // re-transferring the whole image.
        let mut img = SyncFolderImage::new();
        for i in 0..1024 {
            let tag = format!("s{i}");
            img.ensure_segment(seg(&tag), 100_000);
            img.upsert_file(&format!("files/doc-{i:04}.bin"), snap(&tag));
        }
        let base_size = img.encode().len();

        let mut log = DeltaLog::new(stamp("a", 1));
        log.append(
            vec![
                DeltaRecord::EnsureSegment {
                    id: seg("new"),
                    len: 100_000,
                },
                DeltaRecord::UpsertFile {
                    path: "files/doc-0001.bin".into(),
                    snapshot: snap("new"),
                },
            ],
            stamp("a", 2),
        );
        let delta_size = log.encoded_len();
        assert!(
            base_size > delta_size * 50,
            "base {base_size} should dwarf delta {delta_size}"
        );
    }

    #[test]
    fn unknown_record_kind_rejected() {
        let mut log_bytes = DeltaLog::new(stamp("a", 1)).encode().to_vec();
        // Append a bogus record by hand: bump count and kind byte, then
        // re-checksum by re-encoding through the Writer is complex, so
        // just corrupt and expect checksum rejection.
        let n = log_bytes.len();
        log_bytes[n - 9] ^= 0xFF;
        assert!(DeltaLog::decode(&log_bytes).is_err());
    }
}
