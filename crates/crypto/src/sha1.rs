//! SHA-1, implemented from FIPS 180-1.
//!
//! UniDrive content-addresses segments by the SHA-1 of their bytes
//! (paper §6.1): identical content — even across files — maps to the
//! same segment name, enabling deduplication and transfer suppression.
//! (SHA-1 is cryptographically broken for collision resistance today; we
//! implement it because it is what the paper specifies. Nothing in the
//! design depends on collision resistance against adversarial inputs.)

use std::fmt;

/// SHA-NI (`sha1rnds4`/`sha1nexte`/`sha1msg1`/`sha1msg2`) compression,
/// four rounds per instruction with the message schedule computed in
/// xmm registers. Follows Intel's published round grouping; used only
/// when the CPU reports the `sha` feature at runtime, with the scalar
/// [`Sha1::compress`] as the portable fallback. Output is
/// bit-identical (both implement FIPS 180-1).
#[cfg(target_arch = "x86_64")]
mod shani {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_extract_epi32, _mm_loadu_si128, _mm_set_epi32,
        _mm_set_epi64x, _mm_setzero_si128, _mm_sha1msg1_epu32, _mm_sha1msg2_epu32,
        _mm_sha1nexte_epu32, _mm_sha1rnds4_epu32, _mm_shuffle_epi32, _mm_shuffle_epi8,
        _mm_storeu_si128, _mm_xor_si128,
    };

    /// Whether the SHA-NI kernel may be used on this CPU.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Compresses every 64-byte block of `blocks` into `state`.
    ///
    /// # Safety
    ///
    /// The CPU must support SHA-NI, SSSE3 and SSE4.1 (check
    /// [`available`]). `blocks.len()` must be a multiple of 64.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    // The uniform four-round macro leaves dead schedule writes in the
    // last three groups (see its comment); keeping the macro uniform
    // beats special-casing the tail.
    #[allow(unused_assignments)]
    pub unsafe fn compress_blocks(state: &mut [u32; 5], blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        // Byte shuffle turning little-endian loads into the big-endian
        // words FIPS 180-1 specifies.
        let be_mask = _mm_set_epi64x(0x0001020304050607, 0x08090a0b0c0d0e0f);
        // SAFETY (all intrinsic calls below): `state` is 5 valid u32s
        // (the first 4 loaded/stored as one unaligned vector) and every
        // block pointer offset stays within `blocks` by the length
        // precondition; unaligned loads/stores are used throughout.
        let mut abcd = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        let mut e0 = _mm_set_epi32(state[4] as i32, 0, 0, 0);
        let mut e1;
        let mut msg0 = _mm_setzero_si128();
        let mut msg1 = _mm_setzero_si128();
        let mut msg2 = _mm_setzero_si128();
        let mut msg3 = _mm_setzero_si128();

        for block in blocks.chunks_exact(64) {
            let p = block.as_ptr();
            let abcd_save = abcd;
            let e_save = e0;

            // One macro invocation = four rounds. `$m0` is this
            // group's schedule words; the trailing msg1/msg2/xor ops
            // prepare the words three groups ahead (they run on dead
            // values in the last groups, which is harmless).
            macro_rules! qround {
                ($ecur:ident, $eoth:ident, $m0:ident, $m1:ident, $m2:ident, $m3:ident,
                 $k:literal) => {
                    $ecur = _mm_sha1nexte_epu32($ecur, $m0);
                    $eoth = abcd;
                    $m1 = _mm_sha1msg2_epu32($m1, $m0);
                    abcd = _mm_sha1rnds4_epu32::<$k>(abcd, $ecur);
                    $m3 = _mm_sha1msg1_epu32($m3, $m0);
                    $m2 = _mm_xor_si128($m2, $m0);
                };
            }

            // Rounds 0-3: the initial e is added, not sha1nexte'd.
            msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p.cast::<__m128i>()), be_mask);
            e0 = _mm_add_epi32(e0, msg0);
            e1 = abcd;
            abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);

            msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast::<__m128i>()), be_mask);
            qround!(e1, e0, msg1, msg2, msg3, msg0, 0);
            msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast::<__m128i>()), be_mask);
            qround!(e0, e1, msg2, msg3, msg0, msg1, 0);
            msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast::<__m128i>()), be_mask);
            qround!(e1, e0, msg3, msg0, msg1, msg2, 0);
            qround!(e0, e1, msg0, msg1, msg2, msg3, 0);
            qround!(e1, e0, msg1, msg2, msg3, msg0, 1);
            qround!(e0, e1, msg2, msg3, msg0, msg1, 1);
            qround!(e1, e0, msg3, msg0, msg1, msg2, 1);
            qround!(e0, e1, msg0, msg1, msg2, msg3, 1);
            qround!(e1, e0, msg1, msg2, msg3, msg0, 1);
            qround!(e0, e1, msg2, msg3, msg0, msg1, 2);
            qround!(e1, e0, msg3, msg0, msg1, msg2, 2);
            qround!(e0, e1, msg0, msg1, msg2, msg3, 2);
            qround!(e1, e0, msg1, msg2, msg3, msg0, 2);
            qround!(e0, e1, msg2, msg3, msg0, msg1, 2);
            qround!(e1, e0, msg3, msg0, msg1, msg2, 3);
            qround!(e0, e1, msg0, msg1, msg2, msg3, 3);
            qround!(e1, e0, msg1, msg2, msg3, msg0, 3);
            qround!(e0, e1, msg2, msg3, msg0, msg1, 3);
            qround!(e1, e0, msg3, msg0, msg1, msg2, 3);

            e0 = _mm_sha1nexte_epu32(e0, e_save);
            abcd = _mm_add_epi32(abcd, abcd_save);
        }

        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), abcd);
        state[4] = _mm_extract_epi32::<3>(e0) as u32;
    }
}

/// A 160-bit SHA-1 digest.
///
/// # Examples
///
/// ```
/// use unidrive_crypto::Sha1;
///
/// let d = Sha1::digest(b"abc");
/// assert_eq!(d.to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Lowercase hex representation (40 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Parses a 40-char hex string.
    ///
    /// Returns `None` for malformed input.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for i in 0..20 {
            out[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Digest(out))
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use unidrive_crypto::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), Sha1::digest(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress_many(&block);
                self.buffer_len = 0;
            }
        }
        let aligned_len = rest.len() - rest.len() % 64;
        let (aligned, tail) = rest.split_at(aligned_len);
        if !aligned.is_empty() {
            self.compress_many(aligned);
        }
        rest = tail;
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Pad on the stack: 0x80, zeros, then the big-endian bit length
        // in the last 8 bytes — spilling into a second block when fewer
        // than 8 length bytes remain after the 0x80 marker.
        let mut block = [0u8; 64];
        block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
        block[self.buffer_len] = 0x80;
        if self.buffer_len >= 56 {
            self.compress_many(&block);
            block = [0u8; 64];
        }
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress_many(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Compresses a run of whole 64-byte blocks, dispatching to the
    /// SHA-NI kernel when the CPU supports it (`len % 64 == 0` holds at
    /// every call site by construction).
    fn compress_many(&mut self, blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY: `available()` just confirmed the required CPU
            // features, and the length precondition is the caller's.
            unsafe { shani::compress_blocks(&mut self.state, blocks) };
            return;
        }
        for block in blocks.chunks_exact(64) {
            self.compress(block.try_into().expect("64-byte chunk"));
        }
    }

    // The final rounds' schedule stores are dead by construction; the
    // `sch!` macro stays uniform instead of special-casing them.
    #[allow(unused_assignments)]
    fn compress(&mut self, block: &[u8; 64]) {
        // Rolling 16-word message schedule: w[i] for i ≥ 16 only ever
        // reads words from the previous 16 positions, so the schedule
        // lives in 16 registers-worth of state instead of an 80-word
        // array, and the rounds are fully unrolled with the working
        // variables rotating through fixed names (no per-round
        // shuffle, no per-round stage dispatch).
        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        // Schedule word i (i ≥ 16), stored back into the rolling window.
        macro_rules! sch {
            ($i:expr) => {{
                let t = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                    .rotate_left(1);
                w[$i & 15] = t;
                t
            }};
        }
        macro_rules! step {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:expr, $k:expr, $wi:expr) => {{
                let wi = $wi;
                $e = $e
                    .wrapping_add($a.rotate_left(5))
                    .wrapping_add($f)
                    .wrapping_add($k)
                    .wrapping_add(wi);
                $b = $b.rotate_left(30);
            }};
        }
        macro_rules! r {
            // Ch and Maj in their 3-operation forms:
            // (b&c)|(!b&d) = d ^ (b & (c^d));
            // (b&c)|(b&d)|(c&d) = (b&c) | (d & (b^c)).
            (ch $a:ident $b:ident $c:ident $d:ident $e:ident, $wi:expr) => {
                step!($a, $b, $c, $d, $e, $d ^ ($b & ($c ^ $d)), 0x5A827999u32, $wi)
            };
            (p1 $a:ident $b:ident $c:ident $d:ident $e:ident, $wi:expr) => {
                step!($a, $b, $c, $d, $e, $b ^ $c ^ $d, 0x6ED9EBA1u32, $wi)
            };
            (maj $a:ident $b:ident $c:ident $d:ident $e:ident, $wi:expr) => {
                step!(
                    $a,
                    $b,
                    $c,
                    $d,
                    $e,
                    ($b & $c) | ($d & ($b ^ $c)),
                    0x8F1BBCDCu32,
                    $wi
                )
            };
            (p2 $a:ident $b:ident $c:ident $d:ident $e:ident, $wi:expr) => {
                step!($a, $b, $c, $d, $e, $b ^ $c ^ $d, 0xCA62C1D6u32, $wi)
            };
        }

        r!(ch a b c d e, w[0]);
        r!(ch e a b c d, w[1]);
        r!(ch d e a b c, w[2]);
        r!(ch c d e a b, w[3]);
        r!(ch b c d e a, w[4]);
        r!(ch a b c d e, w[5]);
        r!(ch e a b c d, w[6]);
        r!(ch d e a b c, w[7]);
        r!(ch c d e a b, w[8]);
        r!(ch b c d e a, w[9]);
        r!(ch a b c d e, w[10]);
        r!(ch e a b c d, w[11]);
        r!(ch d e a b c, w[12]);
        r!(ch c d e a b, w[13]);
        r!(ch b c d e a, w[14]);
        r!(ch a b c d e, w[15]);
        r!(ch e a b c d, sch!(16));
        r!(ch d e a b c, sch!(17));
        r!(ch c d e a b, sch!(18));
        r!(ch b c d e a, sch!(19));

        r!(p1 a b c d e, sch!(20));
        r!(p1 e a b c d, sch!(21));
        r!(p1 d e a b c, sch!(22));
        r!(p1 c d e a b, sch!(23));
        r!(p1 b c d e a, sch!(24));
        r!(p1 a b c d e, sch!(25));
        r!(p1 e a b c d, sch!(26));
        r!(p1 d e a b c, sch!(27));
        r!(p1 c d e a b, sch!(28));
        r!(p1 b c d e a, sch!(29));
        r!(p1 a b c d e, sch!(30));
        r!(p1 e a b c d, sch!(31));
        r!(p1 d e a b c, sch!(32));
        r!(p1 c d e a b, sch!(33));
        r!(p1 b c d e a, sch!(34));
        r!(p1 a b c d e, sch!(35));
        r!(p1 e a b c d, sch!(36));
        r!(p1 d e a b c, sch!(37));
        r!(p1 c d e a b, sch!(38));
        r!(p1 b c d e a, sch!(39));

        r!(maj a b c d e, sch!(40));
        r!(maj e a b c d, sch!(41));
        r!(maj d e a b c, sch!(42));
        r!(maj c d e a b, sch!(43));
        r!(maj b c d e a, sch!(44));
        r!(maj a b c d e, sch!(45));
        r!(maj e a b c d, sch!(46));
        r!(maj d e a b c, sch!(47));
        r!(maj c d e a b, sch!(48));
        r!(maj b c d e a, sch!(49));
        r!(maj a b c d e, sch!(50));
        r!(maj e a b c d, sch!(51));
        r!(maj d e a b c, sch!(52));
        r!(maj c d e a b, sch!(53));
        r!(maj b c d e a, sch!(54));
        r!(maj a b c d e, sch!(55));
        r!(maj e a b c d, sch!(56));
        r!(maj d e a b c, sch!(57));
        r!(maj c d e a b, sch!(58));
        r!(maj b c d e a, sch!(59));

        r!(p2 a b c d e, sch!(60));
        r!(p2 e a b c d, sch!(61));
        r!(p2 d e a b c, sch!(62));
        r!(p2 c d e a b, sch!(63));
        r!(p2 b c d e a, sch!(64));
        r!(p2 a b c d e, sch!(65));
        r!(p2 e a b c d, sch!(66));
        r!(p2 d e a b c, sch!(67));
        r!(p2 c d e a b, sch!(68));
        r!(p2 b c d e a, sch!(69));
        r!(p2 a b c d e, sch!(70));
        r!(p2 e a b c d, sch!(71));
        r!(p2 d e a b c, sch!(72));
        r!(p2 c d e a b, sch!(73));
        r!(p2 b c d e a, sch!(74));
        r!(p2 a b c d e, sch!(75));
        r!(p2 e a b c d, sch!(76));
        r!(p2 d e a b c, sch!(77));
        r!(p2 c d e a b, sch!(78));
        r!(p2 b c d e a, sch!(79));

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        let cases = [
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(Sha1::digest(input.as_bytes()).to_hex(), expect, "{input:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Messages whose final block leaves 0..8 bytes after the 0x80
        // marker exercise the two-block padding spill; references from
        // Python's hashlib.
        let cases = [
            (55, "c1c8bbdc22796e28c0e15163d20899b65621d65a"),
            (56, "c2db330f6083854c99d4b5bfb6e8f29f201be699"),
            (57, "f08f24908d682555111be7ff6f004e78283d989a"),
            (63, "03f09f5b158a7a8cdad920bddc29b81c18a551f5"),
            (64, "0098ba824b5c16427bd7a1122a5a442a25ec644d"),
            (65, "11655326c708d70319be2610e8a57d9a5b959d3b"),
        ];
        for (len, expect) in cases {
            assert_eq!(Sha1::digest(&vec![b'a'; len]).to_hex(), expect, "len {len}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = Sha1::digest(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(20)), None);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha1::digest(b"a"), Sha1::digest(b"b"));
        assert_ne!(Sha1::digest(b""), Sha1::digest(b"\0"));
    }
}
