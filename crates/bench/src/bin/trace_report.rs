//! **trace_report** — span-tree reconstruction, critical-path analysis,
//! and a Tab. 3-style phase decomposition from any `--trace-out` file.
//!
//! ```sh
//! cargo run --release -p unidrive-bench --bin fig11_batch_sync -- quick --trace-out /tmp/fig11.trace.json
//! cargo run --release -p unidrive-bench --bin trace_report -- /tmp/fig11.trace.json
//! cargo run --release -p unidrive-bench --bin trace_report -- --validate /tmp/fig11.trace.json
//! ```
//!
//! The report reconstructs the causal span tree (`sync.round` →
//! `lock.*` / `meta.*` → `engine.batch` → `engine.worker` →
//! `engine.block` → `wire.attempt`) and decomposes each sync round's
//! wall time into **lock**, **merge**, and **transfer** phases by
//! interval union (clipped to the round, earlier phases take
//! precedence where they overlap), so the four columns sum to the wall
//! time *exactly*. It also prints per-cloud transfer busy time and the
//! critical path of the slowest round. `--validate` instead checks the
//! Chrome trace-event shape (non-negative `ts`/`dur`, unique span ids,
//! every parent id present when no spans were dropped) and exits
//! non-zero on violations — the ci.sh trace gate.
//!
//! The JSON parser lives in [`unidrive_bench::json`], shared with
//! `obs_report` and `bench_compare`: the workspace builds offline with
//! zero external crates.

use std::collections::{BTreeMap, HashMap};
use std::process::ExitCode;

use unidrive_bench::json::{parse_json, Json};
use unidrive_workload::TextTable;

// ---------------------------------------------------------------------
// Trace model.
// ---------------------------------------------------------------------

/// One complete-event span out of `traceEvents` (`"ph": "X"`).
#[derive(Debug, Clone)]
struct Span {
    id: u64,
    parent: u64,
    name: String,
    tid: u32,
    /// Microseconds (Chrome trace units).
    ts: f64,
    dur: f64,
    args: Vec<(String, Json)>,
}

impl Span {
    fn end(&self) -> f64 {
        self.ts + self.dur
    }

    fn arg_str(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_str())
    }
}

struct Trace {
    spans: Vec<Span>,
    dropped_spans: u64,
    instant_count: usize,
    /// Shape violations found while loading.
    errors: Vec<String>,
}

fn load_trace(text: &str) -> Result<Trace, String> {
    let root = parse_json(text)?;
    let events = match root.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("no traceEvents array".into()),
    };
    let dropped_spans = root
        .get("droppedSpans")
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64;
    let mut trace = Trace {
        spans: Vec::new(),
        dropped_spans,
        instant_count: 0,
        errors: Vec::new(),
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(Json::as_f64);
        match ts {
            Some(t) if t >= 0.0 => {}
            Some(t) => trace.errors.push(format!("event {i}: negative ts {t}")),
            None => trace.errors.push(format!("event {i}: missing ts")),
        }
        if ph == "i" {
            trace.instant_count += 1;
            continue;
        }
        if ph != "X" {
            trace.errors.push(format!("event {i}: unknown ph {ph:?}"));
            continue;
        }
        let dur = ev.get("dur").and_then(Json::as_f64);
        match dur {
            Some(d) if d >= 0.0 => {}
            Some(d) => trace.errors.push(format!("event {i}: negative dur {d}")),
            None => trace.errors.push(format!("event {i}: missing dur")),
        }
        let args = match ev.get("args") {
            Some(Json::Obj(fields)) => fields.clone(),
            _ => {
                trace.errors.push(format!("event {i}: missing args"));
                Vec::new()
            }
        };
        let id = args
            .iter()
            .find(|(k, _)| k == "span_id")
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.0) as u64;
        if id == 0 {
            trace.errors.push(format!("event {i}: missing span_id"));
        }
        let parent = args
            .iter()
            .find(|(k, _)| k == "parent")
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or(0.0) as u64;
        trace.spans.push(Span {
            id,
            parent,
            name: ev
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            tid: ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            ts: ts.unwrap_or(0.0),
            dur: dur.unwrap_or(0.0),
            args: args
                .into_iter()
                .filter(|(k, _)| k != "span_id" && k != "parent")
                .collect(),
        });
    }
    // Identity checks: unique ids; parents present (only provable when
    // the ring dropped nothing — an evicted ancestor is not an error).
    let mut seen = HashMap::new();
    for s in &trace.spans {
        if let Some(prev) = seen.insert(s.id, s.name.clone()) {
            trace
                .errors
                .push(format!("span id {} used by both {prev} and {}", s.id, s.name));
        }
    }
    if trace.dropped_spans == 0 {
        for s in &trace.spans {
            if s.parent != 0 && !seen.contains_key(&s.parent) {
                trace.errors.push(format!(
                    "span {} ({}) references missing parent {}",
                    s.id, s.name, s.parent
                ));
            }
        }
    }
    Ok(trace)
}

// ---------------------------------------------------------------------
// Phase decomposition + critical path.
// ---------------------------------------------------------------------

/// Phase index for a span name: 0 = lock, 1 = merge, 2 = transfer.
/// Where intervals overlap (a lock refresh racing the transfer), the
/// lower-numbered phase wins the sweep in [`decompose`], so
/// lock + merge + transfer + other always equals the wall time.
fn phase_of(name: &str) -> Option<usize> {
    if name.starts_with("lock.") {
        Some(0)
    } else if name.starts_with("meta.") {
        Some(1)
    } else if name.starts_with("engine.") || name == "wire.attempt" {
        Some(2)
    } else {
        None
    }
}

/// Priority-union sweep: total time in `[lo, hi]` covered by each
/// phase, earlier phases shadowing later ones. Returns per-phase µs.
fn decompose(lo: f64, hi: f64, intervals: &[(usize, f64, f64)]) -> [f64; 3] {
    // Boundary sweep over the clipped interval endpoints.
    let mut cuts: Vec<f64> = vec![lo, hi];
    for &(_, s, e) in intervals {
        cuts.push(s.clamp(lo, hi));
        cuts.push(e.clamp(lo, hi));
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cuts.dedup();
    let mut out = [0.0; 3];
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        let mid = (a + b) / 2.0;
        if let Some(p) = intervals
            .iter()
            .filter(|(_, s, e)| *s <= mid && mid < *e)
            .map(|(p, _, _)| *p)
            .min()
        {
            out[p] += b - a;
        }
    }
    out
}

fn fmt_ms(us: f64) -> String {
    format!("{:.1}", us / 1e3)
}

fn report(trace: &Trace) -> ExitCode {
    let by_id: HashMap<u64, &Span> = trace.spans.iter().map(|s| (s.id, s)).collect();
    let mut children: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in &trace.spans {
        children.entry(s.parent).or_default().push(s);
    }
    for list in children.values_mut() {
        list.sort_by(|a, b| a.ts.partial_cmp(&b.ts).expect("finite"));
    }

    // Worker lane → cloud name, for the per-cloud breakdown.
    let lane_cloud: HashMap<u32, String> = trace
        .spans
        .iter()
        .filter(|s| s.name == "engine.worker")
        .filter_map(|s| s.arg_str("cloud").map(|c| (s.tid, c.to_owned())))
        .collect();

    let rounds: Vec<&Span> = trace
        .spans
        .iter()
        .filter(|s| s.name == "sync.round")
        .collect();
    if rounds.is_empty() {
        eprintln!("no sync.round spans in this trace (was it produced with --trace-out?)");
        return ExitCode::FAILURE;
    }

    let mut table = TextTable::new(&[
        "round", "device", "outcome", "wall ms", "lock ms", "merge ms", "transfer ms",
        "other ms",
    ]);
    let mut phase_totals = [0.0f64; 3];
    let mut wall_total = 0.0f64;
    let mut slowest: Option<&Span> = None;
    let mut cloud_busy: BTreeMap<String, (f64, u64)> = BTreeMap::new();

    for round in &rounds {
        // Collect the round's descendants (the tree is intra-world, so
        // overlapping timestamps from other sim worlds don't leak in).
        let mut stack = vec![round.id];
        let mut intervals: Vec<(usize, f64, f64)> = Vec::new();
        while let Some(id) = stack.pop() {
            for child in children.get(&id).into_iter().flatten() {
                stack.push(child.id);
                if let Some(p) = phase_of(&child.name) {
                    intervals.push((p, child.ts, child.end()));
                }
                if child.name == "engine.block" {
                    let cloud = lane_cloud
                        .get(&child.tid)
                        .cloned()
                        .unwrap_or_else(|| "?".to_owned());
                    let e = cloud_busy.entry(cloud).or_insert((0.0, 0));
                    e.0 += child.dur;
                    e.1 += 1;
                }
            }
        }
        let phases = decompose(round.ts, round.end(), &intervals);
        let other = (round.dur - phases.iter().sum::<f64>()).max(0.0);
        wall_total += round.dur;
        for (t, p) in phase_totals.iter_mut().zip(phases) {
            *t += p;
        }
        if slowest.is_none_or(|s| round.dur > s.dur) {
            slowest = Some(round);
        }
        table.row(vec![
            format!("{}", round.id),
            round.arg_str("device").unwrap_or("?").to_owned(),
            round.arg_str("outcome").unwrap_or("?").to_owned(),
            fmt_ms(round.dur),
            fmt_ms(phases[0]),
            fmt_ms(phases[1]),
            fmt_ms(phases[2]),
            fmt_ms(other),
        ]);
    }

    println!(
        "trace_report: {} spans ({} dropped), {} instant events, {} sync rounds\n",
        trace.spans.len(),
        trace.dropped_spans,
        trace.instant_count,
        rounds.len()
    );
    println!("{}", table.render());

    let other_total = (wall_total - phase_totals.iter().sum::<f64>()).max(0.0);
    let covered = phase_totals.iter().sum::<f64>() + other_total;
    println!(
        "phase totals: lock {} ms, merge {} ms, transfer {} ms, other {} ms \
         (sum {} ms over {} ms wall, {:+.3}%)",
        fmt_ms(phase_totals[0]),
        fmt_ms(phase_totals[1]),
        fmt_ms(phase_totals[2]),
        fmt_ms(other_total),
        fmt_ms(covered),
        fmt_ms(wall_total),
        if wall_total > 0.0 {
            100.0 * (covered - wall_total) / wall_total
        } else {
            0.0
        },
    );

    if !cloud_busy.is_empty() {
        println!("\nper-cloud transfer busy time (engine.block):");
        for (cloud, (busy, count)) in &cloud_busy {
            println!("  {cloud:<16} {:>10} ms over {count} blocks", fmt_ms(*busy));
        }
    }

    // Critical path of the slowest round: walk backwards from the end,
    // always descending into the child whose end time reaches
    // furthest, until no child reaches the current point.
    if let Some(round) = slowest {
        println!(
            "\ncritical path of the slowest round ({} on {}):",
            round.id,
            round.arg_str("device").unwrap_or("?"),
        );
        let mut cur: &Span = round;
        loop {
            let label = match cur.name.as_str() {
                "engine.block" | "engine.worker" | "wire.attempt" => lane_cloud
                    .get(&cur.tid)
                    .map(|c| format!("{} [{}]", cur.name, c))
                    .unwrap_or_else(|| cur.name.clone()),
                _ => cur.name.clone(),
            };
            println!("  {label:<32} {:>10} ms", fmt_ms(cur.dur));
            let next = children
                .get(&cur.id)
                .into_iter()
                .flatten()
                .max_by(|a, b| a.end().partial_cmp(&b.end()).expect("finite"));
            match next {
                Some(c) => cur = *c,
                None => break,
            }
        }
        let _ = by_id; // id map retained for future lookups
    }
    ExitCode::SUCCESS
}

fn validate(trace: &Trace) -> ExitCode {
    if trace.errors.is_empty() {
        println!(
            "trace OK: {} spans ({} dropped), {} instant events",
            trace.spans.len(),
            trace.dropped_spans,
            trace.instant_count
        );
        ExitCode::SUCCESS
    } else {
        for e in &trace.errors {
            eprintln!("trace error: {e}");
        }
        eprintln!("{} violations", trace.errors.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let validate_mode = args.iter().any(|a| a == "--validate");
    let path = args.iter().find(|a| !a.starts_with("--"));
    let Some(path) = path else {
        eprintln!("usage: trace_report [--validate] <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match load_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if validate_mode {
        validate(&trace)
    } else {
        if !trace.errors.is_empty() {
            eprintln!(
                "warning: {} shape violations (run --validate for details)",
                trace.errors.len()
            );
        }
        report(&trace)
    }
}
