//! Criterion micro-benchmarks of the from-scratch primitives: GF(2⁸)
//! Reed-Solomon coding, SHA-1, DES-CBC, Rabin chunking, and the
//! metadata codec — the CPU budget behind every simulated second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unidrive_chunker::{segment_bytes, ChunkerConfig, RabinHash};
use unidrive_crypto::{MetadataCipher, Sha1};
use unidrive_erasure::{Codec, RedundancyConfig};
use unidrive_meta::{SegmentId, Snapshot, SyncFolderImage};

fn sample(len: usize) -> Vec<u8> {
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut group = c.benchmark_group("reed_solomon");
    group.sample_size(20);
    let codec = Codec::for_config(&RedundancyConfig::paper_default()).expect("codec");
    for size in [64 * 1024, 1024 * 1024, 4 * 1024 * 1024] {
        let data = sample(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode_block", size), &data, |b, data| {
            let mut index = 0usize;
            b.iter(|| {
                index = (index + 1) % 10;
                codec.encode_block(data, index)
            });
        });
        let blocks = codec.encode_blocks(&data, &[0, 4, 9]);
        let shares: Vec<(usize, &[u8])> = [0usize, 4, 9]
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        group.bench_with_input(BenchmarkId::new("decode", size), &shares, |b, shares| {
            b.iter(|| codec.decode(shares, size).expect("decode"));
        });
    }
    group.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    group.sample_size(30);
    for size in [64 * 1024, 4 * 1024 * 1024] {
        let data = sample(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("digest", size), &data, |b, data| {
            b.iter(|| Sha1::digest(data));
        });
    }
    group.finish();
}

fn bench_des_cbc(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_cbc");
    group.sample_size(20);
    let cipher = MetadataCipher::from_passphrase("bench");
    for size in [16 * 1024, 256 * 1024] {
        let data = sample(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encrypt", size), &data, |b, data| {
            b.iter(|| cipher.encrypt(data, 7));
        });
        let ct = cipher.encrypt(&data, 7);
        group.bench_with_input(BenchmarkId::new("decrypt", size), &ct, |b, ct| {
            b.iter(|| cipher.decrypt(ct).expect("decrypt"));
        });
    }
    group.finish();
}

fn bench_chunker(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunker");
    group.sample_size(20);
    let data = sample(8 * 1024 * 1024);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("segment_8mb_theta_1mb", |b| {
        let config = ChunkerConfig::new(1024 * 1024);
        b.iter(|| segment_bytes(&data, &config));
    });
    group.bench_function("rabin_roll_1mb", |b| {
        let window = 48;
        b.iter(|| {
            let mut h = RabinHash::new(window);
            for &byte in &data[..window] {
                h.push(byte);
            }
            let mut acc = 0u64;
            for i in window..1024 * 1024 {
                h.roll(data[i - window], data[i]);
                acc ^= h.fingerprint();
            }
            acc
        });
    });
    group.finish();
}

fn bench_metadata_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("metadata_codec");
    group.sample_size(30);
    let mut image = SyncFolderImage::new();
    for i in 0..1000 {
        let id = SegmentId(Sha1::digest(format!("seg-{i}").as_bytes()));
        image.ensure_segment(id, 100_000);
        image.upsert_file(
            &format!("dir/file-{i:04}.bin"),
            Snapshot {
                mtime_ns: i,
                size: 100_000,
                segments: vec![id],
            },
        );
    }
    let encoded = image.encode();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_1000_files", |b| b.iter(|| image.encode()));
    group.bench_function("decode_1000_files", |b| {
        b.iter(|| SyncFolderImage::decode(&encoded).expect("decode"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reed_solomon,
    bench_sha1,
    bench_des_cbc,
    bench_chunker,
    bench_metadata_codec
);
criterion_main!(benches);
