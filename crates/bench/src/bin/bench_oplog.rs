//! **Oplog bench** — N-writer commit scaling on one hot shared folder,
//! lock plane vs oplog plane, through the *real* `UniDriveClient` sync
//! protocol (not the analytic fleet model).
//!
//! Each cell of the matrix builds a fresh 5-cloud world (shared
//! [`MemCloud`] backings, one [`SimCloud`] network frontend per
//! device), spawns N writer clients against the same folder namespace,
//! and has every writer commit `rounds` fresh files back-to-back. The
//! measured quantity is aggregate commit throughput in *virtual* time:
//! `N × rounds / (virtual seconds until the last writer finishes)`.
//!
//! Shape target (the tentpole claim): in **lock** mode every commit
//! serializes behind the folder's quorum lock, so adding writers adds
//! contention rounds and randomized backoff — aggregate throughput
//! flattens, then collapses as deferred commits pile up. In **oplog**
//! mode a commit is an uncoordinated append of the writer's own op
//! file, so aggregate throughput scales with N; only the occasional
//! λ-triggered base compaction takes the lock, and contended
//! compactions are skipped, never serialized.
//!
//! Everything runs in virtual time from fixed seeds: same-seed runs
//! emit byte-identical `BENCH_oplog.json` (CI runs quick mode twice
//! and byte-compares, like fig11 and bench_fleet).
//!
//! Each cell runs against its own virtual-time-clocked obs registry,
//! so the metadata plane's own counters land in the report: per-cell
//! `lock_starved` (starvation audits under contention — lock plane),
//! `compact_forced` and `compact_overdue` (λ-compaction escalation —
//! oplog plane). `--series-out` exports the windowed series of the
//! hottest cell (top writer count, last plane).
//!
//! Usage: `bench_oplog [quick] [--meta-mode {lock,oplog}]
//! [--out BENCH_oplog.json] [--series-out SERIES.json]`.
//! Without `--meta-mode` both planes run (that is the point); with it,
//! only the selected plane's rows are produced.

use std::sync::Arc;
use std::time::{Duration, Instant};

use unidrive_cloud::{CloudSet, CloudStore, MemCloud, SimCloud, SimCloudConfig};
use unidrive_core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive_erasure::RedundancyConfig;
use unidrive_meta::MetaMode;
use unidrive_obs::{Obs, Registry, DEFAULT_SERIES_WINDOW_NS};
use unidrive_sim::{spawn, Runtime, SimRng, SimRuntime};
use unidrive_workload::TextTable;

const CLOUDS: usize = 5;
const WRITER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One matrix cell's measurements, all derived from virtual time.
struct Cell {
    mode: MetaMode,
    writers: usize,
    rounds: usize,
    commits: usize,
    retries: usize,
    failures: usize,
    virtual_secs: f64,
    commits_per_min: f64,
    /// Lock rounds where a starvation audit fired (lock plane earns
    /// these under contention; the oplog plane should stay near zero).
    lock_starved: u64,
    /// λ-compactions escalated to forced retries (oplog plane only).
    compact_forced: u64,
    /// Forced compactions that *still* failed — backlog left overdue.
    compact_overdue: u64,
    /// Windowed series export of this cell, when requested.
    series: Option<String>,
}

fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SimRng::derive(seed, "bench_oplog/payload");
    (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect()
}

/// Runs one cell: `writers` clients hammering commits of fresh files
/// into the same shared folder, `rounds` commits each, no think time —
/// the pure hot-folder contention case.
fn run_cell(mode: MetaMode, writers: usize, rounds: usize, seed: u64, want_series: bool) -> Cell {
    let sim = SimRuntime::new(seed);
    let rt = sim.clone().as_runtime();
    // Per-cell registry: the lock/oplog planes feed their counters and
    // windowed series here (virtual-time clocked via install_obs).
    let registry = Registry::with_trace_capacity(1 << 14);
    registry.enable_series(DEFAULT_SERIES_WINDOW_NS);
    let obs = Obs::with_registry(Arc::clone(&registry));
    sim.install_obs(obs.clone());

    // Shared provider backings; per-writer network frontends so one
    // writer's transfers never queue behind another's (contention in
    // this bench must come from the metadata plane, nothing else).
    let backings: Vec<Arc<MemCloud>> = (0..CLOUDS)
        .map(|i| Arc::new(MemCloud::new(format!("b{i}"))))
        .collect();
    let device_set = |_d: usize| {
        let members: Vec<Arc<dyn CloudStore>> = (0..CLOUDS)
            .map(|i| {
                Arc::new(SimCloud::with_backing(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(2e6, 8e6),
                    Arc::clone(&backings[i]),
                )) as Arc<dyn CloudStore>
            })
            .collect();
        CloudSet::new(members)
    };

    let t0 = sim.now();
    let mut tasks = Vec::new();
    for d in 0..writers {
        let set = device_set(d);
        let rt2 = rt.clone();
        let mut config = ClientConfig::paper_default(format!("w{d}"));
        config.meta_mode = mode;
        config.data = DataPlaneConfig {
            obs: obs.clone(),
            ..DataPlaneConfig::with_params(
                RedundancyConfig::new(5, 3, 3, 2).expect("paper parameters"),
                64 * 1024,
            )
        };
        let folder = MemFolder::new();
        let mut client = UniDriveClient::new(
            rt.clone(),
            set,
            Arc::clone(&folder) as Arc<dyn SyncFolder>,
            config,
            SimRng::derive(seed, &format!("bench_oplog/client{d}")),
        );
        tasks.push(spawn(&rt, &format!("writer-{d}"), move || {
            let mut commits = 0usize;
            let mut retries = 0usize;
            let mut failures = 0usize;
            for r in 0..rounds {
                let path = format!("w{d}/f{r}.bin");
                let data = payload(seed ^ ((d as u64) << 16) ^ r as u64, 8 * 1024);
                folder.write(&path, &data, (r + 1) as u64).expect("mem write");
                // Commit, retrying on contention like the sync daemon
                // would; a commit that cannot land within the budget is
                // a failure (lock mode earns these under load).
                let mut landed = false;
                for attempt in 0..24 {
                    match client.sync_once() {
                        Ok(report) if report.uploaded.iter().any(|p| p == &path) => {
                            landed = true;
                            break;
                        }
                        Ok(_) => {}
                        Err(_) => retries += 1,
                    }
                    rt2.sleep(Duration::from_secs(1 + attempt % 3));
                }
                if landed {
                    commits += 1;
                } else {
                    failures += 1;
                }
            }
            (commits, retries, failures)
        }));
    }

    let mut commits = 0usize;
    let mut retries = 0usize;
    let mut failures = 0usize;
    for t in tasks {
        let (c, r, f) = t.join();
        commits += c;
        retries += r;
        failures += f;
    }
    let virtual_secs = (sim.now() - t0).as_secs_f64();
    let snap = obs.snapshot().expect("registry snapshot");
    let series = want_series.then(|| registry.series_snapshot().to_json());
    Cell {
        mode,
        writers,
        rounds,
        commits,
        retries,
        failures,
        virtual_secs,
        commits_per_min: commits as f64 * 60.0 / virtual_secs.max(1e-9),
        lock_starved: snap.counter("lock.starved"),
        compact_forced: snap.counter("meta.oplog.compact_forced"),
        compact_overdue: snap.counter("meta.oplog.compact_overdue"),
        series,
    }
}

/// Locale-free fixed-precision float: deterministic across hosts.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.000".to_owned()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick" || a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let only_mode = args
        .iter()
        .position(|a| a == "--meta-mode")
        .and_then(|i| args.get(i + 1))
        .map(|v| match MetaMode::parse(v) {
            Some(m) => m,
            None => {
                eprintln!("--meta-mode must be 'lock' or 'oplog', got '{v}'");
                std::process::exit(2);
            }
        });
    let series_out = args
        .iter()
        .position(|a| a == "--series-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let rounds = if quick { 4 } else { 8 };
    let modes: Vec<MetaMode> = match only_mode {
        Some(m) => vec![m],
        None => vec![MetaMode::Lock, MetaMode::Oplog],
    };

    println!(
        "Oplog bench ({}): N writers x {rounds} commits each on one hot shared folder, {CLOUDS} clouds\n",
        if quick { "quick" } else { "full" }
    );

    let wall = Instant::now();
    let top = *WRITER_COUNTS.last().expect("non-empty");
    let mut cells: Vec<Cell> = Vec::new();
    for &mode in &modes {
        for &writers in &WRITER_COUNTS {
            // Same seed for every cell: both planes face the identical
            // world; only the metadata plane differs. The series export
            // (when asked for) comes from the hottest cell of the last
            // plane — the most contended world in the matrix.
            let want_series = series_out.is_some()
                && writers == top
                && Some(&mode) == modes.last();
            cells.push(run_cell(mode, writers, rounds, 0x9106, want_series));
        }
    }
    let elapsed = wall.elapsed();

    let mut table = TextTable::new(&[
        "mode",
        "writers",
        "commits",
        "retries",
        "failed",
        "starved",
        "forced",
        "virtual_s",
        "commits/min",
        "scaling",
    ]);
    for c in &cells {
        let base = cells
            .iter()
            .find(|b| b.mode == c.mode && b.writers == 1)
            .map(|b| b.commits_per_min)
            .unwrap_or(c.commits_per_min);
        table.row(vec![
            c.mode.to_string(),
            c.writers.to_string(),
            c.commits.to_string(),
            c.retries.to_string(),
            c.failures.to_string(),
            c.lock_starved.to_string(),
            c.compact_forced.to_string(),
            format!("{:.1}", c.virtual_secs),
            format!("{:.1}", c.commits_per_min),
            format!("{:.2}x", c.commits_per_min / base.max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    println!("wall-clock {:.2}s (virtual time only in the report)", elapsed.as_secs_f64());

    // Headline: throughput ratio oplog/lock at the highest writer count.
    let at = |mode: MetaMode, writers: usize| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.writers == writers)
            .map(|c| c.commits_per_min)
    };
    let top = *WRITER_COUNTS.last().expect("non-empty");
    if let (Some(lock), Some(oplog)) = (at(MetaMode::Lock, top), at(MetaMode::Oplog, top)) {
        println!(
            "\nat {top} writers: oplog {:.1} commits/min vs lock {:.1} — {:.2}x",
            oplog,
            lock,
            oplog / lock.max(1e-9)
        );
    }

    if let Some(path) = &series_out {
        match cells.iter().find_map(|c| c.series.as_deref()) {
            Some(doc) => match std::fs::write(path, doc) {
                Ok(()) => println!("series written to {path}"),
                Err(e) => eprintln!("failed to write --series-out {path}: {e}"),
            },
            None => eprintln!("--series-out: no cell produced a series"),
        }
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"commits\": {}, \"commits_per_min\": {}, \"compact_forced\": {}, \"compact_overdue\": {}, \"failed\": {}, \"lock_starved\": {}, \"mode\": \"{}\", \"retries\": {}, \"rounds\": {}, \"virtual_secs\": {}, \"writers\": {}}}",
                c.commits,
                fmt_f64(c.commits_per_min),
                c.compact_forced,
                c.compact_overdue,
                c.failures,
                c.lock_starved,
                c.mode,
                c.retries,
                c.rounds,
                fmt_f64(c.virtual_secs),
                c.writers
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench_oplog\": \"unidrive/v1\",\n  \"config\": {{\"clouds\": {CLOUDS}, \"mode_filter\": \"{}\", \"rounds\": {rounds}, \"scale\": \"{}\", \"writer_counts\": [{}]}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        only_mode.map(|m| m.to_string()).unwrap_or_else(|| "both".to_owned()),
        if quick { "quick" } else { "full" },
        WRITER_COUNTS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        rows.join(",\n"),
    );
    match &out {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => println!("\noplog report written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        },
        None => println!("\n{json}"),
    }
}
