//! **Figure 9** — average transfer time vs file size on the Virginia
//! node (§7.2): UniDrive and even the multi-cloud benchmark outperform
//! all native CCS apps for almost all file sizes.

use std::time::Duration;

use unidrive_bench::{systems_at, ExperimentScale};
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{random_bytes, site_by_name, Summary, TextTable};

fn main() {
    let scale = ExperimentScale::from_args();
    let sizes_mb: Vec<usize> = if scale.repeats >= 5 {
        vec![1, 2, 4, 8, 16, 32]
    } else {
        vec![1, 2, 4, 8]
    };
    let site = site_by_name("Virginia").expect("site exists");

    println!(
        "Figure 9: mean upload seconds vs file size, Virginia, {} repeats\n",
        scale.repeats
    );
    let mut table = TextTable::new(&[
        "size", "UniDrive", "Benchmark", "Intuitive", "best native", "worst native",
    ]);
    let mut unidrive_wins = 0usize;
    for &mb in &sizes_mb {
        let size = mb * 1024 * 1024;
        let sim = SimRuntime::new(900 + mb as u64);
        let sys = systems_at(&sim, site, scale.theta.min(size));
        let data = random_bytes(size, mb as u64);
        let mut uni = Vec::new();
        let mut bench = Vec::new();
        let mut intuitive = Vec::new();
        let mut native_means: Vec<Vec<f64>> = vec![Vec::new(); sys.natives.len()];
        for rep in 0..scale.repeats {
            let name = format!("s{mb}-{rep}");
            if let Ok(d) = sys.unidrive.upload(&name, data.clone()) {
                uni.push(d.as_secs_f64());
            }
            if let Ok(d) = sys.benchmark.upload(&name, data.clone()) {
                bench.push(d.as_secs_f64());
            }
            if let Ok(d) = sys.intuitive.upload(&name, data.clone()) {
                intuitive.push(d.as_secs_f64());
            }
            for (i, (_, native)) in sys.natives.iter().enumerate() {
                if let Ok(d) = native.upload(&name, data.clone()) {
                    native_means[i].push(d.as_secs_f64());
                }
            }
            sim.sleep(Duration::from_secs(1800));
        }
        let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean).unwrap_or(f64::NAN);
        let natives: Vec<f64> = native_means.iter().map(|v| mean(v)).collect();
        let best = natives.iter().cloned().fold(f64::MAX, f64::min);
        let worst = natives.iter().cloned().fold(0.0f64, f64::max);
        if mean(&uni) < best {
            unidrive_wins += 1;
        }
        table.row(vec![
            format!("{mb} MB"),
            format!("{:.1}", mean(&uni)),
            format!("{:.1}", mean(&bench)),
            format!("{:.1}", mean(&intuitive)),
            format!("{best:.1}"),
            format!("{worst:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "UniDrive beats the best native app at {unidrive_wins}/{} sizes \
         (paper: at almost all file sizes)",
        sizes_mb.len()
    );
}
