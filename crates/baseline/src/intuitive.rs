//! The *intuitive multi-cloud* baseline (paper §7.1): a file is chunked
//! into blocks and uniformly distributed into the local sync folders of
//! N native CCS apps, each of which syncs its share with its own logic.
//!
//! There is no redundancy: every part is needed, so the operation
//! completes only when the **slowest** cloud finishes — exactly the
//! degradation the paper observes for this design. The N native apps
//! are modelled as one shared [`TransferEngine`] run whose static plan
//! assigns part `i`'s chunks to cloud `i` (same per-cloud chunking and
//! object paths a [`SingleCloudClient`](crate::SingleCloudClient) per
//! part would produce).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{CloudError, CloudSet, RetryPolicy};
use unidrive_core::{EngineParams, TransferEngine};
use unidrive_obs::{Obs, SpanId};
use unidrive_sim::Runtime;
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::planned::{PlannedJob, PlannedPolicy};

/// The intuitive multi-cloud: N native single-cloud apps, one file
/// part each.
pub struct IntuitiveMultiCloud {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    connections: usize,
    chunk_size: usize,
    retry: RetryPolicy,
    obs: Obs,
    /// name → total length.
    manifest: Mutex<HashMap<String, u64>>,
}

impl std::fmt::Debug for IntuitiveMultiCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntuitiveMultiCloud")
            .field("clouds", &self.clouds.len())
            .finish()
    }
}

impl IntuitiveMultiCloud {
    /// Creates the baseline over `clouds` with `connections` per native
    /// app (1 MB chunks, matching the native client).
    pub fn new(rt: Arc<dyn Runtime>, clouds: &CloudSet, connections: usize) -> Self {
        IntuitiveMultiCloud {
            rt,
            clouds: clouds.clone(),
            connections: connections.max(1),
            chunk_size: 1024 * 1024,
            retry: RetryPolicy::new(),
            obs: Obs::noop(),
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// Observability for transfer counters and retry traces
    /// (`intuitive.upload.*`, `intuitive.download.*`).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn engine_params(&self, label: &str, batch_span: Option<SpanId>) -> EngineParams {
        EngineParams {
            connections_per_cloud: self.connections,
            retry: self.retry.clone(),
            obs: self.obs.clone(),
            label: label.to_owned(),
            probe: None,
            idle_wait: None,
            batch_span,
            watchdog: None,
        }
    }

    /// The per-part byte ranges of a `len`-byte file across N clouds.
    fn part_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        let n = self.clouds.len();
        let part_len = len.div_ceil(n).max(1);
        (0..n)
            .map(|i| ((i * part_len).min(len), ((i + 1) * part_len).min(len)))
            .collect()
    }

    /// Splits `data` into N equal parts and uploads part `i` through
    /// cloud `i`'s native app, in parallel. Completes when every cloud
    /// finishes.
    ///
    /// # Errors
    ///
    /// The first native app failure.
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let t0 = self.rt.now();
        let mut queues = Vec::new();
        for (i, (start, end)) in self.part_ranges(data.len()).into_iter().enumerate() {
            let part = data.slice(start..end);
            queues.push(
                part.chunks(self.chunk_size)
                    .map(Bytes::copy_from_slice)
                    .enumerate()
                    .map(|(j, chunk)| PlannedJob {
                        path: format!("native/{name}.part{i}.{j}"),
                        data: Some(chunk),
                        slot: 0,
                        index: j as u16,
                    })
                    .collect::<VecDeque<_>>(),
            );
        }
        let policy = PlannedPolicy::new(queues, 0);
        let mut batch = self.obs.span("engine.batch", None);
        batch.attr_str("label", "intuitive.upload");
        batch.attr_u64("files", 1);
        let done = TransferEngine::start(
            &self.rt,
            &self.clouds,
            self.engine_params("intuitive.upload", batch.id()),
            policy,
        )
        .join();
        batch.end();
        if let Some(e) = done.error {
            return Err(e);
        }
        self.manifest
            .lock()
            .insert(name.to_owned(), data.len() as u64);
        Ok(self.rt.now().saturating_duration_since(t0))
    }

    /// Registers `name` as already uploaded without moving traffic (the
    /// sink side of the native apps' change notifications).
    pub fn assume_uploaded(&self, name: &str, len: u64) {
        self.manifest.lock().insert(name.to_owned(), len);
    }

    /// Downloads all N parts in parallel; needs *every* cloud.
    ///
    /// # Errors
    ///
    /// The first native app failure (there is no redundancy).
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        let Some(len) = self.manifest.lock().get(name).copied() else {
            return Err(CloudError::not_found(name));
        };
        let t0 = self.rt.now();
        let mut queues = Vec::new();
        let mut slot = 0;
        for (i, (start, end)) in self.part_ranges(len as usize).into_iter().enumerate() {
            let chunk_count = (end - start).div_ceil(self.chunk_size);
            queues.push(
                (0..chunk_count)
                    .map(|j| {
                        let job = PlannedJob {
                            path: format!("native/{name}.part{i}.{j}"),
                            data: None,
                            slot,
                            index: j as u16,
                        };
                        slot += 1;
                        job
                    })
                    .collect::<VecDeque<_>>(),
            );
        }
        let policy = PlannedPolicy::new(queues, slot);
        let mut batch = self.obs.span("engine.batch", None);
        batch.attr_str("label", "intuitive.download");
        batch.attr_u64("segments", slot as u64);
        let done = TransferEngine::start(
            &self.rt,
            &self.clouds,
            self.engine_params("intuitive.download", batch.id()),
            policy,
        )
        .join();
        batch.end();
        if let Some(e) = done.error {
            return Err(e);
        }
        let mut out = Vec::with_capacity(len as usize);
        for chunk in &done.results {
            out.extend_from_slice(chunk.as_ref().expect("no error implies all chunks"));
        }
        Ok((self.rt.now().saturating_duration_since(t0), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_sim::SimRuntime;

    fn set(sim: &Arc<SimRuntime>, rates: &[f64]) -> (CloudSet, Vec<Arc<SimCloud>>) {
        let mut handles = Vec::new();
        let members = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let c = Arc::new(SimCloud::new(
                    sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(r, r * 5.0),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        (CloudSet::new(members), handles)
    }

    #[test]
    fn round_trip_preserves_content() {
        let sim = SimRuntime::new(1);
        let (clouds, _) = set(&sim, &[1e6; 5]);
        let client = IntuitiveMultiCloud::new(sim.clone().as_runtime(), &clouds, 2);
        let data = Bytes::from((0..3_000_000u32).map(|i| i as u8).collect::<Vec<_>>());
        client.upload("f", data.clone()).unwrap();
        let (_, restored) = client.download("f").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn completion_dominated_by_slowest_cloud() {
        let sim = SimRuntime::new(2);
        // 4 fast clouds, one 10x slower.
        let (clouds, _) = set(&sim, &[10e6, 10e6, 10e6, 10e6, 1e6]);
        let client = IntuitiveMultiCloud::new(sim.clone().as_runtime(), &clouds, 2);
        let data = Bytes::from(vec![1u8; 10_000_000]);
        let took = client.upload("f", data).unwrap();
        // Each part is 2 MB over 2 connections; the slow cloud at
        // 1 MB/s per-connection (5 MB/s aggregate) needs ~1 s while the
        // fast clouds need ~0.1 s: the slow tail dominates.
        assert!(took.as_secs_f64() > 0.8, "took {took:?}");
    }

    #[test]
    fn any_outage_breaks_download() {
        let sim = SimRuntime::new(3);
        let (clouds, handles) = set(&sim, &[1e6; 5]);
        let client = IntuitiveMultiCloud::new(sim.clone().as_runtime(), &clouds, 2);
        client
            .upload("f", Bytes::from(vec![2u8; 1_000_000]))
            .unwrap();
        handles[3].set_available(false);
        assert!(client.download("f").is_err(), "no redundancy: must fail");
    }
}
