//! Property-based tests of the erasure-coding invariants UniDrive's
//! reliability and security guarantees rest on.

use proptest::prelude::*;
use unidrive_erasure::{Codec, RedundancyConfig};

proptest! {
    /// Any k distinct blocks of a non-systematic code reconstruct the
    /// original data exactly — the MDS property.
    #[test]
    fn any_k_blocks_reconstruct(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        n in 4usize..20,
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(k < n);
        let codec = Codec::non_systematic(n, k).unwrap();
        // Pick k distinct indices pseudo-randomly from the seed.
        let mut indices: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..indices.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            indices.swap(i, (state % (i as u64 + 1)) as usize);
        }
        indices.truncate(k);
        let blocks = codec.encode_blocks(&data, &indices);
        let shares: Vec<(usize, &[u8])> = indices
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        prop_assert_eq!(codec.decode(&shares, data.len()).unwrap(), data);
    }

    /// Fewer than k blocks always fail to decode (the K_s security
    /// property at the codec level).
    #[test]
    fn fewer_than_k_blocks_fail(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        have in 0usize..3,
    ) {
        let codec = Codec::non_systematic(10, 3).unwrap();
        let indices: Vec<usize> = (0..have).collect();
        let blocks = codec.encode_blocks(&data, &indices);
        let shares: Vec<(usize, &[u8])> = indices
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        prop_assert!(codec.decode(&shares, data.len()).is_err());
    }

    /// Encoding is deterministic and blocks have the advertised length.
    #[test]
    fn encoding_is_deterministic(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        index in 0usize..10,
    ) {
        let codec = Codec::non_systematic(10, 3).unwrap();
        let a = codec.encode_block(&data, index);
        let b = codec.encode_block(&data, index);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), codec.block_len(data.len()));
    }

    /// Every accepted redundancy configuration satisfies both paper
    /// requirements: K_r clouds always suffice, K_s − 1 never do.
    #[test]
    fn config_requirements_hold(
        clouds in 1usize..10,
        k in 1usize..16,
        k_r in 1usize..10,
        k_s in 1usize..10,
    ) {
        if let Ok(cfg) = RedundancyConfig::new(clouds, k, k_r, k_s) {
            prop_assert!(cfg.k_r() * cfg.fair_share() >= cfg.k());
            prop_assert!((cfg.k_s() - 1) * cfg.per_cloud_cap() < cfg.k());
            prop_assert!(cfg.fair_share() <= cfg.per_cloud_cap());
            prop_assert!(cfg.max_block_count() <= 255);
        }
    }

    /// A corrupted share either fails to decode or produces different
    /// output — never silently the same plaintext.
    #[test]
    fn corruption_is_never_silently_correct(
        data in proptest::collection::vec(any::<u8>(), 8..512),
        flip_byte in any::<u8>(),
    ) {
        prop_assume!(flip_byte != 0);
        let codec = Codec::non_systematic(10, 3).unwrap();
        let indices = [1usize, 5, 8];
        let mut blocks = codec.encode_blocks(&data, &indices);
        let mut corrupted = blocks[1].to_vec();
        corrupted[0] ^= flip_byte;
        blocks[1] = corrupted.into();
        let shares: Vec<(usize, &[u8])> = indices
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        match codec.decode(&shares, data.len()) {
            Ok(decoded) => prop_assert_ne!(decoded, data),
            Err(_) => {}
        }
    }
}
