//! Arithmetic in GF(2⁸), the finite field underlying Reed-Solomon coding.
//!
//! The field is GF(2)[x]/(x⁸ + x⁴ + x³ + x² + 1) (the 0x11D polynomial,
//! as in AES-agnostic RS implementations). Multiplication and inversion
//! go through log/exp tables computed at compile time, so there is no
//! runtime table-initialization state.

/// The irreducible polynomial (without the x⁸ term) defining the field.
pub const POLY: u16 = 0x1D;

const fn build_tables() -> ([u8; 256], [u8; 512]) {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        // Multiply x by the generator 2 in GF(256).
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    // Duplicate the exp table so exp[log a + log b] needs no modulo.
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (log, exp)
}

const TABLES: ([u8; 256], [u8; 512]) = build_tables();
const LOG: [u8; 256] = TABLES.0;
const EXP: [u8; 512] = TABLES.1;

/// Adds two field elements (XOR; addition and subtraction coincide).
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize + 255 - LOG[b as usize] as usize) % 255]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Raises `a` to the power `e`.
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = LOG[a as usize] as u64 * e as u64;
    EXP[(l % 255) as usize]
}

/// A precomputed 256-entry product table for one coefficient:
/// `t[x] = c * x`. Costs one 256-byte build, then
/// [`mul_add_slice_with_table`] does a single lookup per byte instead
/// of two (log + exp) plus a zero branch — build once per coefficient
/// that gets reused across many bytes (e.g. a generator-matrix row).
pub type MulTable = [u8; 256];

/// Builds the product table for `c` (see [`MulTable`]).
pub fn mul_table(c: u8) -> MulTable {
    let mut t = [0u8; 256];
    if c == 0 {
        return t;
    }
    let lc = LOG[c as usize] as usize;
    let mut x = 1usize;
    while x < 256 {
        t[x] = EXP[lc + LOG[x] as usize];
        x += 1;
    }
    t
}

/// `dst[i] ^= table[src[i]]` for all `i` — the table-driven form of
/// [`mul_add_slice`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_slice_with_table(dst: &mut [u8], src: &[u8], table: &MulTable) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if dst.len() >= 16 && x86::available() {
        // SAFETY: SSSE3 support was just verified.
        unsafe { x86::mul_slice(dst, src, table, true) };
        return;
    }
    // Eight lookups per iteration composed into a single u64
    // read-xor-write, so `dst` sees one load and one store per 8 bytes
    // instead of a byte-wide read-modify-write each.
    let mut dch = dst.chunks_exact_mut(8);
    let mut sch = src.chunks_exact(8);
    for (d, s) in (&mut dch).zip(&mut sch) {
        let sv = u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        let m = (table[(sv & 0xFF) as usize] as u64)
            | (table[(sv >> 8 & 0xFF) as usize] as u64) << 8
            | (table[(sv >> 16 & 0xFF) as usize] as u64) << 16
            | (table[(sv >> 24 & 0xFF) as usize] as u64) << 24
            | (table[(sv >> 32 & 0xFF) as usize] as u64) << 32
            | (table[(sv >> 40 & 0xFF) as usize] as u64) << 40
            | (table[(sv >> 48 & 0xFF) as usize] as u64) << 48
            | (table[(sv >> 56) as usize] as u64) << 56;
        let dv = u64::from_le_bytes((&*d).try_into().expect("8-byte chunk")) ^ m;
        d.copy_from_slice(&dv.to_le_bytes());
    }
    for (d, s) in dch.into_remainder().iter_mut().zip(sch.remainder()) {
        *d ^= table[*s as usize];
    }
}

/// SSSE3 `pshufb` kernels: a GF(2⁸) multiply is linear over GF(2), so
/// `c·x = T_lo[x & 15] ^ T_hi[x >> 4]` with two 16-entry nibble tables
/// derived from the coefficient's [`MulTable`]. `pshufb` performs 16
/// such nibble lookups per instruction, an order of magnitude past the
/// scalar one-load-per-byte ceiling. Used only when the CPU reports
/// SSSE3 at runtime; results are bit-identical to the scalar loops
/// (both compute the same field product).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::MulTable;
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
        _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Whether the SIMD kernels may be used on this CPU.
    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("ssse3")
    }

    /// The lo/hi nibble tables of `table`, packed for `pshufb`.
    #[inline]
    fn nibble_tables(table: &MulTable) -> ([u8; 16], [u8; 16]) {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for x in 0..16usize {
            lo[x] = table[x];
            hi[x] = table[x << 4];
        }
        (lo, hi)
    }

    /// `dst ^= c·src` (when `accumulate`) or `dst = c·src`, 16 bytes
    /// per iteration; the sub-16-byte tail falls back to the scalar
    /// table loop.
    ///
    /// # Safety
    ///
    /// The CPU must support SSSE3 (check [`available`]).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_slice(dst: &mut [u8], src: &[u8], table: &MulTable, accumulate: bool) {
        debug_assert_eq!(dst.len(), src.len());
        let (lo, hi) = nibble_tables(table);
        // SAFETY: the nibble tables are 16 valid bytes each; every
        // chunk below is exactly 16 bytes, so the unaligned 128-bit
        // loads/stores stay in bounds.
        let tlo = _mm_loadu_si128(lo.as_ptr().cast::<__m128i>());
        let thi = _mm_loadu_si128(hi.as_ptr().cast::<__m128i>());
        let mask = _mm_set1_epi8(0x0F);
        let mut dch = dst.chunks_exact_mut(16);
        let mut sch = src.chunks_exact(16);
        for (d, s) in (&mut dch).zip(&mut sch) {
            let sv = _mm_loadu_si128(s.as_ptr().cast::<__m128i>());
            let lo_n = _mm_and_si128(sv, mask);
            let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(sv), mask);
            let mut prod = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo_n), _mm_shuffle_epi8(thi, hi_n));
            if accumulate {
                prod = _mm_xor_si128(prod, _mm_loadu_si128(d.as_ptr().cast::<__m128i>()));
            }
            _mm_storeu_si128(d.as_mut_ptr().cast::<__m128i>(), prod);
        }
        for (d, s) in dch.into_remainder().iter_mut().zip(sch.remainder()) {
            if accumulate {
                *d ^= table[*s as usize];
            } else {
                *d = table[*s as usize];
            }
        }
    }
}

/// `dst[i] = table[src[i]]` for all `i` — the *initializing* form of
/// [`mul_add_slice_with_table`]: the destination is overwritten, not
/// accumulated into, so fresh output buffers skip a read pass.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_slice_with_table(dst: &mut [u8], src: &[u8], table: &MulTable) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    if dst.len() >= 16 && x86::available() {
        // SAFETY: SSSE3 support was just verified.
        unsafe { x86::mul_slice(dst, src, table, false) };
        return;
    }
    let mut dch = dst.chunks_exact_mut(8);
    let mut sch = src.chunks_exact(8);
    for (d, s) in (&mut dch).zip(&mut sch) {
        let sv = u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        let m = (table[(sv & 0xFF) as usize] as u64)
            | (table[(sv >> 8 & 0xFF) as usize] as u64) << 8
            | (table[(sv >> 16 & 0xFF) as usize] as u64) << 16
            | (table[(sv >> 24 & 0xFF) as usize] as u64) << 24
            | (table[(sv >> 32 & 0xFF) as usize] as u64) << 32
            | (table[(sv >> 40 & 0xFF) as usize] as u64) << 40
            | (table[(sv >> 48 & 0xFF) as usize] as u64) << 48
            | (table[(sv >> 56) as usize] as u64) << 56;
        d.copy_from_slice(&m.to_le_bytes());
    }
    for (d, s) in dch.into_remainder().iter_mut().zip(sch.remainder()) {
        *d = table[*s as usize];
    }
}

/// `dst[i] ^= src[i]` for all `i`, eight bytes at a time (XOR is both
/// addition and coefficient-1 multiply-add in GF(2⁸)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    let mut dch = dst.chunks_exact_mut(8);
    let mut sch = src.chunks_exact(8);
    for (d, s) in (&mut dch).zip(&mut sch) {
        let x = u64::from_ne_bytes((&*d).try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dch.into_remainder().iter_mut().zip(sch.remainder()) {
        *d ^= s;
    }
}

/// `dst[i] ^= c * src[i]` for all `i` — the inner loop of encoding and
/// decoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    let lc = LOG[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[lc + LOG[*s as usize] as usize];
        }
    }
}

/// `dst[i] = c * dst[i]` for all `i`.
pub fn scale_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let lc = LOG[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = EXP[lc + LOG[*d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp and log are mutual inverses on the nonzero elements.
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply + reduction, the definitional algorithm.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut r = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1D;
                }
                b >>= 1;
            }
            r
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
            assert_eq!(mul(a, 1), a);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn distributivity_spot_checks() {
        for a in [3u8, 87, 255] {
            for b in [5u8, 120, 254] {
                for c in [7u8, 99, 200] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 29, 255] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn mul_add_slice_is_fused_multiply_xor() {
        let src = [1u8, 2, 3, 250];
        let mut dst = [9u8, 9, 9, 9];
        mul_add_slice(&mut dst, &src, 7);
        for i in 0..4 {
            assert_eq!(dst[i], add(9, mul(7, src[i])));
        }
    }

    #[test]
    fn mul_table_matches_mul() {
        for c in [0u8, 1, 2, 7, 29, 128, 255] {
            let t = mul_table(c);
            for x in 0..=255u8 {
                assert_eq!(t[x as usize], mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn table_form_matches_scalar_form() {
        let src: Vec<u8> = (0..1000).map(|i| (i * 31 % 256) as u8).collect();
        for c in [0u8, 1, 3, 77, 255] {
            let mut a: Vec<u8> = (0..1000).map(|i| (i * 17 % 256) as u8).collect();
            let mut b = a.clone();
            mul_add_slice(&mut a, &src, c);
            mul_add_slice_with_table(&mut b, &src, &mul_table(c));
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    fn initializing_form_overwrites() {
        let src: Vec<u8> = (0..99).map(|i| (i * 23 % 256) as u8).collect();
        for c in [0u8, 1, 42, 255] {
            let t = mul_table(c);
            let mut dst = vec![0xAAu8; 99];
            mul_slice_with_table(&mut dst, &src, &t);
            let expect: Vec<u8> = src.iter().map(|&s| mul(c, s)).collect();
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn xor_slice_handles_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            xor_slice(&mut dst, &src);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn scale_slice_by_zero_and_one() {
        let mut a = [5u8, 6, 7];
        scale_slice(&mut a, 1);
        assert_eq!(a, [5, 6, 7]);
        scale_slice(&mut a, 0);
        assert_eq!(a, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(5, 0);
    }
}
