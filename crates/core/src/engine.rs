//! The shared pull-based transfer engine (paper §6.2).
//!
//! The paper's data plane is one idea applied everywhere: an idle
//! (cloud, connection) pair *pulls* the next best block, so a faster
//! cloud — whose connections go idle more often — naturally receives
//! more work. This module implements that dispatch loop exactly once.
//! What differs between upload, download, and the baseline clients is
//! only *which* block an idle connection should take and *what* to do
//! when it lands: that is a [`TransferPolicy`].
//!
//! The engine owns everything the five former hand-rolled loops
//! duplicated: the worker pool (one actor per cloud connection),
//! a traced [`Retry`] around every wire call, `unidrive-obs`
//! counters, spans, and `BlockDispatched`/`BlockCompleted` events, feeding the
//! [`BandwidthProbe`], and idle parking. Workers park on a
//! [`Notifier`] (an eventcount) instead of polling: each completion or
//! failure broadcasts, so an idle connection re-polls its policy only
//! when the schedulable state may actually have changed — no timer
//! churn in the simulator, no busy-wait under wall clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{CloudError, CloudId, CloudSet, Retry, RetryPolicy};
use unidrive_obs::{Event, Obs, SpanId};
use unidrive_sim::{spawn, Notifier, Runtime, Task, Time};
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::probe::BandwidthProbe;

/// What the engine should do on the wire for one job.
pub enum WireOp {
    /// Upload `payload()` to `path`. The payload is produced lazily by
    /// the worker, outside the policy lock — block encoding is the CPU
    /// cost here and must not serialize the scheduler.
    Upload {
        /// Object path on the cloud.
        path: String,
        /// Produces the bytes to upload.
        payload: Box<dyn FnOnce() -> Bytes + Send>,
    },
    /// Download the object at `path`.
    Download {
        /// Object path on the cloud.
        path: String,
    },
}

impl std::fmt::Debug for WireOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireOp::Upload { path, .. } => f.debug_struct("Upload").field("path", path).finish(),
            WireOp::Download { path } => f.debug_struct("Download").field("path", path).finish(),
        }
    }
}

/// One job handed out by a policy: the wire operation plus the
/// bookkeeping the policy needs back on completion.
#[derive(Debug)]
pub struct JobDesc<T> {
    /// Opaque policy state returned via `on_success`/`on_failure`.
    pub token: T,
    /// Block index (for the dispatch/completion events).
    pub index: u16,
    /// Whether this is an over-provisioned extra (event + counter tag).
    pub extra: bool,
    /// Causal parent for this job's `engine.block` span — how span
    /// context crosses the policy-lock boundary: whichever worker ends
    /// up executing the job keeps parentage to the batch (or segment)
    /// span the policy minted it under. `None` falls back to the
    /// engine's batch span.
    pub parent_span: Option<SpanId>,
    /// What to do on the wire.
    pub op: WireOp,
}

/// The scheduling brain driven by the [`TransferEngine`].
///
/// All methods are called under the engine's policy lock; they must not
/// block (no wire calls, no sleeps) — heavy work belongs in the
/// [`WireOp`] payload closure or in the caller.
///
/// Deadlock-safety invariant: whenever nothing is in flight and
/// `next_job` would return `None` for every cloud, `is_done` must be
/// `true` — the engine parks idle workers until a completion notifies
/// them, so a policy that is "not done" yet hands out no work with
/// nothing in flight would park everyone forever. Policies uphold this
/// by re-deriving their finished flag after every completion (and once
/// at construction, for empty batches).
pub trait TransferPolicy: Send + 'static {
    /// Per-job bookkeeping round-tripped through the engine.
    type Token: Send;

    /// Picks the next job for an idle connection of `cloud`, or `None`
    /// if that cloud has nothing useful to do right now.
    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<Self::Token>>;

    /// Whether the batch is over (workers exit their loops).
    fn is_done(&self) -> bool;

    /// A job finished. `data` carries downloaded bytes (`None` for
    /// uploads); `now` is the runtime clock right after the transfer.
    fn on_success(&mut self, cloud: CloudId, token: Self::Token, data: Option<Bytes>, now: Time);

    /// A job failed after retries.
    fn on_failure(&mut self, cloud: CloudId, token: Self::Token, error: CloudError, now: Time);
}

/// Engine wiring shared by every policy.
#[derive(Debug, Clone)]
pub struct EngineParams {
    /// Worker actors per cloud.
    pub connections_per_cloud: usize,
    /// Retry policy wrapped around every wire call.
    pub retry: RetryPolicy,
    /// Observability handle (counters, events, retry trace).
    pub obs: Obs,
    /// Counter/event namespace: counters are `{label}.blocks_dispatched`
    /// etc., retry traces `{label}:{cloud}`.
    pub label: String,
    /// Feed completed transfers into this probe as in-channel bandwidth
    /// measurements.
    pub probe: Option<Arc<BandwidthProbe>>,
    /// Upper bound on idle parking before an extra re-poll; `None`
    /// parks until notified (see `DataPlaneConfig::idle_wait`).
    pub idle_wait: Option<Duration>,
    /// Batch-level span: parent for `engine.worker` spans and the
    /// fallback parent for `engine.block` spans whose [`JobDesc`]
    /// carries none.
    pub batch_span: Option<SpanId>,
    /// Stall watchdog + flight recorder; `None` (the default) changes
    /// nothing about engine behavior.
    pub watchdog: Option<WatchdogConfig>,
}

impl EngineParams {
    /// Minimal wiring: one connection per cloud, default retries, no
    /// observability, no probe, no watchdog.
    pub fn new(label: impl Into<String>) -> Self {
        EngineParams {
            connections_per_cloud: 1,
            retry: RetryPolicy::new(),
            obs: Obs::noop(),
            label: label.into(),
            probe: None,
            idle_wait: None,
            batch_span: None,
            watchdog: None,
        }
    }
}

/// Deadline + dump destination for the engine's stall watchdog.
///
/// When configured, every engine run carries a deadline (virtual time
/// under sim, wall time otherwise). If the policy is not done when it
/// expires — the signature of the PR 2 bounce-loop class of hang,
/// where every worker parks forever on the notifier — the watchdog
/// dumps a flight record (last spans/events plus per-worker state) to
/// `dump_path`, aborts the workers, and lets `join` return instead of
/// hanging silently. A hard block failure (retries exhausted) also
/// triggers the dump, so the record captures the state that led up to
/// a failing batch.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How long the batch may run before it is declared stalled.
    pub deadline: Duration,
    /// File the flight-recorder JSON is written to.
    pub dump_path: String,
}

/// Diagnostic state of one engine worker, captured in flight dumps.
#[derive(Debug, Clone)]
struct WorkerState {
    cloud: String,
    conn: usize,
    state: &'static str,
    current_path: String,
    completed: u64,
    failed: u64,
    since_ns: u64,
}

/// How many trailing spans/events a flight dump keeps.
const FLIGHT_RECORD_TAIL: usize = 256;

/// Shared stall/failure recorder: worker states, the abort flag the
/// watchdog trips, and the once-only dump.
struct FlightRecorder {
    config: WatchdogConfig,
    label: String,
    obs: Obs,
    aborted: AtomicBool,
    dumped: AtomicBool,
    workers: Mutex<Vec<WorkerState>>,
}

impl FlightRecorder {
    fn new(config: WatchdogConfig, label: String, obs: Obs, slots: Vec<(String, usize)>) -> Self {
        FlightRecorder {
            config,
            label,
            obs,
            aborted: AtomicBool::new(false),
            dumped: AtomicBool::new(false),
            workers: Mutex::new(
                slots
                    .into_iter()
                    .map(|(cloud, conn)| WorkerState {
                        cloud,
                        conn,
                        state: "idle",
                        current_path: String::new(),
                        completed: 0,
                        failed: 0,
                        since_ns: 0,
                    })
                    .collect(),
            ),
        }
    }

    fn set_state(&self, slot: usize, state: &'static str, path: &str, now_ns: u64) {
        let mut w = self.workers.lock();
        if let Some(s) = w.get_mut(slot) {
            s.state = state;
            s.current_path.clear();
            s.current_path.push_str(path);
            s.since_ns = now_ns;
        }
    }

    fn count_outcome(&self, slot: usize, ok: bool) {
        let mut w = self.workers.lock();
        if let Some(s) = w.get_mut(slot) {
            if ok {
                s.completed += 1;
            } else {
                s.failed += 1;
            }
        }
    }

    /// Writes the flight record once; later triggers are no-ops.
    fn dump(&self, reason: &str, now_ns: u64) {
        if self.dumped.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"flight_record\": \"unidrive/v1\",\n");
        out.push_str(&format!("\"reason\": \"{reason}\",\n"));
        out.push_str(&format!("\"label\": \"{}\",\n", self.label));
        out.push_str(&format!("\"t_ns\": {now_ns},\n\"workers\": ["));
        for (i, w) in self.workers.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"cloud\": \"{}\", \"conn\": {}, \"state\": \"{}\", \"path\": \"{}\", \
                 \"completed\": {}, \"failed\": {}, \"since_ns\": {}}}",
                w.cloud, w.conn, w.state, w.current_path, w.completed, w.failed, w.since_ns
            ));
        }
        out.push_str("\n],\n\"snapshot\": ");
        match self.obs.snapshot() {
            Some(mut snap) => {
                snap.canonicalize();
                let keep_ev = snap.events.len().saturating_sub(FLIGHT_RECORD_TAIL);
                snap.events.drain(..keep_ev);
                let keep_sp = snap.spans.len().saturating_sub(FLIGHT_RECORD_TAIL);
                snap.spans.drain(..keep_sp);
                out.push_str(&snap.to_json());
            }
            None => out.push_str("null\n"),
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&self.config.dump_path, out) {
            eprintln!(
                "flight recorder: failed to write {}: {e}",
                self.config.dump_path
            );
        } else {
            eprintln!(
                "flight recorder: {} ({reason}) dumped to {}",
                self.label, self.config.dump_path
            );
        }
    }
}

/// Counter names formatted once per engine, not once per block.
struct CounterNames {
    dispatched: String,
    extra_dispatched: String,
    completed: String,
    block_bytes: String,
    block_elapsed: String,
    failures: String,
}

impl CounterNames {
    fn new(label: &str) -> Self {
        CounterNames {
            dispatched: format!("{label}.blocks_dispatched"),
            extra_dispatched: format!("{label}.extra_blocks_dispatched"),
            completed: format!("{label}.blocks_completed"),
            block_bytes: format!("{label}.block_bytes"),
            block_elapsed: format!("{label}.block_elapsed_ns"),
            failures: format!("{label}.block_failures"),
        }
    }
}

/// A running worker pool driving one [`TransferPolicy`].
///
/// Workers spawn on [`TransferEngine::start`] and run until the policy
/// reports done; the caller then either [`join`](TransferEngine::join)s
/// (returning the policy with all its results) or
/// [`detach`](TransferEngine::detach)es after
/// [`wait_until`](TransferEngine::wait_until) some milestone (the
/// availability-first upload path).
pub struct TransferEngine<P: TransferPolicy> {
    policy: Arc<Mutex<P>>,
    signal: Arc<dyn Notifier>,
    workers: Vec<Task<()>>,
}

impl<P: TransferPolicy> std::fmt::Debug for TransferEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferEngine")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<P: TransferPolicy> TransferEngine<P> {
    /// Spawns `connections_per_cloud` workers per cloud, each pulling
    /// jobs from `policy` until it is done.
    pub fn start(
        rt: &Arc<dyn Runtime>,
        clouds: &CloudSet,
        params: EngineParams,
        policy: P,
    ) -> Self {
        let born_done = policy.is_done();
        let policy = Arc::new(Mutex::new(policy));
        let signal = rt.notifier();
        let names = Arc::new(CounterNames::new(&params.label));
        let recorder = params.watchdog.clone().map(|config| {
            let mut slots = Vec::new();
            for (_, cloud) in clouds.iter() {
                for conn in 0..params.connections_per_cloud {
                    slots.push((cloud.name().to_owned(), conn));
                }
            }
            Arc::new(FlightRecorder::new(
                config,
                params.label.clone(),
                params.obs.clone(),
                slots,
            ))
        });
        let mut workers = Vec::new();
        let mut slot = 0usize;
        for (cloud_id, cloud) in clouds.iter() {
            for conn in 0..params.connections_per_cloud {
                let rt2 = Arc::clone(rt);
                let cloud = Arc::clone(cloud);
                let policy = Arc::clone(&policy);
                let signal = Arc::clone(&signal);
                let params = params.clone();
                let names = Arc::clone(&names);
                let retry_label = format!("{}:{}", params.label, cloud.name());
                let cloud_blocks = format!("{}.cloud.{}.blocks", params.label, cloud.name());
                let ctx = WorkerCtx {
                    slot,
                    conn,
                    // Track 0 is the client/control lane; worker lanes
                    // start at 1 in (cloud, connection) order.
                    track: slot as u32 + 1,
                    recorder: recorder.clone(),
                };
                workers.push(spawn(
                    rt,
                    &format!("{}-{}-{}", params.label, cloud.name(), conn),
                    move || {
                        worker_loop(
                            &rt2,
                            cloud_id,
                            &*cloud,
                            &policy,
                            &signal,
                            &params,
                            &names,
                            &retry_label,
                            &cloud_blocks,
                            ctx,
                        );
                    },
                ));
                slot += 1;
            }
        }
        // The watchdog only makes sense for batches that do work: a
        // born-done policy never notifies, so the watchdog would sleep
        // out its whole deadline and stall `join` instead of guarding
        // it.
        if let Some(rec) = recorder.filter(|_| !born_done) {
            let rt2 = Arc::clone(rt);
            let policy = Arc::clone(&policy);
            let signal = Arc::clone(&signal);
            workers.push(spawn(rt, &format!("{}-watchdog", rec.label), move || {
                watchdog_loop(&rt2, &policy, &signal, &rec);
            }));
        }
        TransferEngine {
            policy,
            signal,
            workers,
        }
    }

    /// Runs `f` under the policy lock (snapshots, milestone stamps).
    pub fn with<R>(&self, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.policy.lock())
    }

    /// Blocks the calling actor until `cond` holds or the policy is
    /// done, re-checking on every completion broadcast.
    pub fn wait_until(&self, mut cond: impl FnMut(&mut P) -> bool) {
        loop {
            let seen = self.signal.generation();
            {
                let mut p = self.policy.lock();
                if cond(&mut p) || p.is_done() {
                    return;
                }
            }
            self.signal.wait(seen);
        }
    }

    /// Waits for every worker to exit and returns the policy.
    pub fn join(self) -> P {
        for w in self.workers {
            w.join();
        }
        Arc::try_unwrap(self.policy)
            .unwrap_or_else(|_| panic!("policy still shared after workers exited"))
            .into_inner()
    }

    /// Drops the worker handles; the pool keeps running on its own
    /// actors until the policy is done (reliability-second background
    /// work).
    pub fn detach(self) {
        drop(self.workers);
    }
}

/// Per-worker identity: flight-recorder slot, connection number, and
/// span display lane.
struct WorkerCtx {
    slot: usize,
    conn: usize,
    track: u32,
    recorder: Option<Arc<FlightRecorder>>,
}

/// The stall watchdog: parks on the same eventcount as the workers,
/// re-checking the policy on every completion broadcast, and trips the
/// flight recorder if the batch outlives its deadline.
fn watchdog_loop<P: TransferPolicy>(
    rt: &Arc<dyn Runtime>,
    policy: &Arc<Mutex<P>>,
    signal: &Arc<dyn Notifier>,
    rec: &Arc<FlightRecorder>,
) {
    let deadline_at = rt.now() + rec.config.deadline;
    loop {
        let seen = signal.generation();
        if policy.lock().is_done() || rec.aborted.load(Ordering::SeqCst) {
            return;
        }
        let now = rt.now();
        if now >= deadline_at {
            rec.dump("stall", now.as_nanos());
            rec.aborted.store(true, Ordering::SeqCst);
            // Wake every parked worker so it can observe the abort and
            // exit; without this, `join` would hang exactly the way the
            // watchdog exists to prevent.
            signal.notify_all();
            return;
        }
        signal.wait_timeout(seen, deadline_at.saturating_duration_since(now));
    }
}

/// The single dispatch loop every transfer in the workspace now runs.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P: TransferPolicy>(
    rt: &Arc<dyn Runtime>,
    cloud_id: CloudId,
    cloud: &dyn unidrive_cloud::CloudStore,
    policy: &Arc<Mutex<P>>,
    signal: &Arc<dyn Notifier>,
    params: &EngineParams,
    names: &CounterNames,
    retry_label: &str,
    cloud_blocks: &str,
    ctx: WorkerCtx,
) {
    let obs = &params.obs;
    let mut wspan = obs.span("engine.worker", params.batch_span);
    wspan.set_track(ctx.track);
    wspan.attr_str("label", params.label.as_str());
    wspan.attr_str("cloud", cloud.name());
    wspan.attr_u64("conn", ctx.conn as u64);
    let mut jobs_run = 0u64;
    loop {
        if let Some(rec) = &ctx.recorder {
            if rec.aborted.load(Ordering::SeqCst) {
                rec.set_state(ctx.slot, "aborted", "", rt.now().as_nanos());
                break;
            }
        }
        // Eventcount protocol: read the generation before polling the
        // policy so a completion landing between the poll and the wait
        // still wakes us (no lost wake-ups).
        let seen = signal.generation();
        let job = {
            let mut p = policy.lock();
            if p.is_done() {
                break;
            }
            p.next_job(cloud_id)
        };
        let Some(JobDesc {
            token,
            index,
            extra,
            parent_span,
            op,
        }) = job
        else {
            match params.idle_wait {
                Some(bound) => {
                    signal.wait_timeout(seen, bound);
                }
                None => signal.wait(seen),
            }
            continue;
        };
        jobs_run += 1;
        // Events stamp through the obs registry clock (which reads the
        // sim engine state), so everything below runs lock-free with
        // respect to the policy.
        let mut bspan = obs.span("engine.block", parent_span.or(params.batch_span));
        bspan.set_track(ctx.track);
        bspan.attr_u64("cloud", cloud_id.0 as u64);
        bspan.attr_u64("index", index as u64);
        bspan.attr_bool("extra", extra);
        let t0;
        let (result, bytes_len) = match op {
            WireOp::Upload { path, payload } => {
                let data = payload();
                let bytes_len = data.len() as u64;
                obs.inc(&names.dispatched);
                if extra {
                    obs.inc(&names.extra_dispatched);
                }
                obs.event(|| Event::BlockDispatched {
                    cloud: cloud_id.0,
                    index,
                    bytes: bytes_len,
                    extra,
                });
                t0 = rt.now();
                if let Some(rec) = &ctx.recorder {
                    rec.set_state(ctx.slot, "transferring", &path, t0.as_nanos());
                }
                let r = Retry::new(rt, &params.retry)
                    .obs(obs, retry_label)
                    .span(bspan.id(), ctx.track)
                    .run(|| cloud.upload(&path, data.clone()));
                (r.map(|()| None), bytes_len)
            }
            WireOp::Download { path } => {
                obs.inc(&names.dispatched);
                obs.event(|| Event::BlockDispatched {
                    cloud: cloud_id.0,
                    index,
                    bytes: 0, // size unknown until the block arrives
                    extra: false,
                });
                t0 = rt.now();
                if let Some(rec) = &ctx.recorder {
                    rec.set_state(ctx.slot, "transferring", &path, t0.as_nanos());
                }
                let r = Retry::new(rt, &params.retry)
                    .obs(obs, retry_label)
                    .span(bspan.id(), ctx.track)
                    .run(|| cloud.download(&path));
                let len = r.as_ref().map_or(0, |d| d.len() as u64);
                (r.map(Some), len)
            }
        };
        let now = rt.now();
        let elapsed = now.saturating_duration_since(t0);
        bspan.attr_bool("ok", result.is_ok());
        bspan.attr_u64("bytes", bytes_len);
        bspan.end();
        if let Some(rec) = &ctx.recorder {
            rec.count_outcome(ctx.slot, result.is_ok());
            rec.set_state(ctx.slot, "idle", "", now.as_nanos());
        }
        match &result {
            Ok(_) => {
                if let Some(probe) = &params.probe {
                    probe.record(cloud_id, bytes_len, elapsed);
                }
                obs.inc(&names.completed);
                obs.add(&names.block_bytes, bytes_len);
                obs.inc(cloud_blocks);
                obs.observe(&names.block_elapsed, elapsed.as_nanos() as u64);
                obs.series_observe("engine.block_ns", cloud.name(), elapsed.as_nanos() as u64);
                obs.series_add("engine.block_bytes", cloud.name(), bytes_len);
                obs.event(|| Event::BlockCompleted {
                    cloud: cloud_id.0,
                    index,
                    bytes: bytes_len,
                    elapsed_ns: elapsed.as_nanos() as u64,
                });
            }
            Err(_) => {
                obs.inc(&names.failures);
                obs.series_add("engine.block_fail", cloud.name(), 1);
                // A hard failure (retries exhausted) is the precursor
                // of most stalls: capture the state now, while the
                // other workers are still mid-flight.
                if let Some(rec) = &ctx.recorder {
                    rec.dump("block_failure", now.as_nanos());
                }
            }
        }
        {
            let mut p = policy.lock();
            match result {
                Ok(data) => p.on_success(cloud_id, token, data, now),
                Err(e) => p.on_failure(cloud_id, token, e, now),
            }
        }
        // The schedulable state changed: wake every parked connection
        // to re-poll (and to observe is_done on the final completion).
        signal.notify_all();
    }
    wspan.attr_u64("jobs", jobs_run);
}
