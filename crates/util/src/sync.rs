//! `std::sync` wrappers with `parking_lot`-style ergonomics.
//!
//! - `lock()`/`read()`/`write()` return guards directly; a poisoned
//!   lock is transparently recovered (the protected data is plain data
//!   in this workspace — a panicked holder never leaves it torn in a
//!   way later readers care about, and the sim engine must keep
//!   advancing even if one actor dies).
//! - [`Condvar::wait`] takes the guard by `&mut`, re-acquiring in
//!   place, so wait loops read naturally (`while p { cv.wait(&mut g) }`).

use std::sync::PoisonError;
use std::time::Instant;

/// Mutual exclusion primitive; `lock()` never returns a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison-transparent.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`]. Holds the `std` guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it out while blocked.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable whose `wait` re-acquires the guard in place.
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait; reports whether the deadline elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing and re-acquiring the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar")
    }
}

/// Reader-writer lock; `read()`/`write()` never return a `Result`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poison-transparent.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Poison-transparent.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn condvar_wait_reacquires_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_mutex_is_transparent() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
