//! The two [`MetaPlane`] implementations: the paper's lock-the-image
//! plane and the append-only oplog plane.
//!
//! [`LockPlane`] is the refactored-in original control flow of
//! `UniDriveClient`: quorum lock around every commit, version-file fast
//! path, delta-sync with λ compaction. Its behavior (cloud traffic,
//! span names and attributes, error shapes) is unchanged — only its
//! home moved.
//!
//! [`OplogPlane`] removes the per-commit lock: each device appends
//! encrypted [`MetaOp`] frames to its own op file on every cloud and
//! readers fold every visible op in the total `(lamport, device, seq)`
//! order (see `unidrive_meta::fold`). A commit is one quorum-acked
//! upload of the device's own file — no coordination with other
//! writers — so N concurrent writers of a hot folder scale instead of
//! serializing. The quorum lock survives only for base compaction,
//! triggered when the live log outgrows λ (the same ratio/floor the
//! delta plane uses).
//!
//! The op file is always uploaded as a full replace of the device's
//! retained frame tail, never as a download-modify-append: a torn
//! upload then persists a *prefix of valid frames* (salvaged by
//! `unframe_chunks`) and the next replace self-heals, whereas
//! read-modify-write could embed a torn tail mid-file and lose acked
//! ops.

use std::collections::BTreeMap;
use std::sync::Arc;

use unidrive_util::bytes::Bytes;
use unidrive_cloud::{CloudError, CloudSet, Retry, RetryPolicy};
use unidrive_crypto::{MetadataCipher, Sha1};
use unidrive_meta::{
    compact, fold, frame_chunks, op_file_path, parse_op_file_name, unframe_chunks, DeltaLog,
    MergeFn, MetaMode, MetaOp, MetaPlane, OplogBase, PlaneError, SyncFolderImage, OPLOG_BASE_PATH,
    OPLOG_DIR,
};
use unidrive_obs::{Obs, SpanId};
use unidrive_sim::{Runtime, SimRng};

use crate::control::{MetaError, MetadataStore, RemoteState};
use crate::lock::{LockConfig, LockError, QuorumLock};

impl From<LockError> for PlaneError {
    fn from(e: LockError) -> Self {
        match e {
            LockError::Contended { attempts } => PlaneError::Contended { attempts },
            LockError::QuorumUnreachable { reachable, quorum } => {
                PlaneError::QuorumUnreachable { reachable, quorum }
            }
        }
    }
}

impl From<MetaError> for PlaneError {
    fn from(e: MetaError) -> Self {
        match e {
            MetaError::QuorumWriteFailed { acked, quorum } => {
                PlaneError::QuorumWriteFailed { acked, quorum }
            }
            MetaError::Unreadable => PlaneError::Unreadable,
        }
    }
}

/// Builds the configured plane over `clouds`.
#[allow(clippy::too_many_arguments)]
pub fn build_plane(
    mode: MetaMode,
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    device: &str,
    passphrase: &str,
    retry: RetryPolicy,
    lock_config: LockConfig,
    rng: SimRng,
    obs: Obs,
    delta_ratio: f64,
    delta_floor: usize,
) -> Box<dyn MetaPlane> {
    match mode {
        MetaMode::Lock => Box::new(LockPlane::new(
            rt,
            clouds,
            device,
            passphrase,
            retry,
            lock_config,
            rng,
            obs,
            delta_ratio,
            delta_floor,
        )),
        MetaMode::Oplog => Box::new(OplogPlane::new(
            rt,
            clouds,
            device,
            passphrase,
            retry,
            lock_config,
            rng,
            obs,
            delta_ratio,
            delta_floor,
        )),
    }
}

/// The paper's metadata plane: quorum lock around every commit of the
/// DES-encrypted base + delta + version files (paper §5.2).
pub struct LockPlane {
    store: MetadataStore,
    lock: QuorumLock,
    obs: Obs,
    device: String,
    delta_ratio: f64,
    delta_floor: usize,
    /// The remote delta log and encrypted-base size as of the last
    /// read/commit; valid while the remote version equals the caller's
    /// current version (lets a commit skip re-downloading metadata).
    cached: Option<(DeltaLog, usize)>,
}

impl std::fmt::Debug for LockPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockPlane").field("device", &self.device).finish()
    }
}

impl LockPlane {
    /// Creates the lock plane for `device` over `clouds`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        device: &str,
        passphrase: &str,
        retry: RetryPolicy,
        lock_config: LockConfig,
        rng: SimRng,
        obs: Obs,
        delta_ratio: f64,
        delta_floor: usize,
    ) -> Self {
        let store = MetadataStore::new(Arc::clone(&rt), clouds.clone(), passphrase, retry);
        let lock = QuorumLock::new(rt, clouds, device, lock_config, rng).with_obs(obs.clone());
        LockPlane {
            store,
            lock,
            obs,
            device: device.to_owned(),
            delta_ratio,
            delta_floor,
            cached: None,
        }
    }
}

impl MetaPlane for LockPlane {
    fn mode(&self) -> MetaMode {
        MetaMode::Lock
    }

    fn poll(
        &mut self,
        current: &SyncFolderImage,
        round: Option<SpanId>,
    ) -> Result<Option<SyncFolderImage>, PlaneError> {
        let mut read_span = self.obs.span("meta.read", round);
        read_span.attr_str("device", self.device.as_str());
        let Some(version) = self.store.read_version() else {
            read_span.attr_bool("cached", true);
            return Ok(None);
        };
        if version == current.version || !crate::control::newer(&version, &current.version) {
            read_span.attr_bool("cached", true);
            return Ok(None);
        }
        read_span.attr_bool("cached", false);
        let remote = self.store.read_remote();
        read_span.end();
        let Some(RemoteState {
            image,
            delta,
            base_bytes,
        }) = remote.map_err(PlaneError::from)?
        else {
            return Ok(None);
        };
        self.cached = Some((delta, base_bytes));
        Ok(Some(image))
    }

    fn transact(
        &mut self,
        current: &SyncFolderImage,
        round: Option<SpanId>,
        build: &mut MergeFn<'_>,
    ) -> Result<Option<SyncFolderImage>, PlaneError> {
        let mut guard = self.lock.acquire_in(round)?;
        // Fast path: the tiny version file tells us whether a cloud
        // update exists at all; if not, the cached delta from our last
        // read/commit is current and the base + delta downloads are
        // skipped entirely (the point of the version-file design, §5.2).
        let mut read_span = self.obs.span("meta.read", round);
        read_span.attr_str("device", self.device.as_str());
        let version_now = self.store.read_version();
        let unchanged = version_now.as_ref().is_none_or(|v| *v == current.version);
        let remote = if unchanged {
            read_span.attr_bool("cached", true);
            self.cached.clone().map(|(delta, base_bytes)| RemoteState {
                image: current.clone(),
                delta,
                base_bytes,
            })
        } else {
            read_span.attr_bool("cached", false);
            self.store.read_remote().map_err(PlaneError::from)?
        };
        read_span.end();
        let Some((to_commit, stamp)) = build(remote.as_ref().map(|s| &s.image)) else {
            guard.release();
            return Ok(None);
        };

        // Delta-sync: append the records to the stored delta; compact
        // into a new base when past λ.
        let (new_base, delta) = match &remote {
            Some(state) => {
                let mut delta = state.delta.clone();
                delta.append(
                    DeltaLog::records_for(&state.image, &to_commit),
                    stamp.clone(),
                );
                if delta.should_compact(state.base_bytes, self.delta_ratio, self.delta_floor) {
                    (Some(&to_commit), DeltaLog::new(stamp.clone()))
                } else {
                    (None, delta)
                }
            }
            None => (Some(&to_commit), DeltaLog::new(stamp.clone())),
        };
        guard.refresh();
        let mut commit_span = self.obs.span("meta.commit", round);
        commit_span.attr_str("device", self.device.as_str());
        commit_span.attr_bool("compacted", new_base.is_some());
        let committed_meta = self.store.write_remote(new_base, &delta, &stamp);
        commit_span.end();
        committed_meta.map_err(PlaneError::from)?;
        guard.release();
        let base_bytes = match (new_base, &remote) {
            // Rough but adequate: ciphertext ≈ plaintext + padding + IV.
            (Some(image), _) => image.encode().len() + 16,
            (None, Some(state)) => state.base_bytes,
            (None, None) => 0,
        };
        self.cached = Some((delta, base_bytes));
        Ok(Some(to_commit))
    }
}

/// The folder label mixed into op ids. One client syncs one folder, so
/// a constant suffices; it namespaces op ids against other uses of the
/// same passphrase.
const OPLOG_FOLDER: &str = "root";

/// Compaction stops being optional when the live log exceeds this
/// multiple of λ: a contended lock or flaky quorum can defer any single
/// compaction, but nothing may defer all of them forever — the op cache
/// and the full-replace op-file body would grow without bound.
const OPLOG_COMPACT_ESCALATE: usize = 4;

/// Extra blocking compaction attempts once past the escalation cap
/// (each is a full [`QuorumLock::acquire_in`] with its own backoff).
const OPLOG_COMPACT_FORCED_RETRIES: usize = 2;

/// `a` covers `b` when `a`'s watermark is a pointwise superset: every
/// op folded into `b` is also folded into `a`. Replacing `b` with `a`
/// can then never lose an op, even one already trimmed from its
/// writer's op file. Coverage — not the version stamp — is the order
/// bases advance in: a base folding strictly more ops can still carry
/// an older stamp when the extra ops sort early in the total order.
fn covers(a: &OplogBase, b: &OplogBase) -> bool {
    b.watermark
        .iter()
        .all(|(device, seq)| a.watermark.get(device).copied().unwrap_or(0) >= *seq)
}

/// The append-only oplog metadata plane: per-device op files, total
/// `(lamport, device, seq)` fold order, quorum lock only for
/// compaction.
pub struct OplogPlane {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    device: String,
    cipher: MetadataCipher,
    retry: RetryPolicy,
    obs: Obs,
    lock: QuorumLock,
    delta_ratio: f64,
    delta_floor: usize,
    /// Retained tail of our own log: ops the compacted base's watermark
    /// does not cover yet, with their encrypted frames. The device's op
    /// file body is exactly `frame_chunks(my_frames)`.
    my_ops: Vec<MetaOp>,
    my_frames: Vec<Bytes>,
    /// Next op sequence number. Never reused, even after a failed
    /// append: the op may have landed on a minority of clouds, and two
    /// different ops must never share an id.
    next_seq: u64,
    /// Whether `next_seq` and the retained tail have been recovered
    /// from cloud state (done by the first fetch that reaches a read
    /// quorum). A restarted plane must not restart at seq 1: its old
    /// process's ops are quorum-acked under the same `(device, seq)`
    /// ids, so a reused id is silently deduped/filtered (the new commit
    /// never enters any fold) and reuses the id-derived encryption
    /// nonce for a different plaintext. Commits are refused until
    /// recovery has run.
    recovered: bool,
    /// Every op this plane has ever observed that its adopted base does
    /// not cover yet, keyed by op id with the framed size each occupies
    /// in an op file. Folds always include this cache, which makes them
    /// *monotone*: a writer that compacted may trim its op file before
    /// the new base is visible on the clouds we happen to read, and
    /// without the cache that read would fold old-base + trimmed-log —
    /// a regressed image whose missing files look like remote deletes
    /// (and whose garbage collection would destroy live segments).
    seen_ops: BTreeMap<[u8; 20], (MetaOp, usize)>,
    /// The freshest base this plane has ever decoded, with its
    /// ciphertext size. Monotone under version-stamp comparison, for
    /// the same reason as `seen_ops`.
    adopted_base: Option<(OplogBase, usize)>,
    /// Per-cloud (indexed by [`CloudId`]) byte length of this device's
    /// op file known acked on that cloud; 0 means unknown, forcing the
    /// next replication to full-replace there (self-healing).
    op_acked: Vec<usize>,
    /// The body the `op_acked` lengths refer to; a new body extending
    /// this one may be delta-appended on clouds whose capabilities
    /// allow it (see `replicate_op_file`).
    op_last_body: Bytes,
}

impl std::fmt::Debug for OplogPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OplogPlane")
            .field("device", &self.device)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

/// Everything one oplog read pass learned from the clouds.
struct OplogFetch {
    /// `fold(base, ops)`: the up-to-date folded state.
    folded: OplogBase,
    /// All distinct visible ops (including this device's in-memory
    /// tail), in deterministic id order.
    ops: Vec<MetaOp>,
    /// Ciphertext size of the stored base (drives the λ test).
    base_bytes: usize,
    /// Framed bytes of live ops (not covered by the base watermark).
    log_bytes: usize,
    /// Clouds whose oplog directory could be listed.
    reachable: usize,
}

impl OplogPlane {
    /// Creates the oplog plane for `device` over `clouds`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        device: &str,
        passphrase: &str,
        retry: RetryPolicy,
        lock_config: LockConfig,
        rng: SimRng,
        obs: Obs,
        delta_ratio: f64,
        delta_floor: usize,
    ) -> Self {
        let lock = QuorumLock::new(
            Arc::clone(&rt),
            clouds.clone(),
            device,
            lock_config,
            rng,
        )
        .with_obs(obs.clone());
        OplogPlane {
            rt,
            op_acked: vec![0; clouds.len()],
            clouds,
            device: device.to_owned(),
            cipher: MetadataCipher::from_passphrase(passphrase),
            retry,
            obs,
            lock,
            delta_ratio,
            delta_floor,
            my_ops: Vec::new(),
            my_frames: Vec::new(),
            next_seq: 1,
            recovered: false,
            seen_ops: BTreeMap::new(),
            adopted_base: None,
            op_last_body: Bytes::new(),
        }
    }

    /// Makes `base` this plane's adopted base: drops covered ops from
    /// the cache (what bounds it to the compaction cadence), trims the
    /// covered prefix of our retained tail so the next append rewrites
    /// a smaller file, and never hands out a seq the watermark proves
    /// was already committed.
    fn adopt_base(&mut self, base: OplogBase, base_bytes: usize) {
        self.seen_ops
            .retain(|_, (op, _)| op.seq > base.watermark.get(&op.device).copied().unwrap_or(0));
        let covered = base.watermark.get(&self.device).copied().unwrap_or(0);
        if covered > 0 {
            let mut frames = self.my_frames.iter();
            let mut kept = Vec::new();
            self.my_ops.retain(|op| {
                let frame = frames.next().expect("frames parallel to ops");
                if op.seq > covered {
                    kept.push(frame.clone());
                    true
                } else {
                    false
                }
            });
            self.my_frames = kept;
        }
        self.next_seq = self.next_seq.max(covered + 1);
        self.adopted_base = Some((base, base_bytes));
    }

    /// Downloads the base and every op file from every cloud
    /// (concurrently per cloud), decodes and dedups, folds.
    ///
    /// A cloud counts as reachable only when everything it advertised
    /// could actually be read: a listing that succeeds while a base or
    /// op-file download fails would otherwise pass the quorum gate with
    /// acked ops missing from the fold, and the regressed image would
    /// present as spurious remote deletes.
    fn fetch(&mut self, round: Option<SpanId>) -> OplogFetch {
        let mut span = self.obs.span("meta.oplog.fold", round);
        span.attr_str("device", self.device.as_str());
        // One task per cloud: list the oplog dir, then download the
        // base and each op file. A missing directory is a fresh cloud
        // (reachable, empty); a failing listing — or a listed file the
        // cloud then refuses to serve — is unreachable.
        let tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = Arc::clone(cloud);
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                unidrive_sim::spawn(&self.rt, "oplog-read", move || {
                    let entries = match Retry::new(&rt, &retry).run(|| cloud.list(OPLOG_DIR)) {
                        Ok(entries) => entries,
                        Err(CloudError::NotFound { .. }) => Vec::new(),
                        Err(_) => return None,
                    };
                    let mut names: Vec<String> = entries
                        .into_iter()
                        .filter(|e| !e.is_dir)
                        .map(|e| e.name)
                        .collect();
                    names.sort();
                    let mut base_ct: Option<Bytes> = None;
                    let mut bodies: Vec<Bytes> = Vec::new();
                    for name in names {
                        if name != "base" && parse_op_file_name(&name).is_none() {
                            continue;
                        }
                        let path = format!("{OPLOG_DIR}/{name}");
                        match Retry::new(&rt, &retry).run(|| cloud.download(&path)) {
                            Ok(body) if name == "base" => base_ct = Some(body),
                            Ok(body) => bodies.push(body),
                            // Listed-then-gone: as absent as unlisted.
                            Err(CloudError::NotFound { .. }) => {}
                            Err(_) => return None,
                        }
                    }
                    Some((base_ct, bodies))
                })
            })
            .collect();

        let mut reachable = 0usize;
        // The freshest base starts from what we already adopted — a
        // read that races a compaction's base uploads must not regress
        // to a base we have moved past. "Freshest" is watermark
        // coverage (see [`covers`]), with the version stamp only as a
        // tie-break between equal-coverage copies.
        let mut best_base: Option<(OplogBase, usize)> = self.adopted_base.clone();
        // Our own ops as stored on the clouds, for seq/tail recovery.
        let mut own: BTreeMap<u64, (MetaOp, Bytes)> = BTreeMap::new();
        for t in tasks {
            let Some((base_ct, bodies)) = t.join() else {
                continue;
            };
            reachable += 1;
            if let Some(ct) = base_ct {
                if let Ok(pt) = self.cipher.decrypt(&ct) {
                    if let Ok(base) = OplogBase::decode(&pt) {
                        let replace = match &best_base {
                            None => true,
                            Some((best, _)) => {
                                covers(&base, best)
                                    && (!covers(best, &base)
                                        || crate::control::newer(
                                            &base.image.version,
                                            &best.image.version,
                                        ))
                            }
                        };
                        if replace {
                            best_base = Some((base, ct.len()));
                        }
                    }
                }
            }
            for body in bodies {
                for frame in unframe_chunks(&body) {
                    let Ok(pt) = self.cipher.decrypt(&frame) else {
                        continue;
                    };
                    let Ok(op) = MetaOp::decode(&pt) else {
                        continue;
                    };
                    if !self.recovered && op.device == self.device {
                        own.entry(op.seq).or_insert_with(|| (op.clone(), frame.clone()));
                    }
                    // Dedup by id into the persistent cache (same op ⇒
                    // same deterministic ciphertext ⇒ same framed size).
                    let id = *op.id(OPLOG_FOLDER).as_bytes();
                    self.seen_ops.entry(id).or_insert((op, 4 + frame.len()));
                }
            }
        }
        // First fetch with a read quorum: recover where our own log
        // left off. A restarted device re-learns its surviving frames —
        // so the next full-replace upload preserves them instead of
        // clobbering the old process's acked ops — and resumes `seq`
        // after the highest committed one (ids are never reused; the
        // dedup and the id-derived nonce both depend on it).
        if !self.recovered && reachable >= self.clouds.quorum() {
            for (op, frame) in self.my_ops.iter().zip(&self.my_frames) {
                own.entry(op.seq).or_insert_with(|| (op.clone(), frame.clone()));
            }
            self.my_ops = Vec::with_capacity(own.len());
            self.my_frames = Vec::with_capacity(own.len());
            for (op, frame) in own.values() {
                self.my_ops.push(op.clone());
                self.my_frames.push(frame.clone());
            }
            let committed = own.keys().next_back().copied().unwrap_or(0);
            self.next_seq = self.next_seq.max(committed + 1);
            self.recovered = true;
        }
        // Our own unacked/partially-replicated tail is always visible
        // to ourselves, whatever the clouds returned.
        for (op, frame) in self.my_ops.iter().zip(&self.my_frames) {
            let id = *op.id(OPLOG_FOLDER).as_bytes();
            self.seen_ops
                .entry(id)
                .or_insert((op.clone(), 4 + frame.len()));
        }

        let (base, base_bytes) = best_base.unwrap_or((OplogBase::new(), 0));
        self.adopt_base(base.clone(), base_bytes);

        let mut ops = Vec::with_capacity(self.seen_ops.len());
        let mut log_bytes = 0usize;
        for (op, framed) in self.seen_ops.values() {
            // Everything left in the cache is live (uncovered) by the
            // retain in `adopt_base`.
            log_bytes += framed;
            ops.push(op.clone());
        }
        let outcome = fold(&base, &ops, OPLOG_FOLDER);
        span.attr_u64("reachable", reachable as u64);
        span.attr_u64("ops", ops.len() as u64);
        span.attr_u64("applied", outcome.applied as u64);
        span.attr_u64("conflicts", outcome.conflicts as u64);
        span.end();
        self.obs.inc("meta.oplog.folds");
        OplogFetch {
            folded: outcome.base,
            ops,
            base_bytes,
            log_bytes,
            reachable,
        }
    }

    /// Replicates `body` as this device's op file on every cloud
    /// (concurrently); returns how many clouds acked.
    ///
    /// The replication mode is chosen per cloud by *querying*
    /// [`CloudStore::caps`] instead of probing: a cloud advertising a
    /// native (atomic) append plus read-after-write, whose last acked
    /// body is a verified prefix of this one, gets only the new frames
    /// appended; every other cloud gets the torn-tail-safe full
    /// replace (see the note on [`CloudStore::append`] — the composed
    /// read-modify-write default can embed a previously torn tail, so
    /// it is never used here). A duplicate append after a
    /// reported-failed-but-applied attempt is harmless for *readers*
    /// (frames carry op ids and folds dedup by id), but it leaves the
    /// remote object longer than the body we wrote — so an appended ack
    /// is only recorded as the verified acked length when the retry
    /// loop reports a single attempt; a retried append (and any
    /// failure) zeroes that cloud's acked length, forcing the next
    /// replication to self-heal with a full replace.
    fn replicate_op_file(&mut self, body: &Bytes) -> usize {
        let path = op_file_path(&self.device);
        let prev = self.op_last_body.clone();
        let tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(id, cloud)| {
                let caps = cloud.caps();
                let extends = !prev.is_empty()
                    && body.len() > prev.len()
                    && self.op_acked[id.0] == prev.len()
                    && body[..prev.len()] == prev[..];
                let delta = (caps.native_append && caps.read_after_write && extends)
                    .then(|| body.slice(prev.len()..));
                let cloud = Arc::clone(cloud);
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                let path = path.clone();
                let body = body.clone();
                unidrive_sim::spawn(&self.rt, "oplog-append", move || {
                    let mut attempts = 0u32;
                    let ok = Retry::new(&rt, &retry)
                        .run(|| {
                            attempts += 1;
                            match &delta {
                                Some(tail) => cloud.append(&path, tail.clone()),
                                None => cloud.upload(&path, body.clone()),
                            }
                        })
                        .is_ok();
                    // An append that needed more than one attempt may
                    // have been applied by an earlier failed-but-applied
                    // try, leaving duplicate tail frames remotely: the
                    // ack counts, but the remote length is unknown.
                    let length_verified = delta.is_none() || attempts == 1;
                    (ok, ok && length_verified)
                })
            })
            .collect();
        let acks: Vec<(bool, bool)> = tasks.into_iter().map(|t| t.join()).collect();
        for (i, (_, verified)) in acks.iter().enumerate() {
            self.op_acked[i] = if *verified { body.len() } else { 0 };
        }
        self.op_last_body = body.clone();
        acks.into_iter().filter(|(ok, _)| *ok).count()
    }

    /// Folds everything live into a fresh base and replicates it, under
    /// the quorum lock. Best-effort: a contended lock, an unreadable
    /// stored base, or a failed quorum write just leaves the old base —
    /// the log keeps working, only longer. Returns whether a new base
    /// was committed.
    ///
    /// The base to upload is derived *under the lock*: the stored base
    /// is re-downloaded and the fold restarts from it whenever it has
    /// advanced past what this plane had adopted before acquiring.
    /// Without that, two devices compacting in close succession (B
    /// folds, A compacts and releases, B acquires and uploads) would
    /// let B overwrite A's base with one whose watermark covers fewer
    /// ops — and once a third device trims its op file against A's
    /// base, those ops exist in neither the base nor the log: a fresh
    /// reader folds a regressed image whose missing files look like
    /// remote deletes (and whose garbage collection destroys live
    /// segments). The invariant is that every base ever uploaded
    /// [`covers`] the stored base it replaces, so stored bases form a
    /// coverage chain.
    fn try_compact(&mut self, round: Option<SpanId>) -> bool {
        let Ok(guard) = self.lock.acquire_in(round) else {
            self.obs.inc("meta.oplog.compact_skipped");
            return false;
        };
        let mut span = self.obs.span("meta.oplog.compact", round);
        span.attr_str("device", self.device.as_str());
        // Re-read the stored base under the lock. A cloud is
        // base-readable when it serves a decodable base or has none at
        // all; a quorum of base-readable clouds is required so this
        // read intersects the write quorum of whatever compaction most
        // recently succeeded (an undecodable copy — a torn base upload
        // — cannot be ruled newer, so it does not count as read).
        let reads: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = Arc::clone(cloud);
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                unidrive_sim::spawn(&self.rt, "oplog-base-read", move || {
                    match Retry::new(&rt, &retry).run(|| cloud.download(OPLOG_BASE_PATH)) {
                        Ok(ct) => Some(Some(ct)),
                        Err(CloudError::NotFound { .. }) => Some(None),
                        Err(_) => None,
                    }
                })
            })
            .collect();
        let mut base_readable = 0usize;
        let mut stored: Vec<(OplogBase, usize)> = Vec::new();
        for t in reads {
            match t.join() {
                Some(Some(ct)) => {
                    let decoded = self
                        .cipher
                        .decrypt(&ct)
                        .ok()
                        .and_then(|pt| OplogBase::decode(&pt).ok());
                    if let Some(base) = decoded {
                        base_readable += 1;
                        stored.push((base, ct.len()));
                    }
                }
                Some(None) => base_readable += 1,
                None => {}
            }
        }
        let mut working: Option<OplogBase> = self.adopted_base.as_ref().map(|(b, _)| b.clone());
        let mut abort = base_readable < self.clouds.quorum();
        if !abort {
            for (base, _) in stored {
                let ours_covers = working.as_ref().is_some_and(|w| covers(w, &base));
                if ours_covers {
                    continue;
                }
                let stored_covers = working.as_ref().is_none_or(|w| covers(&base, w));
                if !stored_covers {
                    // Incomparable watermarks: something outside the
                    // coverage chain wrote this base. Leave the stored
                    // state alone rather than guess which ops survive.
                    abort = true;
                    break;
                }
                // The stored base moved past us while we were folding:
                // restart the fold from it.
                working = Some(base);
            }
        }
        if abort {
            span.attr_bool("ok", false);
            span.end();
            self.obs.inc("meta.oplog.compact_aborted");
            guard.release();
            return false;
        }
        let base = working.unwrap_or_default();
        // Fold every cached op; ones the working base already covers
        // are filtered by its watermark inside `compact`.
        let live: Vec<MetaOp> = self.seen_ops.values().map(|(op, _)| op.clone()).collect();
        let new_base = compact(&base, &live, OPLOG_FOLDER);
        let pt = new_base.encode();
        // Deterministic nonce: same folded state ⇒ same ciphertext, so
        // a retried compaction is byte-identical.
        let digest = Sha1::digest(&pt);
        let nonce = u64::from_le_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"));
        let ct = Bytes::from(self.cipher.encrypt(&pt, nonce));
        span.attr_u64("bytes", ct.len() as u64);
        let tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = Arc::clone(cloud);
                let rt = Arc::clone(&self.rt);
                let retry = self.retry.clone();
                let ct = ct.clone();
                unidrive_sim::spawn(&self.rt, "oplog-base", move || {
                    Retry::new(&rt, &retry)
                        .run(|| cloud.upload(OPLOG_BASE_PATH, ct.clone()))
                        .is_ok()
                })
            })
            .collect();
        let acked = tasks.into_iter().map(|t| t.join()).filter(|ok| *ok).count();
        let ok = acked >= self.clouds.quorum();
        span.attr_bool("ok", ok);
        span.end();
        guard.release();
        if ok {
            self.obs.inc("meta.oplog.compactions");
            self.obs.series_add("meta.oplog.compactions", &self.device, 1);
            // Adopt our own base immediately: the next fold must not
            // pick an older cloud copy while the uploads settle. The
            // new base covers our whole tail, so this also trims it;
            // shrink our op file to match (best-effort; the watermark
            // filters either way).
            self.adopt_base(new_base, ct.len());
            let body = frame_chunks(&self.my_frames);
            let _ = self.replicate_op_file(&body);
        }
        ok
    }
}

impl MetaPlane for OplogPlane {
    fn mode(&self) -> MetaMode {
        MetaMode::Oplog
    }

    fn poll(
        &mut self,
        current: &SyncFolderImage,
        round: Option<SpanId>,
    ) -> Result<Option<SyncFolderImage>, PlaneError> {
        let fetched = self.fetch(round);
        if fetched.reachable < self.clouds.quorum() {
            // Partial visibility could be missing acked ops; never
            // regress the local state on it.
            return Ok(None);
        }
        if fetched.folded.image == *current {
            return Ok(None);
        }
        Ok(Some(fetched.folded.image))
    }

    fn transact(
        &mut self,
        _current: &SyncFolderImage,
        round: Option<SpanId>,
        build: &mut MergeFn<'_>,
    ) -> Result<Option<SyncFolderImage>, PlaneError> {
        let fetched = self.fetch(round);
        let quorum = self.clouds.quorum();
        if fetched.reachable < quorum || !self.recovered {
            // A fold over fewer clouds could miss acked ops: committing
            // against it would manufacture spurious conflicts, and an
            // unrecovered plane could reuse a (device, seq) id.
            return Err(PlaneError::QuorumUnreachable {
                reachable: fetched.reachable,
                quorum,
            });
        }
        let folded_image = &fetched.folded.image;
        let remote = if fetched.base_bytes > 0 || !fetched.ops.is_empty() {
            Some(folded_image)
        } else {
            None
        };
        let Some((to_commit, stamp)) = build(remote) else {
            return Ok(None);
        };

        // Derive the op from exactly the folded state the merge saw.
        let records = DeltaLog::records_for(folded_image, &to_commit);
        let op = MetaOp {
            device: self.device.clone(),
            seq: self.next_seq,
            lamport: stamp.counter,
            base_lamport: folded_image.version.counter,
            stamp_ns: stamp.timestamp_ns,
            records,
        };
        // Per-op encryption with an id-derived nonce: a retried upload
        // of the same op is byte-identical, so duplicates dedup at the
        // byte level too.
        let id = op.id(OPLOG_FOLDER);
        let nonce = u64::from_le_bytes(id.as_bytes()[..8].try_into().expect("8 bytes"));
        let frame = Bytes::from(self.cipher.encrypt(&op.encode(), nonce));
        let frame_len = 4 + frame.len();
        self.my_ops.push(op.clone());
        // The new op is live by definition: folds (and the compaction
        // size accounting) must see it like any other uncovered op.
        self.seen_ops.insert(*id.as_bytes(), (op.clone(), frame_len));
        self.my_frames.push(frame);
        self.next_seq += 1;

        let body = frame_chunks(&self.my_frames);
        let mut span = self.obs.span("meta.oplog.append", round);
        span.attr_str("device", self.device.as_str());
        span.attr_u64("ops", self.my_frames.len() as u64);
        span.attr_u64("bytes", body.len() as u64);
        let acked = self.replicate_op_file(&body);
        let ok = acked >= quorum;
        span.attr_bool("ok", ok);
        span.end();
        if !ok {
            // The op stays in our retained tail (it may sit on a
            // minority cloud already and its seq must never be reused);
            // the caller retries the pass and the next fold absorbs it.
            return Err(PlaneError::QuorumWriteFailed { acked, quorum });
        }
        self.obs.inc("meta.oplog.appends");
        self.obs.series_add("meta.oplog.appends", &self.device, 1);

        // The adopted image is the fold including our op — it can
        // differ from `to_commit` by conflict attachments and retained
        // segments, and adopting it keeps every reader byte-identical.
        let adopted = compact(&fetched.folded, std::slice::from_ref(&op), OPLOG_FOLDER);

        // λ: compact when the live log outgrows the base, mirroring the
        // delta plane's threshold. Best-effort until the log reaches
        // OPLOG_COMPACT_ESCALATE × λ; past that, deferring further
        // would let the op cache and the full-replace op-file body grow
        // without bound under sustained contention, so the plane keeps
        // retrying the lock (each attempt a full backoff cycle) and
        // flags the log as overdue if even that fails.
        let live = fetched.log_bytes + frame_len;
        let threshold =
            ((fetched.base_bytes as f64 * self.delta_ratio) as usize).max(self.delta_floor);
        if live > threshold {
            let mut compacted = self.try_compact(round);
            if !compacted && live > threshold.saturating_mul(OPLOG_COMPACT_ESCALATE) {
                self.obs.inc("meta.oplog.compact_forced");
                self.obs.series_add("meta.oplog.compact_forced", &self.device, 1);
                for _ in 0..OPLOG_COMPACT_FORCED_RETRIES {
                    compacted = self.try_compact(round);
                    if compacted {
                        break;
                    }
                }
                if !compacted {
                    self.obs.inc("meta.oplog.compact_overdue");
                    self.obs.series_add("meta.oplog.compact_overdue", &self.device, 1);
                }
            }
        }
        Ok(Some(adopted.image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_meta::VersionStamp;
    use unidrive_cloud::{CloudStore, MemCloud};
    use unidrive_meta::Snapshot;
    use unidrive_sim::RealRuntime;

    fn clouds(n: usize) -> CloudSet {
        CloudSet::new(
            (0..n)
                .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
                .collect(),
        )
    }

    /// Delegates to `inner` but fails `download` of any path containing
    /// `only` with a non-NotFound error — a cloud that lists fine yet
    /// cannot serve (some of) what it advertised.
    struct FailingDownloads {
        inner: Arc<dyn CloudStore>,
        only: &'static str,
    }

    impl CloudStore for FailingDownloads {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn upload(&self, path: &str, data: Bytes) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.upload(path, data)
        }
        fn download(&self, path: &str) -> Result<Bytes, unidrive_cloud::CloudError> {
            if path.contains(self.only) {
                return Err(CloudError::Unavailable {
                    cloud: self.inner.name().to_owned(),
                    op: None,
                    path: Some(path.to_owned()),
                });
            }
            self.inner.download(path)
        }
        fn create_dir(&self, path: &str) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.create_dir(path)
        }
        fn list(
            &self,
            path: &str,
        ) -> Result<Vec<unidrive_cloud::ObjectInfo>, unidrive_cloud::CloudError> {
            self.inner.list(path)
        }
        fn delete(&self, path: &str) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.delete(path)
        }
    }

    fn oplog_plane(set: CloudSet, device: &str, floor: usize, seed: u64) -> OplogPlane {
        OplogPlane::new(
            Arc::new(RealRuntime::new()),
            set,
            device,
            "test-passphrase",
            RetryPolicy::no_retries(),
            LockConfig::default(),
            SimRng::seed_from_u64(seed),
            Obs::noop(),
            0.25,
            floor,
        )
    }

    fn plane(mode: MetaMode, clouds: CloudSet, device: &str, seed: u64) -> Box<dyn MetaPlane> {
        build_plane(
            mode,
            Arc::new(RealRuntime::new()),
            clouds,
            device,
            "test-passphrase",
            RetryPolicy::no_retries(),
            LockConfig::default(),
            SimRng::seed_from_u64(seed),
            Obs::noop(),
            0.25,
            10 * 1024,
        )
    }

    fn commit_file(
        plane: &mut dyn MetaPlane,
        current: &SyncFolderImage,
        device: &str,
        path: &str,
        counter: u64,
    ) -> SyncFolderImage {
        let stamp = VersionStamp {
            device: device.to_owned(),
            counter,
            timestamp_ns: counter,
        };
        plane
            .transact(current, None, &mut |remote| {
                let mut img = remote.cloned().unwrap_or_else(SyncFolderImage::new);
                let seg = unidrive_meta::SegmentId(Sha1::digest(path.as_bytes()));
                img.ensure_segment(seg, 3);
                img.upsert_file(
                    path,
                    Snapshot {
                        mtime_ns: counter,
                        size: 3,
                        segments: vec![seg],
                    },
                );
                img.version = stamp.clone();
                Some((img, stamp.clone()))
            })
            .expect("transact")
            .expect("committed")
    }

    #[test]
    fn both_modes_round_trip_a_commit() {
        for mode in [MetaMode::Lock, MetaMode::Oplog] {
            let set = clouds(5);
            let mut writer = plane(mode, set.clone(), "dev-a", 1);
            let committed = commit_file(writer.as_mut(), &SyncFolderImage::new(), "dev-a", "f.txt", 1);
            assert!(committed.file("f.txt").is_some(), "{mode}: file committed");

            let mut reader = plane(mode, set, "dev-b", 2);
            let polled = reader
                .poll(&SyncFolderImage::new(), None)
                .expect("poll")
                .expect("update visible");
            assert!(polled.file("f.txt").is_some(), "{mode}: file visible");
            // A second poll from the new state is a no-op.
            assert!(reader.poll(&polled, None).expect("poll").is_none());
        }
    }

    #[test]
    fn oplog_writers_converge_without_locking() {
        let set = clouds(5);
        let mut a = plane(MetaMode::Oplog, set.clone(), "dev-a", 1);
        let mut b = plane(MetaMode::Oplog, set.clone(), "dev-b", 2);
        let img_a = commit_file(a.as_mut(), &SyncFolderImage::new(), "dev-a", "a.txt", 1);
        assert!(img_a.file("b.txt").is_none());
        // dev-b's transaction folds dev-a's already-replicated op into
        // the image it adopts — no lock, no lost update.
        let img_b = commit_file(b.as_mut(), &SyncFolderImage::new(), "dev-b", "b.txt", 1);
        assert!(img_b.file("a.txt").is_some());
        assert!(img_b.file("b.txt").is_some());
        // Any reader folds both ops to the same bytes.
        let mut r = plane(MetaMode::Oplog, set, "dev-c", 3);
        let merged = r
            .poll(&SyncFolderImage::new(), None)
            .expect("poll")
            .expect("both visible");
        assert_eq!(merged.encode(), img_b.encode());
        // dev-a converges on its next poll; dev-b is already current.
        let next_a = a.as_mut().poll(&img_a, None).expect("poll").expect("sees b");
        assert_eq!(next_a.encode(), img_b.encode());
        assert!(b.as_mut().poll(&img_b, None).expect("poll").is_none());
    }

    #[test]
    fn oplog_compaction_preserves_fold() {
        let set = clouds(3);
        let mut w = plane(MetaMode::Oplog, set.clone(), "dev-a", 1);
        // Tiny floor forces compaction almost immediately.
        let mut w_small = OplogPlane::new(
            Arc::new(RealRuntime::new()),
            set.clone(),
            "dev-b",
            "test-passphrase",
            RetryPolicy::no_retries(),
            LockConfig::default(),
            SimRng::seed_from_u64(9),
            Obs::noop(),
            0.25,
            1,
        );
        let mut current = SyncFolderImage::new();
        for i in 1..=4u64 {
            current = commit_file(&mut w_small, &current, "dev-b", &format!("f{i}.txt"), i);
        }
        // The base must exist now, and a fresh reader folds to the same
        // state the writer adopted.
        let base_ct = set
            .get(unidrive_cloud::CloudId(0))
            .download(OPLOG_BASE_PATH)
            .expect("compacted base written");
        assert!(!base_ct.is_empty());
        let polled = w
            .poll(&SyncFolderImage::new(), None)
            .expect("poll")
            .expect("visible");
        assert_eq!(polled.encode(), current.encode());
        for i in 1..=4 {
            assert!(polled.file(&format!("f{i}.txt")).is_some());
        }
    }

    #[test]
    fn oplog_unreachable_majority_fails_commit_but_not_poll() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let mut members: Vec<Arc<dyn CloudStore>> = Vec::new();
        for i in 0..5 {
            let inner: Arc<dyn CloudStore> = Arc::new(MemCloud::new(format!("c{i}")));
            if i < 3 {
                let chaos = unidrive_cloud::ChaosCloud::new(
                    inner,
                    Arc::clone(&rt),
                    &unidrive_cloud::FaultPlan::new(i as u64),
                );
                chaos.set_flat_probability(1.0);
                members.push(Arc::new(chaos));
            } else {
                members.push(inner);
            }
        }
        let set = CloudSet::new(members);
        let mut p = plane(MetaMode::Oplog, set, "dev-a", 1);
        assert!(p.poll(&SyncFolderImage::new(), None).expect("poll").is_none());
        let err = p
            .transact(&SyncFolderImage::new(), None, &mut |_| {
                panic!("build must not run without a readable quorum")
            })
            .unwrap_err();
        assert!(matches!(err, PlaneError::QuorumUnreachable { reachable: 2, quorum: 3 }));
    }

    /// A compactor holding a pre-lock fold must not overwrite a base
    /// that advanced while it waited: dev-a's second compaction trims
    /// its op file, so a stale base from dev-b would lose those ops in
    /// both the base and the log.
    #[test]
    fn stale_compactor_cannot_regress_the_stored_base() {
        let set = clouds(3);
        // dev-a commits one op; the large floor defers compaction.
        let mut a = oplog_plane(set.clone(), "dev-a", 10 * 1024, 1);
        let img1 = commit_file(&mut a, &SyncFolderImage::new(), "dev-a", "a1.txt", 1);
        // dev-b folds the pre-compaction world and goes stale.
        let mut b = oplog_plane(set.clone(), "dev-b", 10 * 1024, 2);
        assert!(b.poll(&SyncFolderImage::new(), None).expect("poll").is_some());
        // dev-a (restarted) compacts: base watermark {dev-a: 2}, its op
        // file trimmed empty — a2's op now lives only in the base.
        let mut a2 = oplog_plane(set.clone(), "dev-a", 1, 3);
        let _ = commit_file(&mut a2, &img1, "dev-a", "a2.txt", 2);
        // dev-b compacts from its stale fold. The under-lock re-read
        // must restart from the stored base instead of unwinding it.
        assert!(b.try_compact(None));
        let cipher = MetadataCipher::from_passphrase("test-passphrase");
        let after_ct = set
            .get(unidrive_cloud::CloudId(0))
            .download(OPLOG_BASE_PATH)
            .expect("base present");
        let after = OplogBase::decode(&cipher.decrypt(&after_ct).unwrap()).unwrap();
        assert!(
            after.watermark.get("dev-a").copied().unwrap_or(0) >= 2,
            "stale compactor unwound dev-a's compaction"
        );
        // A fresh reader still sees both files.
        let mut r = plane(MetaMode::Oplog, set, "dev-r", 9);
        let merged = r
            .poll(&SyncFolderImage::new(), None)
            .expect("poll")
            .expect("visible");
        assert!(merged.file("a1.txt").is_some());
        assert!(merged.file("a2.txt").is_some());
    }

    /// A plane recreated for an existing device (process restart) must
    /// resume its sequence past the quorum-acked ops — a reused
    /// `(device, seq)` id is silently deduped away — and its first
    /// full-replace upload must carry the surviving frames instead of
    /// clobbering them.
    #[test]
    fn restarted_device_resumes_sequence_and_preserves_log() {
        let set = clouds(3);
        let mut w1 = oplog_plane(set.clone(), "dev-a", 10 * 1024, 1);
        let img1 = commit_file(&mut w1, &SyncFolderImage::new(), "dev-a", "f1.txt", 1);
        let img2 = commit_file(&mut w1, &img1, "dev-a", "f2.txt", 2);
        assert_eq!(w1.next_seq, 3);
        drop(w1);
        let mut w2 = oplog_plane(set.clone(), "dev-a", 10 * 1024, 2);
        let img3 = commit_file(&mut w2, &img2, "dev-a", "f3.txt", 3);
        assert_eq!(w2.next_seq, 4, "seq resumed after the committed ops");
        assert_eq!(w2.my_ops.len(), 3, "surviving frames recovered");
        assert!(img3.file("f1.txt").is_some() && img3.file("f2.txt").is_some());
        let mut r = plane(MetaMode::Oplog, set, "dev-r", 9);
        let merged = r
            .poll(&SyncFolderImage::new(), None)
            .expect("poll")
            .expect("visible");
        for f in ["f1.txt", "f2.txt", "f3.txt"] {
            assert!(merged.file(f).is_some(), "{f} lost across the restart");
        }
    }

    /// A cloud whose listing succeeds but whose downloads fail must not
    /// count toward the read quorum: the fold would silently miss acked
    /// ops.
    #[test]
    fn listed_but_undownloadable_cloud_is_unreachable() {
        let inners: Vec<Arc<dyn CloudStore>> = (0..5)
            .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
            .collect();
        let mut w = plane(MetaMode::Oplog, CloudSet::new(inners.clone()), "dev-a", 1);
        commit_file(w.as_mut(), &SyncFolderImage::new(), "dev-a", "f.txt", 1);
        let wrapped: Vec<Arc<dyn CloudStore>> = inners
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i < 3 {
                    Arc::new(FailingDownloads {
                        inner: Arc::clone(c),
                        only: "",
                    }) as Arc<dyn CloudStore>
                } else {
                    Arc::clone(c)
                }
            })
            .collect();
        let mut r = plane(MetaMode::Oplog, CloudSet::new(wrapped), "dev-b", 2);
        assert!(
            r.poll(&SyncFolderImage::new(), None).expect("poll").is_none(),
            "partial fold must not be presented"
        );
        let err = r
            .transact(&SyncFolderImage::new(), None, &mut |_| {
                panic!("build must not run when downloads fail below quorum")
            })
            .unwrap_err();
        assert!(matches!(err, PlaneError::QuorumUnreachable { reachable: 2, quorum: 3 }));
    }

    /// Applies appends to `inner` but reports the first `fail` of them
    /// as transient failures — the applied-but-reported-failed shape a
    /// real network append can take.
    struct AppliedButFailedAppend {
        inner: Arc<MemCloud>,
        fail: std::sync::atomic::AtomicU32,
    }

    impl CloudStore for AppliedButFailedAppend {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn upload(&self, path: &str, data: Bytes) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.upload(path, data)
        }
        fn download(&self, path: &str) -> Result<Bytes, unidrive_cloud::CloudError> {
            self.inner.download(path)
        }
        fn create_dir(&self, path: &str) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.create_dir(path)
        }
        fn list(
            &self,
            path: &str,
        ) -> Result<Vec<unidrive_cloud::ObjectInfo>, unidrive_cloud::CloudError> {
            self.inner.list(path)
        }
        fn delete(&self, path: &str) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.delete(path)
        }
        fn append(&self, path: &str, data: Bytes) -> Result<(), unidrive_cloud::CloudError> {
            self.inner.append(path, data)?;
            if self
                .fail
                .fetch_update(
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                    |v| v.checked_sub(1),
                )
                .is_ok()
            {
                return Err(CloudError::transient("applied but reported failed"));
            }
            Ok(())
        }
        fn caps(&self) -> unidrive_cloud::CloudCaps {
            self.inner.caps()
        }
    }

    /// A native append that was applied but reported failed gets
    /// re-appended by the retry loop, duplicating tail frames remotely.
    /// The acked length must not be trusted after such a retry: the
    /// next replication full-replaces, restoring the invariant that the
    /// verified acked prefix equals the actual remote bytes.
    #[test]
    fn retried_append_forces_full_replace_self_heal() {
        let inner0 = Arc::new(MemCloud::new("c0"));
        let flaky = Arc::new(AppliedButFailedAppend {
            inner: Arc::clone(&inner0),
            fail: std::sync::atomic::AtomicU32::new(0),
        });
        let mut members: Vec<Arc<dyn CloudStore>> =
            vec![Arc::clone(&flaky) as Arc<dyn CloudStore>];
        members.extend((1..3).map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>));
        let retry = RetryPolicy {
            max_attempts: 3,
            initial_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(1),
        };
        let mut w = OplogPlane::new(
            Arc::new(RealRuntime::new()),
            CloudSet::new(members),
            "dev-a",
            "test-passphrase",
            retry,
            LockConfig::default(),
            SimRng::seed_from_u64(1),
            Obs::noop(),
            0.25,
            10 * 1024,
        );
        // First commit full-replaces (no previous body); the second
        // extends, and c0's first append applies yet reports failure,
        // so the retry duplicates the tail.
        let img1 = commit_file(&mut w, &SyncFolderImage::new(), "dev-a", "f1.txt", 1);
        flaky.fail.store(1, std::sync::atomic::Ordering::SeqCst);
        let img2 = commit_file(&mut w, &img1, "dev-a", "f2.txt", 2);
        let op_file = op_file_path("dev-a");
        assert!(
            inner0.download(&op_file).expect("op file").len() > w.op_last_body.len(),
            "test premise: the retried append duplicated tail frames"
        );
        assert_eq!(w.op_acked[0], 0, "retried append must not be trusted as acked length");
        // The next replication self-heals c0 with a full replace.
        let _ = commit_file(&mut w, &img2, "dev-a", "f3.txt", 3);
        assert_eq!(
            inner0.download(&op_file).expect("op file"),
            w.op_last_body,
            "remote op file must equal the verified body after self-heal"
        );
        // Nothing was lost along the way: a fresh reader folding only
        // c0's (healed) op file sees every commit.
        let mut reader = oplog_plane(
            CloudSet::new(vec![Arc::clone(&inner0) as Arc<dyn CloudStore>]),
            "dev-r",
            10 * 1024,
            9,
        );
        let merged = reader
            .poll(&SyncFolderImage::new(), None)
            .expect("poll")
            .expect("visible");
        for f in ["f1.txt", "f2.txt", "f3.txt"] {
            assert!(merged.file(f).is_some(), "{f} lost across the self-heal");
        }
    }

    /// When compaction keeps failing past the escalation cap, the plane
    /// retries it as blocking work and surfaces the overdue log on the
    /// counters — commits themselves keep succeeding.
    #[test]
    fn overdue_compaction_escalates_with_counters() {
        // Base downloads always fail (non-NotFound), so every
        // compaction attempt aborts its stored-base re-read.
        let members: Vec<Arc<dyn CloudStore>> = (0..3)
            .map(|i| {
                Arc::new(FailingDownloads {
                    inner: Arc::new(MemCloud::new(format!("c{i}"))),
                    only: "oplog/base",
                }) as Arc<dyn CloudStore>
            })
            .collect();
        let registry = unidrive_obs::Registry::new();
        let mut w = OplogPlane::new(
            Arc::new(RealRuntime::new()),
            CloudSet::new(members),
            "dev-a",
            "test-passphrase",
            RetryPolicy::no_retries(),
            LockConfig::default(),
            SimRng::seed_from_u64(1),
            Obs::with_registry(Arc::clone(&registry)),
            0.25,
            1,
        );
        let img = commit_file(&mut w, &SyncFolderImage::new(), "dev-a", "f.txt", 1);
        assert!(img.file("f.txt").is_some(), "commit survives a stuck compaction");
        let snap = registry.snapshot();
        assert!(snap.counter("meta.oplog.compact_aborted") >= 3, "initial try + forced retries");
        assert_eq!(snap.counter("meta.oplog.compact_forced"), 1);
        assert_eq!(snap.counter("meta.oplog.compact_overdue"), 1);
        assert_eq!(snap.counter("meta.oplog.compactions"), 0);
    }
}
