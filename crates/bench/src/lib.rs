//! # unidrive-bench
//!
//! Harness that regenerates every table and figure of the UniDrive
//! paper's evaluation (§3.2 measurement study, §7 experiments, §7.3
//! trial). Each `src/bin/*` binary prints one table/figure; see
//! `EXPERIMENTS.md` at the repository root for the index and recorded
//! outcomes, and `benches/` for Criterion micro-benchmarks of the
//! primitives.
//!
//! All experiments run under deterministic virtual time, so a "month" of
//! half-hourly probes takes seconds of wall time; run the binaries with
//! `--release` (debug-mode Reed-Solomon is ~20× slower).

#![warn(missing_docs)]

pub mod json;

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::{
    IntuitiveMultiCloud, MultiCloudBenchmark, SingleCloudClient, UniDriveTransfer,
};
use unidrive_cloud::{CloudSet, SimCloud};
use unidrive_core::DataPlaneConfig;
use unidrive_erasure::RedundancyConfig;
use unidrive_obs::Obs;
use unidrive_sim::SimRuntime;
use unidrive_workload::{build_multicloud, Provider, Site};

/// Evaluation parameters shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Repetitions per measured point.
    pub repeats: usize,
    /// The "32 MB" micro-benchmark file size.
    pub large_file: usize,
    /// The batch-sync workload: `(count, size)` (paper: 100 × 1 MB).
    pub batch: (usize, usize),
    /// Segment size θ.
    pub theta: usize,
}

impl ExperimentScale {
    /// Paper-faithful sizes (slow in debug builds; use `--release`).
    pub fn paper() -> Self {
        ExperimentScale {
            repeats: 5,
            large_file: 32 * 1024 * 1024,
            batch: (100, 1024 * 1024),
            theta: 4 * 1024 * 1024,
        }
    }

    /// Reduced sizes preserving every ratio the figures depend on; used
    /// when an experiment binary is invoked with `quick`.
    pub fn quick() -> Self {
        ExperimentScale {
            repeats: 3,
            large_file: 8 * 1024 * 1024,
            batch: (30, 512 * 1024),
            theta: 1024 * 1024,
        }
    }

    /// Parses the scale from the process arguments (`quick` selects the
    /// reduced scale; default is the paper scale).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "quick") {
            ExperimentScale::quick()
        } else {
            ExperimentScale::paper()
        }
    }
}

/// Parses `--meta-mode {lock,oplog}` from the process arguments
/// (default: `lock`, the paper's quorum-locked plane). Shared by every
/// experiment binary so `run_all --meta-mode oplog` drives both planes
/// uniformly. An unknown value aborts with a usage message — a typo
/// must not silently benchmark the wrong plane.
pub fn meta_mode_from_args() -> unidrive_meta::MetaMode {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--meta-mode" {
            let value = args.next().unwrap_or_default();
            match unidrive_meta::MetaMode::parse(&value) {
                Some(mode) => return mode,
                None => {
                    eprintln!("--meta-mode must be 'lock' or 'oplog', got '{value}'");
                    std::process::exit(2);
                }
            }
        }
    }
    unidrive_meta::MetaMode::Lock
}

/// The four systems under comparison at one site (paper §7.1).
pub struct Systems {
    /// UniDrive proper.
    pub unidrive: UniDriveTransfer,
    /// RACS/DepSky-like benchmark.
    pub benchmark: MultiCloudBenchmark,
    /// Parts-to-native-apps baseline.
    pub intuitive: IntuitiveMultiCloud,
    /// One native single-cloud client per provider.
    pub natives: Vec<(Provider, SingleCloudClient)>,
    /// The cloud handles (outage/traffic control).
    pub handles: Vec<Arc<SimCloud>>,
    /// The underlying cloud set.
    pub clouds: CloudSet,
}

impl std::fmt::Debug for Systems {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Systems")
            .field("clouds", &self.clouds)
            .finish()
    }
}

/// Builds all comparison systems over the same five simulated clouds at
/// `site`, with the paper's parameters (K_r = 3, K_s = 2, k = 3, ≤ 5
/// connections per cloud).
pub fn systems_at(sim: &Arc<SimRuntime>, site: Site, theta: usize) -> Systems {
    systems_at_observed(sim, site, theta, &Obs::noop())
}

/// Like [`systems_at`], but threads an [`Obs`] handle through the
/// UniDrive data plane and installs it on every simulated cloud (which
/// also points the registry clock at `sim`'s virtual time), so the run
/// can be exported with `--metrics-out` (see [`metrics_out`]).
pub fn systems_at_observed(
    sim: &Arc<SimRuntime>,
    site: Site,
    theta: usize,
    obs: &Obs,
) -> Systems {
    let (clouds, handles) = build_multicloud(sim, site);
    for handle in &handles {
        handle.install_obs(obs.clone());
    }
    let redundancy = RedundancyConfig::new(5, 3, 3, 2).expect("paper parameters");
    let config = DataPlaneConfig {
        connections_per_cloud: 5,
        obs: obs.clone(),
        ..DataPlaneConfig::with_params(redundancy, theta)
    };
    let rt = sim.clone().as_runtime();
    let unidrive = UniDriveTransfer::new(rt.clone(), clouds.clone(), config);
    let benchmark =
        MultiCloudBenchmark::new(rt.clone(), clouds.clone(), redundancy, 5).with_chunk_size(theta);
    let intuitive = IntuitiveMultiCloud::new(rt.clone(), &clouds, 5);
    let natives = Provider::ALL
        .iter()
        .zip(clouds.iter())
        .map(|(&p, (_, cloud))| (p, SingleCloudClient::new(rt.clone(), Arc::clone(cloud), 5)))
        .collect();
    Systems {
        unidrive,
        benchmark,
        intuitive,
        natives,
        handles,
        clouds,
    }
}

/// Minimal micro-benchmark harness (replaces Criterion so the
/// workspace builds offline with zero external crates). Each sample
/// times one call of the closure; results print as
/// `name  mean (min..max)  [throughput]`.
pub mod microbench {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Timing summary for one benchmark.
    #[derive(Debug, Clone)]
    pub struct BenchResult {
        /// Benchmark label.
        pub name: String,
        /// Number of timed samples.
        pub samples: usize,
        /// Mean sample duration.
        pub mean: Duration,
        /// Fastest sample.
        pub min: Duration,
        /// Slowest sample.
        pub max: Duration,
    }

    impl BenchResult {
        /// Mean duration in nanoseconds.
        pub fn mean_ns(&self) -> f64 {
            self.mean.as_secs_f64() * 1e9
        }
    }

    fn fmt(d: Duration) -> String {
        let ns = d.as_secs_f64() * 1e9;
        if ns < 1e3 {
            format!("{ns:.0} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.2} ms", ns / 1e6)
        } else {
            format!("{:.3} s", ns / 1e9)
        }
    }

    /// Times `f` for `samples` runs after one warm-up run and prints a
    /// summary line. `bytes` (when non-zero) adds a throughput column.
    pub fn run<T>(name: &str, samples: usize, bytes: usize, mut f: impl FnMut() -> T) -> BenchResult {
        black_box(f());
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples.max(1) {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        let total: Duration = times.iter().sum();
        let result = BenchResult {
            name: name.to_owned(),
            samples: times.len(),
            mean: total / times.len() as u32,
            min: *times.iter().min().expect("non-empty"),
            max: *times.iter().max().expect("non-empty"),
        };
        let throughput = if bytes > 0 {
            let mibps = bytes as f64 / result.mean.as_secs_f64().max(1e-12) / (1024.0 * 1024.0);
            format!("  {mibps:.1} MiB/s")
        } else {
            String::new()
        };
        println!(
            "{:<44} {:>10} ({} .. {}){throughput}",
            result.name,
            fmt(result.mean),
            fmt(result.min),
            fmt(result.max),
        );
        result
    }
}

/// `--metrics-out <path>` / `--trace-out <path>` support shared by the
/// experiment binaries: when either flag is present the binary records
/// the run into a registry-backed [`Obs`] and on exit writes the
/// canonicalized snapshot to the `--metrics-out` path (JSON, or CSV
/// when the path ends in `.csv`) and/or the Chrome trace-event export
/// (Perfetto-loadable) to the `--trace-out` path. Without either flag
/// the returned handle is a no-op and the run pays only an `Option`
/// branch per instrumentation site.
pub mod metrics_out {
    use std::sync::Arc;

    use unidrive_obs::{HistogramSnapshot, Obs, Registry, DEFAULT_SERIES_WINDOW_NS};

    /// Event-ring capacity used for exported runs: large enough that a
    /// full figure run keeps every event, so the export (and therefore
    /// the same-seed determinism check) never depends on eviction
    /// order between racing actors.
    pub const EXPORT_TRACE_CAPACITY: usize = 1 << 16;

    /// Parsed `--metrics-out` / `--trace-out` / `--series-out` state;
    /// obtain via [`from_args`].
    pub struct MetricsOut {
        /// Handle to thread through [`crate::systems_at_observed`] or
        /// `DataPlaneConfig.obs` / `SimCloud::install_obs` directly.
        pub obs: Obs,
        registry: Option<Arc<Registry>>,
        path: Option<String>,
        trace_path: Option<String>,
        series_path: Option<String>,
        health_rows: Vec<String>,
    }

    impl std::fmt::Debug for MetricsOut {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("MetricsOut")
                .field("path", &self.path)
                .field("trace_path", &self.trace_path)
                .field("series_path", &self.series_path)
                .finish()
        }
    }

    /// Reads `--metrics-out <path>`, `--trace-out <path>`, and
    /// `--series-out <path>` from the process arguments. Any of the
    /// three flags installs a real registry; `--series-out` also
    /// enables windowed series collection on it (window =
    /// [`DEFAULT_SERIES_WINDOW_NS`]).
    pub fn from_args() -> MetricsOut {
        let mut args = std::env::args();
        let mut path = None;
        let mut trace_path = None;
        let mut series_path = None;
        while let Some(arg) = args.next() {
            if arg == "--metrics-out" {
                path = args.next();
            } else if arg == "--trace-out" {
                trace_path = args.next();
            } else if arg == "--series-out" {
                series_path = args.next();
            }
        }
        let (obs, registry) = if path.is_some() || trace_path.is_some() || series_path.is_some()
        {
            let registry = Registry::with_trace_capacity(EXPORT_TRACE_CAPACITY);
            if series_path.is_some() {
                registry.enable_series(DEFAULT_SERIES_WINDOW_NS);
            }
            (Obs::with_registry(Arc::clone(&registry)), Some(registry))
        } else {
            (Obs::noop(), None)
        };
        MetricsOut {
            obs,
            registry,
            path,
            trace_path,
            series_path,
            health_rows: Vec::new(),
        }
    }

    /// `p50/p95/p99` of a latency histogram, rendered in milliseconds.
    pub fn fmt_quantiles_ms(h: &HistogramSnapshot) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "p50={:.1}ms p95={:.1}ms p99={:.1}ms (n={})",
            ms(h.p50()),
            ms(h.p95()),
            ms(h.p99()),
            h.count
        )
    }

    impl MetricsOut {
        /// True when `--series-out` was given (callers can skip
        /// series-only work otherwise).
        pub fn series_enabled(&self) -> bool {
            self.series_path.is_some()
        }

        /// Health scoreboard rows (`unidrive-health/v1` objects, one
        /// per cloud, pre-sorted) to embed in the `--series-out`
        /// export's `"health"` array.
        pub fn set_health_rows(&mut self, rows: Vec<String>) {
            self.health_rows = rows;
        }

        /// Claims the `--series-out` path, disabling the
        /// registry-backed series write in [`write`](MetricsOut::write).
        /// For binaries whose series come from a deterministic source
        /// of their own (the fleet bench merges per-shard banks) and
        /// must write that document instead.
        pub fn take_series_path(&mut self) -> Option<String> {
            self.series_path.take()
        }

        /// Writes the canonicalized snapshot to the `--metrics-out`
        /// path, the Chrome trace to the `--trace-out` path, and the
        /// windowed series (plus any health rows) to the
        /// `--series-out` path, then prints a `p50/p95/p99` summary of
        /// every latency histogram. Returns the metrics path written,
        /// or `None` when that flag was absent. I/O errors are
        /// reported on stderr, not fatal: the figure output already
        /// printed.
        pub fn write(&self) -> Option<String> {
            if let (Some(series_path), Some(registry)) = (&self.series_path, &self.registry) {
                let doc = registry
                    .series_snapshot()
                    .to_json_with_health(&self.health_rows);
                match std::fs::write(series_path, doc) {
                    Ok(()) => println!("series written to {series_path}"),
                    Err(e) => eprintln!("failed to write --series-out {series_path}: {e}"),
                }
            }
            let mut snap = self.obs.snapshot()?;
            snap.canonicalize();
            for (name, h) in &snap.histograms {
                if name.ends_with("_ns") && h.count > 0 {
                    println!("{name}: {}", fmt_quantiles_ms(h));
                }
            }
            if let Some(path) = &self.trace_path {
                match std::fs::write(path, snap.to_chrome_trace()) {
                    Ok(()) => println!("chrome trace written to {path}"),
                    Err(e) => eprintln!("failed to write --trace-out {path}: {e}"),
                }
            }
            let path = self.path.clone()?;
            let body = if path.ends_with(".csv") {
                snap.to_csv()
            } else {
                snap.to_json()
            };
            match std::fs::write(&path, body) {
                Ok(()) => Some(path),
                Err(e) => {
                    eprintln!("failed to write --metrics-out {path}: {e}");
                    None
                }
            }
        }
    }
}

/// Formats a duration in seconds with two decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats a sample as `mean (min-max)`.
pub fn fmt_stats(values: &[f64]) -> String {
    match unidrive_workload::Summary::of(values) {
        Some(s) => format!("{:.2} ({:.2}-{:.2})", s.mean, s.min, s.max),
        None => "n/a".to_owned(),
    }
}

/// Throughput in Mbit/s for `bytes` over `d`.
pub fn mbps(bytes: usize, d: Duration) -> f64 {
    bytes as f64 * 8.0 / 1e6 / d.as_secs_f64().max(1e-9)
}
