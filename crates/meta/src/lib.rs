//! # unidrive-meta
//!
//! The UniDrive metadata layer (paper §5): the single
//! [`SyncFolderImage`] metadata file with its deduplicating segment
//! pool, tree diff and three-way [`merge3`] with conflict retention,
//! the log-structured [`DeltaLog`] for Delta-sync, [`VersionStamp`]
//! version files, and the cloud-side object [`layout`](block_path).
//! Serialization uses a from-scratch checksummed binary [`codec`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod delta;
mod diff;
mod layout;
mod model;
mod op;
mod plane;

pub use delta::{DeltaLog, DeltaRecord};
pub use diff::{diff, merge3, Conflict, EntryChange, MergeOutcome, TreeDelta};
pub use layout::{
    block_path, lock_file_name, lock_file_path, op_file_name, op_file_path, parse_lock_name,
    parse_op_file_name, BASE_PATH, BLOCKS_DIR, DELTA_PATH, LOCK_DIR, OPLOG_BASE_PATH, OPLOG_DIR,
    OP_FILE_PREFIX, ROOT_DIR, VERSION_PATH,
};
pub use model::{BlockRef, FileEntry, SegmentEntry, SegmentId, Snapshot, SyncFolderImage, VersionStamp};
pub use op::{compact, fold, frame_chunks, op_id, unframe_chunks, FoldOutcome, MetaOp, OplogBase};
pub use plane::{MergeFn, MetaMode, MetaPlane, PlaneError};
