//! Regression tests for the engine's stall watchdog and flight
//! recorder (the PR 2 bounce-loop class of hang): a policy that parks
//! every worker forever must not hang `join`, and a hard block failure
//! must leave a flight record behind for post-mortem analysis.

use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{CloudError, CloudId, CloudSet, CloudStore, MemCloud};
use unidrive_core::{
    EngineParams, JobDesc, TransferEngine, TransferPolicy, WatchdogConfig, WireOp,
};
use unidrive_sim::{SimRuntime, Time};
use unidrive_util::bytes::Bytes;

fn dump_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("unidrive-flight-{tag}-{}.json", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn mem_clouds(n: usize) -> CloudSet {
    CloudSet::new(
        (0..n)
            .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
            .collect(),
    )
}

/// Never done, never hands out work: the exact shape of a scheduler
/// bug where workers park on the notifier with nothing in flight.
struct StuckPolicy;

impl TransferPolicy for StuckPolicy {
    type Token = ();

    fn next_job(&mut self, _cloud: CloudId) -> Option<JobDesc<()>> {
        None
    }

    fn is_done(&self) -> bool {
        false
    }

    fn on_success(&mut self, _: CloudId, _: (), _: Option<Bytes>, _: Time) {}

    fn on_failure(&mut self, _: CloudId, _: (), _: CloudError, _: Time) {}
}

#[test]
fn watchdog_unsticks_a_stalled_batch_and_dumps_a_flight_record() {
    let sim = SimRuntime::new(7);
    let rt = sim.clone().as_runtime();
    let clouds = mem_clouds(2);
    let path = dump_path("stall");
    let _ = std::fs::remove_file(&path);

    let mut params = EngineParams::new("stall-test");
    params.connections_per_cloud = 2;
    params.watchdog = Some(WatchdogConfig {
        deadline: Duration::from_secs(5),
        dump_path: path.clone(),
    });
    let engine = TransferEngine::start(&rt, &clouds, params, StuckPolicy);
    // Without the watchdog this join never returns: every worker is
    // parked on the notifier and nothing will ever notify.
    engine.join();

    assert!(
        rt.now() >= Time::from_nanos(0) + Duration::from_secs(5),
        "watchdog fired before its deadline"
    );
    let record = std::fs::read_to_string(&path).expect("flight record written");
    assert!(record.contains("\"reason\": \"stall\""), "{record}");
    assert!(record.contains("\"label\": \"stall-test\""), "{record}");
    // All four (cloud, connection) worker slots are reported.
    assert_eq!(record.matches("\"conn\":").count(), 4, "{record}");
    let _ = std::fs::remove_file(&path);
}

/// Dispatches exactly one download of an object that does not exist
/// (a non-retryable hard failure), then finishes.
struct OneShotMissing {
    dispatched: bool,
    done: bool,
}

impl TransferPolicy for OneShotMissing {
    type Token = ();

    fn next_job(&mut self, _cloud: CloudId) -> Option<JobDesc<()>> {
        if self.dispatched {
            return None;
        }
        self.dispatched = true;
        Some(JobDesc {
            token: (),
            index: 0,
            extra: false,
            parent_span: None,
            op: WireOp::Download {
                path: "seg/missing-block".to_owned(),
            },
        })
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn on_success(&mut self, _: CloudId, _: (), _: Option<Bytes>, _: Time) {
        self.done = true;
    }

    fn on_failure(&mut self, _: CloudId, _: (), _: CloudError, _: Time) {
        self.done = true;
    }
}

#[test]
fn hard_block_failure_dumps_a_flight_record_before_the_batch_ends() {
    let sim = SimRuntime::new(11);
    let rt = sim.clone().as_runtime();
    let clouds = mem_clouds(1);
    let path = dump_path("failure");
    let _ = std::fs::remove_file(&path);

    let mut params = EngineParams::new("failure-test");
    params.watchdog = Some(WatchdogConfig {
        // Generous deadline: the dump below must come from the failed
        // block, not from a stall.
        deadline: Duration::from_secs(3600),
        dump_path: path.clone(),
    });
    let engine = TransferEngine::start(
        &rt,
        &clouds,
        params,
        OneShotMissing {
            dispatched: false,
            done: false,
        },
    );
    let policy = engine.join();
    assert!(policy.is_done());

    let record = std::fs::read_to_string(&path).expect("flight record written");
    assert!(record.contains("\"reason\": \"block_failure\""), "{record}");
    assert!(record.contains("\"failed\": 1"), "{record}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn no_watchdog_means_no_dump_file() {
    let sim = SimRuntime::new(13);
    let rt = sim.clone().as_runtime();
    let clouds = mem_clouds(1);
    let path = dump_path("absent");
    let _ = std::fs::remove_file(&path);

    let params = EngineParams::new("plain-test");
    let engine = TransferEngine::start(
        &rt,
        &clouds,
        params,
        OneShotMissing {
            dispatched: false,
            done: false,
        },
    );
    let policy = engine.join();
    assert!(policy.is_done());
    assert!(
        !std::path::Path::new(&path).exists(),
        "dump written without a watchdog configured"
    );
}
