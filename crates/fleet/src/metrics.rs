//! Fleet-wide metrics, invariants, and the deterministic
//! `BENCH_fleet.json` serialization.
//!
//! Everything in the JSON is a function of the *virtual* run only —
//! seed, population, and fault plan — never of wall-clock time, thread
//! count, or shard count. That is what lets CI assert byte-identical
//! output across same-seed runs and across shard layouts (`shards` and
//! `threads` are deliberately absent from the config echo).

use std::collections::BTreeMap;

use unidrive_obs::{histogram_json, Histogram, HistogramSnapshot, SeriesBank};

use crate::config::FleetConfig;

/// Window width of the fleet's time-series rollups (and of the
/// per-cloud health trackers, which share the grid): one minute of
/// virtual time per window.
pub const FLEET_SERIES_WINDOW_NS: u64 = 60 * 1_000_000_000;

/// Counters that must appear in every report even when zero, so the
/// JSON schema is stable across meta modes and fault plans (CI and
/// `bench_compare` key off their presence).
const SCHEMA_COUNTERS: [&str; 3] =
    ["lock.starved", "oplog.compact_forced", "oplog.compact_overdue"];

/// One invariant verdict, named and explained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// Stable invariant name.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// Per-provider accounting surfaced in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudRow {
    /// Provider name.
    pub name: String,
    /// Total API operations charged.
    pub ops: u64,
    /// Operations spent on lock rounds.
    pub lock_ops: u64,
    /// Operations spent on share transfers.
    pub transfer_ops: u64,
    /// Bytes uploaded (erasure shares).
    pub bytes_up: u64,
    /// Bytes downloaded (drain pulls).
    pub bytes_down: u64,
    /// Cumulative shaper-imposed delay, nanoseconds.
    pub throttle_delay_ns: u64,
    /// Highest single-second operation rate.
    pub qps_peak: u64,
    /// Mean ops/s over the active span.
    pub qps_mean: f64,
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// Seed echo.
    pub seed: u64,
    /// Population size echo.
    pub devices: u32,
    /// Hot-folder count echo.
    pub hot_folders: u32,
    /// Arrival horizon echo, seconds.
    pub horizon_secs: u64,
    /// Metadata-plane mode echo (`"lock"` or `"oplog"`).
    pub meta_mode: String,
    /// Scheduled fault events in the plan.
    pub fault_events: usize,
    /// Named counters (sessions, locks, faults, drain).
    pub counters: BTreeMap<String, u64>,
    /// End-to-end session latency (arrival → publish), ns.
    pub sync_latency: HistogramSnapshot,
    /// Lock wait (upload landed → lock granted), ns.
    pub lock_wait: HistogramSnapshot,
    /// Lock rounds needed per successful acquire.
    pub lock_rounds: HistogramSnapshot,
    /// Per-provider accounting.
    pub clouds: Vec<CloudRow>,
    /// Chaos-soak invariant verdicts.
    pub invariants: Vec<Invariant>,
    /// Total events processed.
    pub events_processed: u64,
    /// Windows executed.
    pub windows: u64,
    /// Virtual time at which the fleet converged, ns.
    pub virtual_end_ns: u64,
    /// Drain rounds needed after the horizon.
    pub drain_rounds: u32,
    /// Windowed time-series rollups ([`FLEET_SERIES_WINDOW_NS`] grid):
    /// per-shard banks are merged at each window boundary, so the
    /// content is independent of shard and thread layout.
    pub series: SeriesBank,
    /// Pre-rendered per-cloud health scoreboard rows
    /// (`unidrive-health/v1` objects), sorted by cloud name.
    pub health_rows: Vec<String>,
}

impl FleetMetrics {
    /// An empty metrics value echoing `cfg`.
    pub fn new(cfg: &FleetConfig) -> FleetMetrics {
        let empty = || Histogram::default().snapshot();
        let mut counters = BTreeMap::new();
        for name in SCHEMA_COUNTERS {
            counters.insert(name.to_owned(), 0);
        }
        FleetMetrics {
            seed: cfg.seed,
            devices: cfg.devices,
            hot_folders: cfg.hot_folders,
            horizon_secs: cfg.horizon.as_secs(),
            meta_mode: cfg.meta_mode.as_str().to_owned(),
            fault_events: cfg.fault_plan.events.len(),
            counters,
            sync_latency: empty(),
            lock_wait: empty(),
            lock_rounds: empty(),
            clouds: Vec::new(),
            invariants: Vec::new(),
            events_processed: 0,
            windows: 0,
            virtual_end_ns: 0,
            drain_rounds: 0,
            series: SeriesBank::new(FLEET_SERIES_WINDOW_NS),
            health_rows: Vec::new(),
        }
    }

    /// Deterministic windowed-series export (`unidrive-obs-series/v1`)
    /// with the per-cloud health scoreboard embedded. Like
    /// [`to_json`](FleetMetrics::to_json), the bytes depend only on the
    /// virtual run: same seed ⇒ identical output at any shard or
    /// thread count (CI `cmp`-gates this).
    pub fn series_json(&self) -> String {
        self.series.snapshot().to_json_with_health(&self.health_rows)
    }

    /// Increments counter `name`.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Sets counter `name` to `n`.
    pub fn set(&mut self, name: &str, n: u64) {
        self.counters.insert(name.to_owned(), n);
    }

    /// Reads counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an invariant verdict.
    pub fn invariant(&mut self, name: &str, pass: bool, detail: String) {
        self.invariants.push(Invariant {
            name: name.to_owned(),
            pass,
            detail,
        });
    }

    /// True when every invariant held.
    pub fn all_pass(&self) -> bool {
        self.invariants.iter().all(|i| i.pass)
    }

    /// Deterministic JSON report: schema `"bench_fleet": "unidrive/v1"`,
    /// sorted keys, no wall-clock or host-dependent data. Same seed ⇒
    /// byte-identical output at any shard or thread count.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"bench_fleet\": \"unidrive/v1\",\n");

        out.push_str("  \"config\": {");
        out.push_str(&format!(
            "\"devices\": {}, \"fault_events\": {}, \"horizon_secs\": {}, \"hot_folders\": {}, \"meta_mode\": \"{}\", \"seed\": {}",
            self.devices, self.fault_events, self.horizon_secs, self.hot_folders, self.meta_mode, self.seed
        ));
        out.push_str("},\n");

        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push_str("},\n");

        out.push_str("  \"clouds\": [\n");
        for (i, c) in self.clouds.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"bytes_down\": {}, \"bytes_up\": {}, \"lock_ops\": {}, \"name\": \"{}\", \"ops\": {}, \"qps_mean\": {}, \"qps_peak\": {}, \"throttle_delay_ms\": {}, \"transfer_ops\": {}}}",
                c.bytes_down,
                c.bytes_up,
                c.lock_ops,
                c.name,
                c.ops,
                fmt_f64(c.qps_mean),
                c.qps_peak,
                c.throttle_delay_ns / 1_000_000,
                c.transfer_ops
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"hist\": {\n");
        out.push_str(&format!(
            "    \"lock_rounds\": {},\n",
            histogram_json(&self.lock_rounds)
        ));
        out.push_str(&format!(
            "    \"lock_wait_ns\": {},\n",
            histogram_json(&self.lock_wait)
        ));
        out.push_str(&format!(
            "    \"sync_latency_ns\": {}\n",
            histogram_json(&self.sync_latency)
        ));
        out.push_str("  },\n");

        out.push_str("  \"invariants\": [\n");
        for (i, inv) in self.invariants.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"detail\": \"{}\", \"name\": \"{}\", \"pass\": {}}}",
                inv.detail.replace('"', "'"),
                inv.name,
                inv.pass
            ));
        }
        out.push_str("\n  ],\n");

        out.push_str(&format!(
            "  \"run\": {{\"drain_rounds\": {}, \"events\": {}, \"virtual_end_secs\": {}, \"windows\": {}}}\n",
            self.drain_rounds,
            self.events_processed,
            fmt_f64(self.virtual_end_ns as f64 / 1e9),
            self.windows
        ));
        out.push_str("}\n");
        out
    }
}

/// Fixed-precision float formatting: locale-free, deterministic.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0.000".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetMetrics {
        let cfg = FleetConfig::quick(5);
        let mut m = FleetMetrics::new(&cfg);
        m.bump("sessions.started");
        m.add("bytes.synced", 1024);
        m.invariant("converged", true, "ok".to_owned());
        m.clouds.push(CloudRow {
            name: "dropbox".to_owned(),
            ops: 12,
            lock_ops: 4,
            transfer_ops: 8,
            bytes_up: 4096,
            bytes_down: 0,
            throttle_delay_ns: 2_000_000,
            qps_peak: 3,
            qps_mean: 1.5,
        });
        m
    }

    #[test]
    fn json_is_deterministic_and_schema_tagged() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"bench_fleet\": \"unidrive/v1\""));
        assert!(a.contains("\"sessions.started\": 1"));
        // Schema counters are present (at zero) even when never hit.
        assert!(a.contains("\"lock.starved\": 0"));
        assert!(a.contains("\"oplog.compact_forced\": 0"));
        assert!(a.contains("\"oplog.compact_overdue\": 0"));
        assert!(a.contains("\"qps_mean\": 1.500"));
        assert!(a.contains("\"throttle_delay_ms\": 2"));
        assert!(a.contains("\"pass\": true"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn counters_and_invariants_round_trip() {
        let mut m = sample();
        assert_eq!(m.counter("sessions.started"), 1);
        assert_eq!(m.counter("missing"), 0);
        assert!(m.all_pass());
        m.invariant("broken", false, "nope".to_owned());
        assert!(!m.all_pass());
    }
}
