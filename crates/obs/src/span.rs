//! Causal span layer: parent-linked, clock-stamped intervals.
//!
//! A span is one timed operation in the sync pipeline (a sync round, a
//! lock acquisition, a transfer batch, one block attempt). Spans carry
//! a registry-unique [`SpanId`], an optional parent link, typed
//! attributes (reusing the event [`FieldValue`] scalar), and start/end
//! timestamps stamped through the same installable clock as events —
//! so under simulated time the whole span tree is deterministic and a
//! same-seed run exports byte-identically.
//!
//! Completed spans land in a bounded ring mirroring the event
//! `TraceRing`: oldest spans are evicted first and evictions are
//! counted, never silently lost.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use crate::trace::FieldValue;

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// Identifier of one span within its registry. Ids are allocated from
/// 1; the value 0 is reserved to mean "no parent" in exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// One completed span: identity, parentage, interval, and attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Registry-unique id (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Stable span name from the taxonomy (`sync.round`,
    /// `lock.acquire`, `engine.batch`, `engine.worker`, `engine.block`,
    /// `wire.attempt`, `meta.*`, …).
    pub name: &'static str,
    /// Display lane for Chrome-trace export (`tid`); 0 is the
    /// client/control lane, engine workers use `slot + 1`.
    pub track: u32,
    /// Clock nanoseconds when the span was opened.
    pub start_ns: u64,
    /// Clock nanoseconds when the span was closed.
    pub end_ns: u64,
    /// Typed attributes in insertion order.
    pub attrs: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Span duration (saturating; clocks never run backwards under
    /// either runtime, but a snapshot must not panic if one did).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Attribute value by key, if present.
    pub fn attr(&self, key: &str) -> Option<&FieldValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Bounded FIFO of completed spans; oldest entries are evicted first.
pub(crate) struct SpanRing {
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
}

impl SpanRing {
    pub(crate) fn new(capacity: usize) -> SpanRing {
        SpanRing {
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Pushes a span; returns `true` when an old span was evicted.
    pub(crate) fn push(&self, span: SpanRecord) -> bool {
        let mut q = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let dropped = q.len() == self.capacity;
        if dropped {
            q.pop_front();
        }
        q.push_back(span);
        dropped
    }

    /// Copies out the ring contents, oldest first (by end time).
    pub(crate) fn drain_copy(&self) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            name: "t",
            track: 0,
            start_ns: id,
            end_ns: id + 1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = SpanRing::new(2);
        assert!(!ring.push(rec(1)));
        assert!(!ring.push(rec(2)));
        assert!(ring.push(rec(3)));
        let ids: Vec<u64> = ring.drain_copy().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn record_helpers() {
        let mut s = rec(7);
        s.attrs.push(("cloud", FieldValue::S("c0".into())));
        assert_eq!(s.duration_ns(), 1);
        assert_eq!(s.attr("cloud"), Some(&FieldValue::S("c0".into())));
        assert_eq!(s.attr("missing"), None);
        let backwards = SpanRecord {
            start_ns: 10,
            end_ns: 5,
            ..rec(8)
        };
        assert_eq!(backwards.duration_ns(), 0);
    }
}
