//! Virtual time representation.
//!
//! The engine counts time in integer nanoseconds from an arbitrary epoch
//! (the start of the simulation). [`Time`] is a thin newtype so virtual
//! timestamps cannot be confused with wall-clock instants or raw counters.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in (virtual or wall-clock) time, in nanoseconds since the
/// runtime's epoch.
///
/// `Time` is produced by [`Runtime::now`](crate::Runtime::now) and is
/// totally ordered; differences between two `Time`s are
/// [`std::time::Duration`]s.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use unidrive_sim::Time;
///
/// let t0 = Time::ZERO;
/// let t1 = t0 + Duration::from_millis(1500);
/// assert_eq!(t1 - t0, Duration::from_millis(1500));
/// assert_eq!(t1.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The runtime epoch.
    pub const ZERO: Time = Time(0);

    /// Creates a `Time` from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Time(nanos)
    }

    /// Creates a `Time` from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Time) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier time is later than self"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: Time) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    fn sub(self, rhs: Time) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_secs(3) + Duration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t - Time::from_secs(3), Duration::from_millis(250));
    }

    #[test]
    fn saturating_subtraction_clamps() {
        let early = Time::from_secs(1);
        let late = Time::from_secs(2);
        assert_eq!(early.saturating_duration_since(late), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier time is later")]
    fn duration_since_panics_when_reversed() {
        let _ = Time::from_secs(1).duration_since(Time::from_secs(2));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", Time::from_secs(2)), "2.000000s");
    }
}
