//! A static per-cloud transfer plan driven through the shared
//! [`TransferEngine`](unidrive_core::TransferEngine).
//!
//! The single-cloud and intuitive baselines both reduce to the same
//! scheduling "non-policy": every wire operation is assigned to its
//! cloud up front, idle connections just drain their cloud's queue in
//! order, and nothing ever reacts to observed speed. That is exactly
//! what distinguishes them from UniDrive — so they share this one
//! [`TransferPolicy`] and differ only in how they build the plan.

use std::collections::VecDeque;

use unidrive_cloud::{CloudError, CloudId};
use unidrive_core::{JobDesc, TransferPolicy, WireOp};
use unidrive_sim::Time;
use unidrive_util::bytes::Bytes;

/// One statically planned wire operation.
pub(crate) struct PlannedJob {
    /// Object path on the assigned cloud.
    pub path: String,
    /// `Some` uploads the bytes; `None` downloads into `slot`.
    pub data: Option<Bytes>,
    /// Result slot for downloads (ignored by uploads).
    pub slot: usize,
    /// Block/chunk index reported in dispatch events.
    pub index: u16,
}

/// Fixed per-cloud queues, first-error reporting, no rescheduling.
pub(crate) struct PlannedPolicy {
    queues: Vec<VecDeque<PlannedJob>>,
    inflight: usize,
    /// Downloaded bytes by slot (empty for pure-upload plans).
    pub results: Vec<Option<Bytes>>,
    /// First hard failure, if any.
    pub error: Option<CloudError>,
    done: bool,
}

impl PlannedPolicy {
    /// `queues[c]` is the plan for cloud `c`; `result_slots` sizes the
    /// download result vector.
    pub fn new(queues: Vec<VecDeque<PlannedJob>>, result_slots: usize) -> Self {
        let mut p = PlannedPolicy {
            queues,
            inflight: 0,
            results: vec![None; result_slots],
            error: None,
            done: false,
        };
        p.settle();
        p
    }

    fn settle(&mut self) {
        self.done = self.inflight == 0 && self.queues.iter().all(VecDeque::is_empty);
    }
}

impl TransferPolicy for PlannedPolicy {
    type Token = usize;

    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<usize>> {
        let job = self.queues.get_mut(cloud.0)?.pop_front()?;
        self.inflight += 1;
        let op = match job.data {
            Some(bytes) => WireOp::Upload {
                path: job.path,
                payload: Box::new(move || bytes),
            },
            None => WireOp::Download { path: job.path },
        };
        Some(JobDesc {
            token: job.slot,
            index: job.index,
            extra: false,
            // Static plans carry no per-job span context: every block
            // parents to the engine's batch span.
            parent_span: None,
            op,
        })
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn on_success(&mut self, _cloud: CloudId, slot: usize, data: Option<Bytes>, _now: Time) {
        self.inflight -= 1;
        if let Some(bytes) = data {
            self.results[slot] = Some(bytes);
        }
        self.settle();
    }

    fn on_failure(&mut self, cloud: CloudId, _slot: usize, error: CloudError, _now: Time) {
        self.inflight -= 1;
        // A hard failure (retries exhausted) parks the rest of that
        // cloud's plan: a static client has no other cloud to bounce
        // work to, so more attempts only delay the error report.
        self.queues[cloud.0].clear();
        if self.error.is_none() {
            self.error = Some(error);
        }
        self.settle();
    }
}
