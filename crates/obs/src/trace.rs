//! Ring-buffered structured event trace.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Default event-ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// One structured event. Variants cover the protocol moments the
/// paper's evaluation measures; timestamps are added by the registry
/// clock when recorded (see [`TracedEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A simulated network flow began (`bytes` to transfer).
    FlowStarted {
        /// Engine link the flow runs on.
        link: usize,
        /// Total bytes of the flow.
        bytes: u64,
    },
    /// A simulated network flow completed.
    FlowFinished {
        /// Engine link the flow ran on.
        link: usize,
        /// Total bytes transferred.
        bytes: u64,
    },
    /// The bandwidth model resampled link rates for a new epoch.
    EpochResampled {
        /// Index of the new epoch.
        epoch: u64,
    },
    /// A cloud operation failed.
    CloudOpFailed {
        /// Cloud (provider) name.
        cloud: String,
        /// Operation kind (`"upload"`, `"download"`, …).
        op: &'static str,
        /// Payload size, if the operation carried one.
        bytes: u64,
        /// Whether the error was transient (retryable).
        transient: bool,
    },
    /// A fault-injection wrapper (`ChaosCloud`) injected a scheduled
    /// fault into a cloud operation.
    FaultInjected {
        /// Cloud (provider) name the fault was injected into.
        cloud: String,
        /// Operation kind (`"upload"`, `"download"`, …).
        op: &'static str,
        /// Fault taxonomy label (`"transient"`, `"outage"`, `"quota"`,
        /// `"latency"`, `"torn_upload"`, `"delayed_visibility"`).
        kind: &'static str,
    },
    /// A retry loop is about to re-attempt an operation.
    RetryAttempt {
        /// Operation label.
        op: String,
        /// 1-based attempt number about to run.
        attempt: u32,
        /// Backoff slept before this attempt.
        backoff_ns: u64,
    },
    /// A quorum lock was acquired.
    LockAcquired {
        /// Device that acquired the lock.
        device: String,
        /// Acquisition rounds needed (1 = uncontended).
        rounds: u32,
        /// Virtual time spent acquiring.
        wait_ns: u64,
    },
    /// A lock round failed to reach quorum (contention).
    LockContended {
        /// Device that lost the round.
        device: String,
        /// Clouds on which this device's lock file won.
        held: usize,
        /// Quorum size that was needed.
        quorum: usize,
    },
    /// A stale foreign lock file was broken.
    LockBroken {
        /// Device that broke the lock.
        device: String,
        /// Owner of the stale lock file.
        victim: String,
    },
    /// A quorum lock was released.
    LockReleased {
        /// Device that held the lock.
        device: String,
    },
    /// The scheduler handed a block to a cloud connection.
    BlockDispatched {
        /// Target cloud index.
        cloud: usize,
        /// Erasure-block index within its segment.
        index: u16,
        /// Block size.
        bytes: u64,
        /// True when this is an over-provisioned extra replica.
        extra: bool,
    },
    /// A block upload finished successfully.
    BlockCompleted {
        /// Cloud that stored the block.
        cloud: usize,
        /// Erasure-block index within its segment.
        index: u16,
        /// Block size.
        bytes: u64,
        /// Transfer duration.
        elapsed_ns: u64,
    },
    /// One client sync round finished.
    SyncRoundCompleted {
        /// Device that ran the round.
        device: String,
        /// Outcome label (`"committed"`, `"fetched"`, `"clean"`, …).
        outcome: &'static str,
        /// Round duration.
        elapsed_ns: u64,
    },
}

impl Event {
    /// Stable machine-readable name of the variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::FlowStarted { .. } => "FlowStarted",
            Event::FlowFinished { .. } => "FlowFinished",
            Event::EpochResampled { .. } => "EpochResampled",
            Event::CloudOpFailed { .. } => "CloudOpFailed",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::RetryAttempt { .. } => "RetryAttempt",
            Event::LockAcquired { .. } => "LockAcquired",
            Event::LockContended { .. } => "LockContended",
            Event::LockBroken { .. } => "LockBroken",
            Event::LockReleased { .. } => "LockReleased",
            Event::BlockDispatched { .. } => "BlockDispatched",
            Event::BlockCompleted { .. } => "BlockCompleted",
            Event::SyncRoundCompleted { .. } => "SyncRoundCompleted",
        }
    }

    /// The variant's fields as `(key, value)` pairs for export,
    /// in a fixed order.
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::*;
        match self {
            Event::FlowStarted { link, bytes } => {
                vec![("link", U(*link as u64)), ("bytes", U(*bytes))]
            }
            Event::FlowFinished { link, bytes } => {
                vec![("link", U(*link as u64)), ("bytes", U(*bytes))]
            }
            Event::EpochResampled { epoch } => vec![("epoch", U(*epoch))],
            Event::CloudOpFailed {
                cloud,
                op,
                bytes,
                transient,
            } => vec![
                ("cloud", S(cloud.clone())),
                ("op", S((*op).to_owned())),
                ("bytes", U(*bytes)),
                ("transient", B(*transient)),
            ],
            Event::FaultInjected { cloud, op, kind } => vec![
                ("cloud", S(cloud.clone())),
                ("op", S((*op).to_owned())),
                ("kind", S((*kind).to_owned())),
            ],
            Event::RetryAttempt {
                op,
                attempt,
                backoff_ns,
            } => vec![
                ("op", S(op.clone())),
                ("attempt", U(*attempt as u64)),
                ("backoff_ns", U(*backoff_ns)),
            ],
            Event::LockAcquired {
                device,
                rounds,
                wait_ns,
            } => vec![
                ("device", S(device.clone())),
                ("rounds", U(*rounds as u64)),
                ("wait_ns", U(*wait_ns)),
            ],
            Event::LockContended {
                device,
                held,
                quorum,
            } => vec![
                ("device", S(device.clone())),
                ("held", U(*held as u64)),
                ("quorum", U(*quorum as u64)),
            ],
            Event::LockBroken { device, victim } => vec![
                ("device", S(device.clone())),
                ("victim", S(victim.clone())),
            ],
            Event::LockReleased { device } => vec![("device", S(device.clone()))],
            Event::BlockDispatched {
                cloud,
                index,
                bytes,
                extra,
            } => vec![
                ("cloud", U(*cloud as u64)),
                ("index", U(*index as u64)),
                ("bytes", U(*bytes)),
                ("extra", B(*extra)),
            ],
            Event::BlockCompleted {
                cloud,
                index,
                bytes,
                elapsed_ns,
            } => vec![
                ("cloud", U(*cloud as u64)),
                ("index", U(*index as u64)),
                ("bytes", U(*bytes)),
                ("elapsed_ns", U(*elapsed_ns)),
            ],
            Event::SyncRoundCompleted {
                device,
                outcome,
                elapsed_ns,
            } => vec![
                ("device", S(device.clone())),
                ("outcome", S((*outcome).to_owned())),
                ("elapsed_ns", U(*elapsed_ns)),
            ],
        }
    }
}

/// Scalar value of one exported event field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U(u64),
    /// String.
    S(String),
    /// Boolean.
    B(bool),
}

/// An [`Event`] plus its clock timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Nanoseconds on the registry clock when recorded.
    pub t_ns: u64,
    /// The event payload.
    pub event: Event,
}

/// Bounded FIFO of traced events; oldest entries are evicted first.
pub(crate) struct TraceRing {
    capacity: usize,
    events: Mutex<VecDeque<TracedEvent>>,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Pushes an event; returns `true` when an old event was evicted.
    pub(crate) fn push(&self, event: TracedEvent) -> bool {
        let mut q = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let dropped = q.len() == self.capacity;
        if dropped {
            q.pop_front();
        }
        q.push_back(event);
        dropped
    }

    /// Copies out the ring contents, oldest first.
    pub(crate) fn drain_copy(&self) -> Vec<TracedEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TracedEvent {
        TracedEvent {
            t_ns: n,
            event: Event::EpochResampled { epoch: n },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = TraceRing::new(3);
        assert!(!ring.push(ev(1)));
        assert!(!ring.push(ev(2)));
        assert!(!ring.push(ev(3)));
        assert!(ring.push(ev(4)));
        let got: Vec<u64> = ring.drain_copy().iter().map(|e| e.t_ns).collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn kinds_and_fields_are_stable() {
        let e = Event::BlockCompleted {
            cloud: 2,
            index: 5,
            bytes: 1024,
            elapsed_ns: 99,
        };
        assert_eq!(e.kind(), "BlockCompleted");
        let keys: Vec<&str> = e.fields().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["cloud", "index", "bytes", "elapsed_ns"]);
    }
}
