//! Single-cloud client: a stand-in for a native CCS app's transfer
//! engine (paper §7.1 "official native apps").
//!
//! Real native apps use private APIs, but their transfer behaviour —
//! chunked, multi-connection upload/download to one cloud — is what the
//! paper's comparison measures. `SingleCloudClient` reproduces that:
//! files are split into fixed-size chunks pushed over up to
//! `connections` parallel streams to a single cloud.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_cloud::{retrying, CloudError, CloudStore, RetryPolicy};
use unidrive_sim::{spawn, Runtime};

/// Chunked parallel transfer client bound to one cloud.
pub struct SingleCloudClient {
    rt: Arc<dyn Runtime>,
    cloud: Arc<dyn CloudStore>,
    connections: usize,
    chunk_size: usize,
    retry: RetryPolicy,
    /// name → (total length, chunk count).
    manifest: Mutex<HashMap<String, (u64, usize)>>,
}

impl std::fmt::Debug for SingleCloudClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleCloudClient")
            .field("cloud", &self.cloud.name())
            .field("connections", &self.connections)
            .finish()
    }
}

impl SingleCloudClient {
    /// Creates a client with the given parallelism and 1 MB chunks.
    pub fn new(
        rt: Arc<dyn Runtime>,
        cloud: Arc<dyn CloudStore>,
        connections: usize,
    ) -> Self {
        SingleCloudClient {
            rt,
            cloud,
            connections: connections.max(1),
            chunk_size: 1024 * 1024,
            retry: RetryPolicy::new(),
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// The cloud this client talks to.
    pub fn cloud_name(&self) -> &str {
        self.cloud.name()
    }

    /// Uploads `data` as chunked objects under `name`.
    ///
    /// # Errors
    ///
    /// The first chunk error after retries.
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let t0 = self.rt.now();
        let chunks: Vec<(usize, Bytes)> = data
            .chunks(self.chunk_size)
            .map(Bytes::copy_from_slice)
            .enumerate()
            .collect();
        let chunk_count = chunks.len();
        let queue = Arc::new(Mutex::new(chunks));
        let errors: Arc<Mutex<Option<CloudError>>> = Arc::new(Mutex::new(None));
        let mut workers = Vec::new();
        for w in 0..self.connections.min(chunk_count.max(1)) {
            let rt = Arc::clone(&self.rt);
            let cloud = Arc::clone(&self.cloud);
            let queue = Arc::clone(&queue);
            let errors = Arc::clone(&errors);
            let retry = self.retry.clone();
            let name = name.to_owned();
            workers.push(spawn(&self.rt, &format!("single-up-{w}"), move || loop {
                let Some((i, chunk)) = queue.lock().pop() else {
                    break;
                };
                let path = format!("native/{name}.{i}");
                if let Err(e) = retrying(&rt, &retry, || cloud.upload(&path, chunk.clone())) {
                    *errors.lock() = Some(e);
                    break;
                }
            }));
        }
        for w in workers {
            w.join();
        }
        if let Some(e) = errors.lock().take() {
            return Err(e);
        }
        self.manifest
            .lock()
            .insert(name.to_owned(), (data.len() as u64, chunk_count));
        Ok(self.rt.now().saturating_duration_since(t0))
    }

    /// Registers `name` as already uploaded (len bytes) without moving
    /// traffic — the sink side of a native app's change notification.
    pub fn assume_uploaded(&self, name: &str, len: u64) {
        let chunk_count = (len as usize).div_ceil(self.chunk_size).max(1);
        self.manifest
            .lock()
            .insert(name.to_owned(), (len, chunk_count));
    }

    /// Downloads the chunks of `name` and reassembles them.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] for unknown names, or the first chunk
    /// error after retries.
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        let (len, chunk_count) = self
            .manifest
            .lock()
            .get(name)
            .copied()
            .ok_or_else(|| CloudError::not_found(name))?;
        let t0 = self.rt.now();
        let queue = Arc::new(Mutex::new((0..chunk_count).collect::<Vec<_>>()));
        let results: Arc<Mutex<Vec<Option<Bytes>>>> =
            Arc::new(Mutex::new(vec![None; chunk_count]));
        let errors: Arc<Mutex<Option<CloudError>>> = Arc::new(Mutex::new(None));
        let mut workers = Vec::new();
        for w in 0..self.connections.min(chunk_count.max(1)) {
            let rt = Arc::clone(&self.rt);
            let cloud = Arc::clone(&self.cloud);
            let queue = Arc::clone(&queue);
            let results = Arc::clone(&results);
            let errors = Arc::clone(&errors);
            let retry = self.retry.clone();
            let name = name.to_owned();
            workers.push(spawn(&self.rt, &format!("single-down-{w}"), move || loop {
                let Some(i) = queue.lock().pop() else {
                    break;
                };
                let path = format!("native/{name}.{i}");
                match retrying(&rt, &retry, || cloud.download(&path)) {
                    Ok(data) => {
                        results.lock()[i] = Some(data);
                    }
                    Err(e) => {
                        *errors.lock() = Some(e);
                        break;
                    }
                }
            }));
        }
        for w in workers {
            w.join();
        }
        if let Some(e) = errors.lock().take() {
            return Err(e);
        }
        let mut out = Vec::with_capacity(len as usize);
        for chunk in results.lock().iter() {
            out.extend_from_slice(chunk.as_ref().expect("no error implies all chunks"));
        }
        Ok((self.rt.now().saturating_duration_since(t0), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{SimCloud, SimCloudConfig};
    use unidrive_sim::SimRuntime;

    #[test]
    fn round_trip_and_parallel_speedup() {
        let sim = SimRuntime::new(1);
        // per-conn 1 MB/s, aggregate 4 MB/s: 4 connections help 4x.
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 4e6),
        ));
        let rt = sim.clone().as_runtime();
        let data = Bytes::from(vec![7u8; 8 * 1024 * 1024]);

        let serial = SingleCloudClient::new(rt.clone(), cloud.clone(), 1);
        let t_serial = serial.upload("a", data.clone()).unwrap();
        let parallel = SingleCloudClient::new(rt.clone(), cloud.clone(), 4);
        let t_parallel = parallel.upload("b", data.clone()).unwrap();
        assert!(
            t_serial.as_secs_f64() > 3.0 * t_parallel.as_secs_f64(),
            "serial {t_serial:?} vs parallel {t_parallel:?}"
        );

        let (_, restored) = parallel.download("b").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn unknown_name_is_not_found() {
        let sim = SimRuntime::new(2);
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 1e6),
        ));
        let client = SingleCloudClient::new(sim.clone().as_runtime(), cloud, 2);
        assert!(matches!(
            client.download("ghost").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn outage_surfaces_as_error() {
        let sim = SimRuntime::new(3);
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 1e6),
        ));
        cloud.set_available(false);
        let client = SingleCloudClient::new(sim.clone().as_runtime(), cloud, 2);
        assert!(client
            .upload("f", Bytes::from(vec![0u8; 1024]))
            .is_err());
    }
}
