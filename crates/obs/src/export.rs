//! Snapshot type and deterministic JSON/CSV export.
//!
//! The JSON writer is hand-rolled (no external crates) and fully
//! deterministic: metric maps are exported in sorted (BTreeMap) key
//! order, events in trace order, floats through Rust's shortest
//! round-trip formatting. Two runs with the same seed therefore
//! produce byte-identical exports.

use crate::metrics::HistogramSnapshot;
use crate::span::SpanRecord;
use crate::trace::{FieldValue, TracedEvent};

/// Point-in-time copy of a registry: every metric plus the event
/// trace and the completed-span ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// The event trace, oldest first.
    pub events: Vec<TracedEvent>,
    /// Events evicted from the ring before this snapshot.
    pub dropped_events: u64,
    /// Completed spans, oldest (by end time) first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the span ring before this snapshot.
    pub dropped_spans: u64,
}

impl Snapshot {
    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Value of gauge `name`, if present and set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .filter(|v| !v.is_nan())
    }

    /// Histogram snapshot `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Number of trace events of the given kind.
    pub fn event_count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.event.kind() == kind).count()
    }

    /// The span record with the given id, if present.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Number of completed spans with the given name.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Sorts the trace into a canonical order: by timestamp, then
    /// event kind, then field values (spans by start time, end time,
    /// name, id). Actors that become runnable at the same virtual
    /// instant may record their events in either order; canonicalizing
    /// before export makes same-seed runs byte-identical regardless of
    /// that benign race.
    pub fn canonicalize(&mut self) {
        self.events.sort_by_cached_key(|e| {
            let mut key = format!("{:020}|{}", e.t_ns, e.event.kind());
            for (name, value) in e.event.fields() {
                key.push('|');
                key.push_str(name);
                key.push('=');
                match value {
                    FieldValue::U(v) => key.push_str(&format!("{v:020}")),
                    FieldValue::B(v) => key.push(if v { '1' } else { '0' }),
                    FieldValue::S(v) => key.push_str(&v),
                }
            }
            key
        });
        self.spans.sort_by_cached_key(|s| {
            format!("{:020}|{:020}|{}|{:020}", s.start_ns, s.end_ns, s.name, s.id)
        });
    }

    /// Serializes the snapshot as pretty-stable JSON (see module docs
    /// for the determinism guarantee).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"unidrive-obs/v2\",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(": ");
            json_f64(&mut out, *value);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lo}, {n}]"));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "\n  }},\n  \"dropped_events\": {},\n  \"events\": [",
            self.dropped_events
        ));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"t_ns\": {}, \"type\": \"{}\"",
                e.t_ns,
                e.event.kind()
            ));
            for (key, value) in e.event.fields() {
                out.push_str(", ");
                json_string(&mut out, key);
                out.push_str(": ");
                json_field_value(&mut out, &value);
            }
            out.push('}');
        }
        out.push_str(&format!(
            "\n  ],\n  \"dropped_spans\": {},\n  \"spans\": [",
            self.dropped_spans
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": {}, \"parent\": {}, \"name\": \"{}\", \"track\": {}, \
                 \"start_ns\": {}, \"end_ns\": {}",
                s.id, s.parent, s.name, s.track, s.start_ns, s.end_ns
            ));
            for (key, value) in &s.attrs {
                out.push_str(", ");
                json_string(&mut out, key);
                out.push_str(": ");
                json_field_value(&mut out, value);
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Serializes one histogram as a deterministic standalone JSON
/// object: counts, extrema, mean, the p50/p95/p99 quantile
/// estimates, and the raw log₂ bucket array. Fleet-scale reports
/// (`BENCH_fleet.json`) embed this per latency/wait distribution
/// instead of carrying a whole registry snapshot.
pub fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, ",
        h.count, h.sum, h.min, h.max
    ));
    out.push_str("\"mean\": ");
    json_f64(&mut out, h.mean());
    out.push_str(&format!(
        ", \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
        h.p50(),
        h.p95(),
        h.p99()
    ));
    for (j, (lo, n)) in h.buckets.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[{lo}, {n}]"));
    }
    out.push_str("]}");
    out
}

impl Snapshot {
    /// Serializes the spans (plus events as instants) in Chrome
    /// trace-event JSON: open the file in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans become
    /// complete (`"ph": "X"`) events with microsecond `ts`/`dur`;
    /// parent links and typed attributes ride in `args`. The writer is
    /// deterministic: canonicalize first and same-seed runs produce
    /// byte-identical files.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n");
        out.push_str(&format!(
            "\"droppedSpans\": {},\n\"droppedEvents\": {},\n\"traceEvents\": [",
            self.dropped_spans, self.dropped_events
        ));
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\": \"{}\", \"cat\": \"unidrive\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"span_id\": {}, \
                 \"parent\": {}",
                s.name,
                s.track,
                micros(s.start_ns),
                micros(s.duration_ns()),
                s.id,
                s.parent
            ));
            for (key, value) in &s.attrs {
                out.push_str(", ");
                json_string(&mut out, key);
                out.push_str(": ");
                json_field_value(&mut out, value);
            }
            out.push_str("}}");
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\": \"{}\", \"cat\": \"event\", \"ph\": \"i\", \"s\": \"g\", \
                 \"pid\": 1, \"tid\": 0, \"ts\": {}, \"args\": {{",
                e.event.kind(),
                micros(e.t_ns)
            ));
            for (i, (key, value)) in e.event.fields().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json_string(&mut out, key);
                out.push_str(": ");
                json_field_value(&mut out, value);
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Serializes the metrics (not the trace) as CSV with a
    /// `kind,name,field,value` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("counter,{},value,{}\n", csv_field(name), value));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge,{},value,{}\n", csv_field(name), value));
        }
        for (name, h) in &self.histograms {
            let name = csv_field(name);
            out.push_str(&format!("histogram,{name},count,{}\n", h.count));
            out.push_str(&format!("histogram,{name},sum,{}\n", h.sum));
            out.push_str(&format!("histogram,{name},min,{}\n", h.min));
            out.push_str(&format!("histogram,{name},max,{}\n", h.max));
            for (lo, n) in &h.buckets {
                out.push_str(&format!("histogram,{name},bucket_ge_{lo},{n}\n"));
            }
        }
        out
    }
}

/// Nanoseconds rendered as a microsecond decimal (`123.456`), the unit
/// Chrome trace-event `ts`/`dur` fields use. Integer math keeps the
/// rendering deterministic.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_field_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U(v) => out.push_str(&v.to_string()),
        FieldValue::B(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::S(v) => json_string(out, v),
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers like `2` are valid JSON numbers, but keep a
        // decimal point so consumers type gauges consistently.
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            gauges: vec![("g".into(), 1.5), ("whole".into(), 2.0)],
            histograms: vec![(
                "h".into(),
                HistogramSnapshot {
                    count: 2,
                    sum: 5,
                    min: 1,
                    max: 4,
                    buckets: vec![(1, 1), (4, 1)],
                },
            )],
            events: vec![TracedEvent {
                t_ns: 10,
                event: Event::LockReleased {
                    device: "dev-\"a\"".into(),
                },
            }],
            dropped_events: 0,
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "sync.round",
                    track: 0,
                    start_ns: 5,
                    end_ns: 2_000,
                    attrs: vec![("device", FieldValue::S("dev".into()))],
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "engine.block",
                    track: 3,
                    start_ns: 100,
                    end_ns: 1_500,
                    attrs: vec![("cloud", FieldValue::S("c0".into())), ("extra", FieldValue::B(false))],
                },
            ],
            dropped_spans: 0,
        }
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"unidrive-obs/v2\""));
        assert!(a.contains("\"a\": 1"));
        assert!(a.contains("\"whole\": 2.0"));
        assert!(a.contains("dev-\\\"a\\\""));
        assert!(a.contains("[4, 1]"));
        assert!(a.contains("\"spans\": ["));
        assert!(a.contains("\"name\": \"engine.block\""));
        assert!(a.contains("\"parent\": 1"));
    }

    #[test]
    fn standalone_histogram_json_is_deterministic_with_quantiles() {
        use crate::Histogram;
        let h = Histogram::default();
        for v in [100u64, 200, 400, 800, 1600, 3200] {
            h.record(v);
        }
        let snap = h.snapshot();
        let a = histogram_json(&snap);
        assert_eq!(a, histogram_json(&snap));
        assert!(a.contains("\"count\": 6"));
        assert!(a.contains(&format!("\"p50\": {}", snap.p50())));
        assert!(a.contains(&format!("\"p99\": {}", snap.p99())));
        assert!(a.contains("\"buckets\": ["));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn chrome_trace_has_complete_events_in_micros() {
        let trace = sample().to_chrome_trace();
        assert!(trace.contains("\"traceEvents\": ["));
        // Span 1: 5 ns start, 1995 ns duration -> 0.005 / 1.995 µs.
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ts\": 0.005"));
        assert!(trace.contains("\"dur\": 1.995"));
        // Child rides its worker track and keeps parentage in args.
        assert!(trace.contains("\"tid\": 3"));
        assert!(trace.contains("\"span_id\": 2, \"parent\": 1"));
        // Events become global instants.
        assert!(trace.contains("\"ph\": \"i\""));
        assert!(trace.contains("\"name\": \"LockReleased\""));
        assert_eq!(sample().to_chrome_trace(), trace);
    }

    #[test]
    fn csv_lists_every_metric() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,a,value,1\n"));
        assert!(csv.contains("histogram,h,bucket_ge_4,1\n"));
    }

    #[test]
    fn canonicalize_is_order_insensitive() {
        let mut a = sample();
        a.events.push(TracedEvent {
            t_ns: 10,
            event: Event::EpochResampled { epoch: 3 },
        });
        a.events.push(TracedEvent {
            t_ns: 5,
            event: Event::EpochResampled { epoch: 9 },
        });
        let mut b = a.clone();
        b.events.reverse();
        b.spans.reverse();
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
        assert_eq!(a.events[0].t_ns, 5);
        assert_eq!(a.spans[0].id, 1, "spans sort by start time");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn lookup_helpers() {
        let s = sample();
        assert_eq!(s.counter("b"), 2);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.counter_sum(""), 3);
        assert_eq!(s.gauge("g"), Some(1.5));
        assert_eq!(s.histogram("h").unwrap().count, 2);
        assert_eq!(s.event_count("LockReleased"), 1);
    }
}
