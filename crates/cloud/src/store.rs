//! The [`CloudStore`] trait: the minimum RESTful surface UniDrive assumes.
//!
//! The paper (§4, "Challenges") restricts itself to the few public,
//! stateless data-access Web APIs every consumer cloud offers third-party
//! apps: *file upload, download; directory create, list; and delete*.
//! Everything UniDrive does — locking, version signaling, metadata
//! replication, block distribution — is expressed through these five
//! operations.
//!
//! Consistency contract: implementations must provide **read-after-write
//! consistency** (paper §5.2): once an upload returns success, subsequent
//! `list`/`download` from any client observe the object. Sequential
//! consistency is *not* required.

use unidrive_util::bytes::Bytes;
use std::sync::Arc;

use crate::CloudError;

/// Metadata of one object returned by [`CloudStore::list`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectInfo {
    /// Base name within the listed directory (no separators).
    pub name: String,
    /// Object size in bytes; zero for directories.
    pub size: u64,
    /// Whether the entry is a directory.
    pub is_dir: bool,
}

/// A consumer cloud storage service, reduced to the five public Web API
/// operations available to third-party apps.
///
/// Paths are `/`-separated, relative (no leading `/`), with non-empty
/// segments; the empty string denotes the root directory. Implementations
/// auto-create missing parent directories on upload (matching real CCS
/// API behaviour) but [`create_dir`](CloudStore::create_dir) is available
/// for explicit creation.
///
/// # Examples
///
/// ```
/// use unidrive_cloud::{CloudStore, MemCloud};
/// use unidrive_util::bytes::Bytes;
///
/// # fn main() -> Result<(), unidrive_cloud::CloudError> {
/// let cloud = MemCloud::new("dropbox");
/// cloud.upload("docs/a.txt", Bytes::from_static(b"hello"))?;
/// assert_eq!(cloud.download("docs/a.txt")?, Bytes::from_static(b"hello"));
/// let listing = cloud.list("docs")?;
/// assert_eq!(listing.len(), 1);
/// assert_eq!(listing[0].name, "a.txt");
/// # Ok(())
/// # }
/// ```
pub trait CloudStore: Send + Sync {
    /// Provider name (e.g. `"dropbox"`); used in diagnostics and lock
    /// bookkeeping.
    fn name(&self) -> &str;

    /// Stores `data` at `path`, replacing any existing object.
    ///
    /// # Errors
    ///
    /// [`CloudError::Transient`] on simulated/real network failure,
    /// [`CloudError::Unavailable`] during outages,
    /// [`CloudError::QuotaExceeded`] when the account is full,
    /// [`CloudError::InvalidPath`] for malformed paths.
    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError>;

    /// Retrieves the object at `path`.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] if absent, plus the transport errors
    /// listed under [`upload`](CloudStore::upload).
    fn download(&self, path: &str) -> Result<Bytes, CloudError>;

    /// Creates directory `path` (and missing parents). Succeeds if it
    /// already exists.
    ///
    /// # Errors
    ///
    /// Transport errors as for [`upload`](CloudStore::upload).
    fn create_dir(&self, path: &str) -> Result<(), CloudError>;

    /// Lists the immediate children of directory `path`.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] if the directory does not exist, plus
    /// transport errors.
    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError>;

    /// Deletes the object or directory (recursively) at `path`.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] if absent, plus transport errors.
    fn delete(&self, path: &str) -> Result<(), CloudError>;

    /// Appends `data` to the object at `path`, creating it when absent.
    ///
    /// Consumer cloud APIs expose no atomic append, so the default is
    /// read-modify-write over the five primitive ops: `download` the
    /// current contents (absent ⇒ empty) and `upload` the extended
    /// object. The composed calls go through the implementation's own
    /// `download`/`upload`, so wrappers (latency, chaos/torn-upload
    /// faults) exercise appends with no extra code. Implementations
    /// with a native append (e.g. [`MemCloud`](crate::MemCloud)) may
    /// override.
    ///
    /// Note for single-writer logs replicated across clouds: a torn
    /// upload persists a *prefix* of the composed object, so appenders
    /// that must survive torn faults should prefer replacing the full
    /// log tail via [`upload`](CloudStore::upload) (idempotent and
    /// self-healing) over download-based append, which can embed a
    /// previously torn tail mid-file.
    ///
    /// # Errors
    ///
    /// The transport errors of [`download`](CloudStore::download) and
    /// [`upload`](CloudStore::upload).
    fn append(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        let existing = match self.download(path) {
            Ok(b) => b,
            Err(CloudError::NotFound { .. }) => Bytes::new(),
            Err(e) => return Err(e),
        };
        let mut out = Vec::with_capacity(existing.len() + data.len());
        out.extend_from_slice(&existing);
        out.extend_from_slice(&data);
        self.upload(path, Bytes::from(out))
    }

    /// Convenience: whether an object or directory exists, implemented
    /// via [`list`](CloudStore::list) on the parent (the only way with
    /// the five-op API).
    fn exists(&self, path: &str) -> Result<bool, CloudError> {
        let (parent, base) = split_path(path);
        match self.list(parent) {
            Ok(entries) => Ok(entries.iter().any(|e| e.name == base)),
            Err(CloudError::NotFound { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// What this store can actually do beyond the five-op minimum, so
    /// callers (the oplog metadata plane, the data plane) can *query*
    /// behavior instead of probing for it. The default is the most
    /// conservative honest answer for an unknown consumer cloud;
    /// wrappers must forward their inner store's capabilities, masking
    /// anything they themselves break (e.g. a fault injector that
    /// schedules delayed visibility masks `read_after_write`).
    fn caps(&self) -> CloudCaps {
        CloudCaps::default()
    }
}

/// Capability descriptor returned by [`CloudStore::caps`].
///
/// The fields answer the questions UniDrive's planes otherwise had to
/// answer by folklore: can `append` tear (see the torn-tail note on
/// [`CloudStore::append`])? can a just-written object be read back
/// immediately? how big may one object be? is compare-and-swap
/// available for lock-free metadata commits?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloudCaps {
    /// The store appends atomically server-side (all-or-nothing, no
    /// read-modify-write window). When `false`, `append` is the
    /// composed default and a torn upload can persist a prefix of the
    /// *whole* object — single-writer logs should full-replace.
    pub native_append: bool,
    /// Once `upload` returns success, `download`/`list` from any
    /// client observe the new object (paper §5.2's contract). Fault
    /// wrappers that delay visibility must report `false`.
    pub read_after_write: bool,
    /// Hard per-object size limit, if the provider documents one.
    pub max_object_bytes: Option<u64>,
    /// The store offers conditional put (compare-and-swap on upload),
    /// e.g. S3 `If-Match`. None of the paper's five ops require it;
    /// reported so future metadata planes can pick commit strategies.
    pub supports_conditional_put: bool,
    /// Deleting a missing object and listing a never-created directory
    /// report [`NotFound`](crate::CloudError::NotFound). Stores with
    /// idempotent S3-style semantics (delete of an absent key succeeds,
    /// an absent prefix lists as empty) report `false`, and callers
    /// must not use those two ops as existence probes. Download of a
    /// missing object is `NotFound` under either dialect.
    pub strict_not_found: bool,
}

impl Default for CloudCaps {
    /// The conservative profile of an unknown consumer cloud: no
    /// native append, no conditional put, no documented size limit,
    /// no strict not-found edges (the S3-style idempotent dialect is
    /// the weaker promise), but read-after-write (which [`CloudStore`]
    /// *requires* of every implementation).
    fn default() -> CloudCaps {
        CloudCaps {
            native_append: false,
            read_after_write: true,
            max_object_bytes: None,
            supports_conditional_put: false,
            strict_not_found: false,
        }
    }
}

/// Splits a path into `(parent, basename)`.
///
/// ```
/// use unidrive_cloud::split_path;
/// assert_eq!(split_path("a/b/c"), ("a/b", "c"));
/// assert_eq!(split_path("top"), ("", "top"));
/// ```
pub fn split_path(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    }
}

/// Validates a path: relative, `/`-separated, non-empty segments, no `.`
/// or `..` traversal.
///
/// # Errors
///
/// Returns [`CloudError::InvalidPath`] describing the violation.
pub fn validate_path(path: &str) -> Result<(), CloudError> {
    let invalid = |reason: &str| {
        Err(CloudError::InvalidPath {
            path: path.to_owned(),
            reason: reason.to_owned(),
        })
    };
    if path.is_empty() {
        return invalid("empty path refers to the root; not a valid object path");
    }
    if path.starts_with('/') || path.ends_with('/') {
        return invalid("leading or trailing separator");
    }
    for seg in path.split('/') {
        if seg.is_empty() {
            return invalid("empty segment");
        }
        if seg == "." || seg == ".." {
            return invalid("path traversal segment");
        }
    }
    Ok(())
}

/// Identifier of a cloud within a [`CloudSet`] (index order is stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CloudId(pub usize);

impl std::fmt::Display for CloudId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cloud#{}", self.0)
    }
}

/// An ordered collection of clouds forming a user's multi-cloud.
///
/// UniDrive configurations refer to member clouds by [`CloudId`] — the
/// same identifier recorded in block metadata (`<Block-ID, Cloud-ID>`
/// pairs, paper §5.1).
#[derive(Clone)]
pub struct CloudSet {
    clouds: Vec<Arc<dyn CloudStore>>,
}

impl CloudSet {
    /// Creates a set from member clouds.
    ///
    /// # Panics
    ///
    /// Panics if `clouds` is empty.
    pub fn new(clouds: Vec<Arc<dyn CloudStore>>) -> Self {
        assert!(!clouds.is_empty(), "a multi-cloud needs at least one cloud");
        CloudSet { clouds }
    }

    /// Number of member clouds (the paper's *N*).
    pub fn len(&self) -> usize {
        self.clouds.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.clouds.is_empty()
    }

    /// The cloud with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range. Call sites that index with ids
    /// taken from validated block metadata or from [`ids`](CloudSet::ids)
    /// of this same set rely on that as an invariant; use
    /// [`try_get`](CloudSet::try_get) when the id comes from anywhere
    /// else (external input, a differently-sized set).
    pub fn get(&self, id: CloudId) -> &Arc<dyn CloudStore> {
        &self.clouds[id.0]
    }

    /// The cloud with the given id, or `None` if `id` is out of range.
    pub fn try_get(&self, id: CloudId) -> Option<&Arc<dyn CloudStore>> {
        self.clouds.get(id.0)
    }

    /// Iterates over `(CloudId, cloud)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CloudId, &Arc<dyn CloudStore>)> {
        self.clouds
            .iter()
            .enumerate()
            .map(|(i, c)| (CloudId(i), c))
    }

    /// All member ids.
    pub fn ids(&self) -> Vec<CloudId> {
        (0..self.clouds.len()).map(CloudId).collect()
    }

    /// Majority quorum size: `⌊N/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.clouds.len() / 2 + 1
    }

    /// Returns a new set with `cloud` appended (used when the user adds a
    /// CCS, paper §6.2 "Adding or Removing CCSs").
    pub fn with_added(&self, cloud: Arc<dyn CloudStore>) -> CloudSet {
        let mut clouds = self.clouds.clone();
        clouds.push(cloud);
        CloudSet { clouds }
    }

    /// Returns a new set with the cloud at `id` removed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the set would become empty.
    pub fn with_removed(&self, id: CloudId) -> CloudSet {
        self.try_with_removed(id)
            .expect("with_removed: id out of range or set would become empty")
    }

    /// Returns a new set with the cloud at `id` removed, or `None` if
    /// `id` is out of range or the set would become empty.
    pub fn try_with_removed(&self, id: CloudId) -> Option<CloudSet> {
        if id.0 >= self.clouds.len() || self.clouds.len() <= 1 {
            return None;
        }
        let mut clouds = self.clouds.clone();
        clouds.remove(id.0);
        Some(CloudSet { clouds })
    }
}

impl std::fmt::Debug for CloudSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.clouds.iter().map(|c| c.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemCloud;

    #[test]
    fn split_path_handles_nesting() {
        assert_eq!(split_path("a/b/c.txt"), ("a/b", "c.txt"));
        assert_eq!(split_path("c.txt"), ("", "c.txt"));
    }

    #[test]
    fn validate_path_rejects_bad_shapes() {
        assert!(validate_path("ok/file.bin").is_ok());
        for bad in ["", "/abs", "trail/", "a//b", "a/../b", "."] {
            assert!(validate_path(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn quorum_is_majority() {
        let set = |n: usize| {
            CloudSet::new(
                (0..n)
                    .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
                    .collect(),
            )
        };
        assert_eq!(set(1).quorum(), 1);
        assert_eq!(set(2).quorum(), 2);
        assert_eq!(set(3).quorum(), 2);
        assert_eq!(set(4).quorum(), 3);
        assert_eq!(set(5).quorum(), 3);
    }

    #[test]
    fn add_and_remove_preserve_order() {
        let base = CloudSet::new(vec![
            Arc::new(MemCloud::new("a")) as Arc<dyn CloudStore>,
            Arc::new(MemCloud::new("b")),
        ]);
        let grown = base.with_added(Arc::new(MemCloud::new("c")));
        assert_eq!(grown.len(), 3);
        assert_eq!(grown.get(CloudId(2)).name(), "c");
        let shrunk = grown.with_removed(CloudId(1));
        assert_eq!(shrunk.len(), 2);
        assert_eq!(shrunk.get(CloudId(1)).name(), "c");
    }

    #[test]
    #[should_panic(expected = "at least one cloud")]
    fn empty_set_rejected() {
        let _ = CloudSet::new(Vec::new());
    }

    #[test]
    fn try_get_is_fallible() {
        let set = CloudSet::new(vec![
            Arc::new(MemCloud::new("a")) as Arc<dyn CloudStore>,
            Arc::new(MemCloud::new("b")),
        ]);
        assert_eq!(set.try_get(CloudId(1)).unwrap().name(), "b");
        assert!(set.try_get(CloudId(2)).is_none());
    }

    #[test]
    fn try_with_removed_refuses_bad_removals() {
        let two = CloudSet::new(vec![
            Arc::new(MemCloud::new("a")) as Arc<dyn CloudStore>,
            Arc::new(MemCloud::new("b")),
        ]);
        let one = two.try_with_removed(CloudId(0)).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one.get(CloudId(0)).name(), "b");
        // Out of range.
        assert!(two.try_with_removed(CloudId(5)).is_none());
        // Would empty the set.
        assert!(one.try_with_removed(CloudId(0)).is_none());
    }

    /// A store whose `list` always fails transiently, to exercise the
    /// error path of the `exists` default impl.
    struct ListFails;

    impl CloudStore for ListFails {
        fn name(&self) -> &str {
            "listfails"
        }
        fn upload(&self, _: &str, _: unidrive_util::bytes::Bytes) -> Result<(), CloudError> {
            Ok(())
        }
        fn download(&self, p: &str) -> Result<unidrive_util::bytes::Bytes, CloudError> {
            Err(CloudError::not_found(p))
        }
        fn create_dir(&self, _: &str) -> Result<(), CloudError> {
            Ok(())
        }
        fn list(&self, p: &str) -> Result<Vec<ObjectInfo>, CloudError> {
            Err(CloudError::transient_op("flaky", crate::CloudOp::List, p))
        }
        fn delete(&self, _: &str) -> Result<(), CloudError> {
            Ok(())
        }
    }

    #[test]
    fn exists_default_impl_edge_cases() {
        use unidrive_util::bytes::Bytes;
        let c = MemCloud::new("m");
        c.upload("top.bin", Bytes::from_static(b"x")).unwrap();
        c.upload("dir/nested.bin", Bytes::from_static(b"y")).unwrap();
        // Plain hits at the root and nested.
        assert!(c.exists("top.bin").unwrap());
        assert!(c.exists("dir/nested.bin").unwrap());
        assert!(c.exists("dir").unwrap());
        // The root path itself: the five-op API can only probe a parent
        // listing, so the root — which has no parent entry — reports
        // absent rather than erroring.
        assert!(!c.exists("").unwrap());
        // Missing parent directory folds to "does not exist"…
        assert!(!c.exists("no/such/file").unwrap());
        assert!(!c.exists("dir/ghost").unwrap());
        // …but a *transient* listing failure must propagate, not be
        // mistaken for absence.
        let flaky = ListFails;
        let err = flaky.exists("dir/f").unwrap_err();
        assert!(err.is_retryable(), "{err}");
    }
}
