//! The *intuitive multi-cloud* baseline (paper §7.1): a file is chunked
//! into blocks and uniformly distributed into the local sync folders of
//! N native CCS apps, each of which syncs its share with its own logic.
//!
//! There is no redundancy: every part is needed, so the operation
//! completes only when the **slowest** cloud finishes — exactly the
//! degradation the paper observes for this design.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_cloud::{CloudError, CloudSet};
use unidrive_sim::{spawn, Runtime};

use crate::SingleCloudClient;

/// The intuitive multi-cloud: N native single-cloud clients, one file
/// part each.
pub struct IntuitiveMultiCloud {
    rt: Arc<dyn Runtime>,
    natives: Vec<Arc<SingleCloudClient>>,
    manifest: Mutex<HashMap<String, u64>>,
}

impl std::fmt::Debug for IntuitiveMultiCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntuitiveMultiCloud")
            .field("clouds", &self.natives.len())
            .finish()
    }
}

impl IntuitiveMultiCloud {
    /// Creates the baseline over `clouds` with `connections` per native
    /// app.
    pub fn new(rt: Arc<dyn Runtime>, clouds: &CloudSet, connections: usize) -> Self {
        let natives = clouds
            .iter()
            .map(|(_, c)| Arc::new(SingleCloudClient::new(Arc::clone(&rt), Arc::clone(c), connections)))
            .collect();
        IntuitiveMultiCloud {
            rt,
            natives,
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// Splits `data` into N equal parts and uploads part `i` through the
    /// native client of cloud `i`, in parallel. Completes when every
    /// cloud finishes.
    ///
    /// # Errors
    ///
    /// The first native client failure.
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let t0 = self.rt.now();
        let n = self.natives.len();
        let part_len = data.len().div_ceil(n).max(1);
        let mut tasks = Vec::new();
        for (i, native) in self.natives.iter().enumerate() {
            let start = (i * part_len).min(data.len());
            let end = ((i + 1) * part_len).min(data.len());
            let part = data.slice(start..end);
            let native = Arc::clone(native);
            let name = format!("{name}.part{i}");
            tasks.push(spawn(&self.rt, &format!("intuitive-{i}"), move || {
                native.upload(&name, part)
            }));
        }
        for t in tasks {
            t.join()?;
        }
        self.manifest
            .lock()
            .insert(name.to_owned(), data.len() as u64);
        Ok(self.rt.now().saturating_duration_since(t0))
    }

    /// Registers `name` as already uploaded without moving traffic (the
    /// sink side of the native apps' change notifications).
    pub fn assume_uploaded(&self, name: &str, len: u64) {
        let n = self.natives.len();
        let part_len = (len as usize).div_ceil(n).max(1);
        for (i, native) in self.natives.iter().enumerate() {
            let start = (i * part_len).min(len as usize);
            let end = ((i + 1) * part_len).min(len as usize);
            native.assume_uploaded(&format!("{name}.part{i}"), (end - start) as u64);
        }
        self.manifest.lock().insert(name.to_owned(), len);
    }

    /// Downloads all N parts in parallel; needs *every* cloud.
    ///
    /// # Errors
    ///
    /// The first native client failure (there is no redundancy).
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        if !self.manifest.lock().contains_key(name) {
            return Err(CloudError::not_found(name));
        }
        let t0 = self.rt.now();
        let mut tasks = Vec::new();
        for (i, native) in self.natives.iter().enumerate() {
            let native = Arc::clone(native);
            let name = format!("{name}.part{i}");
            tasks.push(spawn(&self.rt, &format!("intuitive-dl-{i}"), move || {
                native.download(&name).map(|(_, d)| d)
            }));
        }
        let mut out = Vec::new();
        for t in tasks {
            out.extend_from_slice(&t.join()?);
        }
        Ok((self.rt.now().saturating_duration_since(t0), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_sim::SimRuntime;

    fn set(sim: &Arc<SimRuntime>, rates: &[f64]) -> (CloudSet, Vec<Arc<SimCloud>>) {
        let mut handles = Vec::new();
        let members = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let c = Arc::new(SimCloud::new(
                    sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(r, r * 5.0),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        (CloudSet::new(members), handles)
    }

    #[test]
    fn round_trip_preserves_content() {
        let sim = SimRuntime::new(1);
        let (clouds, _) = set(&sim, &[1e6; 5]);
        let client = IntuitiveMultiCloud::new(sim.clone().as_runtime(), &clouds, 2);
        let data = Bytes::from((0..3_000_000u32).map(|i| i as u8).collect::<Vec<_>>());
        client.upload("f", data.clone()).unwrap();
        let (_, restored) = client.download("f").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn completion_dominated_by_slowest_cloud() {
        let sim = SimRuntime::new(2);
        // 4 fast clouds, one 10x slower.
        let (clouds, _) = set(&sim, &[10e6, 10e6, 10e6, 10e6, 1e6]);
        let client = IntuitiveMultiCloud::new(sim.clone().as_runtime(), &clouds, 2);
        let data = Bytes::from(vec![1u8; 10_000_000]);
        let took = client.upload("f", data).unwrap();
        // Each part is 2 MB over 2 connections; the slow cloud at
        // 1 MB/s per-connection (5 MB/s aggregate) needs ~1 s while the
        // fast clouds need ~0.1 s: the slow tail dominates.
        assert!(took.as_secs_f64() > 0.8, "took {took:?}");
    }

    #[test]
    fn any_outage_breaks_download() {
        let sim = SimRuntime::new(3);
        let (clouds, handles) = set(&sim, &[1e6; 5]);
        let client = IntuitiveMultiCloud::new(sim.clone().as_runtime(), &clouds, 2);
        client
            .upload("f", Bytes::from(vec![2u8; 1_000_000]))
            .unwrap();
        handles[3].set_available(false);
        assert!(client.download("f").is_err(), "no redundancy: must fail");
    }
}
