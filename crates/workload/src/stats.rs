//! Summary statistics used across the evaluation harness: mean/min/max
//! (Figs. 1, 8, 11), variance (Table 2), and Pearson correlation
//! (Table 1, the up/down correlation remark in §3.2).

/// Summary of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population variance.
    pub variance: f64,
}

impl Summary {
    /// Summarizes `values`; returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            count,
            mean,
            min,
            max,
            variance,
        })
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// `max / min` — the fluctuation factor quoted throughout §3.2.
    pub fn max_over_min(&self) -> f64 {
        if self.min > 0.0 {
            self.max / self.min
        } else {
            f64::INFINITY
        }
    }
}

/// Pearson correlation coefficient of two equally long samples.
///
/// Returns `None` if the samples are empty, differ in length, or either
/// has zero variance.
///
/// # Examples
///
/// ```
/// use unidrive_workload::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let up = [2.0, 4.0, 6.0, 8.0];
/// let down = [8.0, 6.0, 4.0, 2.0];
/// assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
/// assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a).powi(2);
        var_b += (y - mean_b).powi(2);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return None;
    }
    Some(cov / (var_a.sqrt() * var_b.sqrt()))
}

/// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank; `None` on empty input.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round()) as usize;
    Some(sorted[rank])
}

/// Formats a table with aligned columns for the bench binaries' stdout.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(
            self.rows.iter().map(|r| r.len()).max().unwrap_or(0),
        );
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut Vec<usize>| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for r in &self.rows {
            measure(r, &mut widths);
        }
        let fmt_row = |row: &[String]| {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{cell:width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.max_over_min(), 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn pearson_of_independent_noise_is_small() {
        let mut rng = unidrive_sim::SimRng::seed_from_u64(1);
        let a: Vec<f64> = (0..5000).map(|_| rng.next_f64()).collect();
        let b: Vec<f64> = (0..5000).map(|_| rng.next_f64()).collect();
        let r = pearson(&a, &b).unwrap();
        assert!(r.abs() < 0.05, "r = {r}");
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    fn quantiles() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["site", "mean", "max"]);
        t.row(vec!["Princeton".into(), "1.5".into(), "12.0".into()]);
        t.row(vec!["LA".into(), "2.25".into(), "7".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("site"));
        assert!(lines[2].starts_with("Princeton"));
    }
}
