//! # unidrive-erasure
//!
//! From-scratch GF(2⁸) Reed-Solomon erasure coding for UniDrive
//! (Middleware 2015, §6.1).
//!
//! * [`gf256`] — field arithmetic with compile-time log/exp tables.
//! * [`Matrix`] — dense GF(2⁸) matrices (Vandermonde, inversion).
//! * [`Codec`] — `(n, k)` Reed-Solomon, non-systematic by default so
//!   stored blocks carry no plaintext semantics; blocks are generated
//!   lazily by index for over-provisioning.
//! * [`RedundancyConfig`] — the paper's (N, k, K_r, K_s) parameter
//!   algebra: fair shares, per-cloud caps, over-provisioning budgets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod gf256;
mod matrix;
mod rs;

pub use config::{ConfigError, RedundancyConfig};
pub use matrix::Matrix;
pub use rs::{Codec, CodecError};
