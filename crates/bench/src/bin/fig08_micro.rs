//! **Figure 8** — the micro-benchmark (§7.2): average (min/max) time to
//! upload and download a large file on the 7 EC2 sites, comparing
//! UniDrive against each native CCS app and the multi-cloud benchmark.
//!
//! Shape targets: UniDrive beats the *fastest* CCS at every site
//! (paper: 2.64× upload, 1.49× download on average), beats the
//! benchmark by ~1.5×, and has the smallest min-max spread.

use std::time::Duration;

use unidrive_bench::{meta_mode_from_args, metrics_out, systems_at_observed, ExperimentScale};
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{random_bytes, Summary, TextTable, EC2_SITES};

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = metrics_out::from_args();
    // Accepted for uniform drivability from run_all: fig08 measures the
    // raw data plane (no metadata commits), so the mode only selects
    // the echo — the transfer numbers are identical under both planes.
    let meta_mode = meta_mode_from_args();
    let size = scale.large_file;
    let data = random_bytes(size, 8);
    println!(
        "Figure 8: {} MB transfer seconds, avg (min-max), {} repeats per site (meta-mode {meta_mode}; data plane only)\n",
        size / (1024 * 1024),
        scale.repeats
    );

    let headers = [
        "site", "UniDrive", "Benchmark", "Intuitive", "Dropbox", "OneDrive", "GoogleDrive",
        "BaiduPCS", "DBank",
    ];
    let mut up_table = TextTable::new(&headers);
    let mut down_table = TextTable::new(&headers);
    let mut up_speedups = Vec::new();
    let mut down_speedups = Vec::new();
    let mut bench_speedups = Vec::new();

    for site in EC2_SITES {
        let sim = SimRuntime::new(0x0808 + site.name.len() as u64 * 131);
        // Virtual-time clock for the windowed series (--series-out).
        sim.install_obs(metrics.obs.clone());
        let sys = systems_at_observed(&sim, site, scale.theta, &metrics.obs);
        let mut up: Vec<Vec<f64>> = vec![Vec::new(); 8];
        let mut down: Vec<Vec<f64>> = vec![Vec::new(); 8];
        for rep in 0..scale.repeats {
            let name = format!("micro-{rep}");
            // Back-to-back transfers under identical (fluctuating)
            // conditions, as in the paper's methodology.
            if let Ok(d) = sys.unidrive.upload(&name, data.clone()) {
                up[0].push(d.as_secs_f64());
            }
            if let Ok((d, _)) = sys.unidrive.download(&name) {
                down[0].push(d.as_secs_f64());
            }
            if let Ok(d) = sys.benchmark.upload(&name, data.clone()) {
                up[1].push(d.as_secs_f64());
            }
            if let Ok((d, _)) = sys.benchmark.download(&name) {
                down[1].push(d.as_secs_f64());
            }
            if let Ok(d) = sys.intuitive.upload(&name, data.clone()) {
                up[2].push(d.as_secs_f64());
            }
            if let Ok((d, _)) = sys.intuitive.download(&name) {
                down[2].push(d.as_secs_f64());
            }
            for (i, (_, native)) in sys.natives.iter().enumerate() {
                if let Ok(d) = native.upload(&name, data.clone()) {
                    up[3 + i].push(d.as_secs_f64());
                }
                if let Ok((d, _)) = native.download(&name) {
                    down[3 + i].push(d.as_secs_f64());
                }
            }
            sim.sleep(Duration::from_secs(3600));
        }

        let fmt = |v: &[f64]| match Summary::of(v) {
            Some(s) => format!("{:.1} ({:.1}-{:.1})", s.mean, s.min, s.max),
            None => "fail".into(),
        };
        let mut up_cells = vec![site.name.to_owned()];
        let mut down_cells = vec![site.name.to_owned()];
        for i in 0..8 {
            up_cells.push(fmt(&up[i]));
            down_cells.push(fmt(&down[i]));
        }
        up_table.row(up_cells);
        down_table.row(down_cells);

        // Speedup of UniDrive over the fastest native CCS at this site.
        let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean);
        let best_native_up = (3..8).filter_map(|i| mean(&up[i])).fold(f64::MAX, f64::min);
        let best_native_down = (3..8)
            .filter_map(|i| mean(&down[i]))
            .fold(f64::MAX, f64::min);
        if let Some(u) = mean(&up[0]) {
            up_speedups.push(best_native_up / u);
            if let Some(b) = mean(&up[1]) {
                bench_speedups.push(b / u);
            }
        }
        if let Some(d) = mean(&down[0]) {
            down_speedups.push(best_native_down / d);
        }
    }

    println!("UPLOAD (seconds)\n{}", up_table.render());
    println!("DOWNLOAD (seconds)\n{}", down_table.render());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "UniDrive vs fastest CCS per site:   upload {:.2}x, download {:.2}x  (paper: 2.64x / 1.49x)",
        avg(&up_speedups),
        avg(&down_speedups)
    );
    println!(
        "UniDrive vs multi-cloud benchmark:  upload {:.2}x              (paper: ~1.5x)",
        avg(&bench_speedups)
    );
    if let Some(path) = metrics.write() {
        println!("metrics snapshot written to {path}");
    }
}
