//! End-to-end integration tests for the gear-hash ingest path: full
//! two-device sync through five simulated clouds with
//! `ChunkerKind::Gear` and a multi-thread ingest pool, plus
//! cross-kind interop (the chunker kind is a per-device ingest choice;
//! blocks on the clouds are kind-agnostic).

use std::sync::Arc;
use std::time::Duration;

use unidrive::chunker::ChunkerKind;
use unidrive::cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive::core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::{SimRng, SimRuntime};

struct Rig {
    sim: Arc<SimRuntime>,
    clouds: CloudSet,
    handles: Vec<Arc<SimCloud>>,
}

fn rig(seed: u64) -> Rig {
    let sim = SimRuntime::new(seed);
    let mut handles = Vec::new();
    let members = (0..5)
        .map(|i| {
            let c = Arc::new(SimCloud::new(
                &sim,
                format!("cloud{i}"),
                SimCloudConfig::steady(2e6, 8e6),
            ));
            handles.push(Arc::clone(&c));
            c as Arc<dyn CloudStore>
        })
        .collect();
    Rig {
        sim,
        clouds: CloudSet::new(members),
        handles,
    }
}

fn client(
    rig: &Rig,
    device: &str,
    folder: &Arc<MemFolder>,
    seed: u64,
    kind: ChunkerKind,
    ingest_threads: usize,
) -> UniDriveClient {
    let mut config = ClientConfig::paper_default(device);
    config.data =
        DataPlaneConfig::with_params(RedundancyConfig::new(5, 3, 3, 2).unwrap(), 64 * 1024);
    config.data.chunker = config.data.chunker.with_kind(kind);
    config.data.ingest_threads = ingest_threads;
    config.poll_interval = Duration::from_secs(5);
    UniDriveClient::new(
        rig.sim.clone().as_runtime(),
        rig.clouds.clone(),
        Arc::clone(folder) as Arc<dyn SyncFolder>,
        config,
        SimRng::seed_from_u64(seed),
    )
}

fn content(len: usize, tag: u8) -> Vec<u8> {
    // Varied bytes so both hashes find content-defined cuts.
    let mut state = tag as u64 | 0x100;
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 | 1);
            (state >> 33) as u8
        })
        .collect()
}

#[test]
fn gear_clients_round_trip_with_parallel_ingest() {
    let r = rig(301);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 1, ChunkerKind::Gear, 4);
    let mut b = client(&r, "device-b", &folder_b, 2, ChunkerKind::Gear, 2);

    // Several segments' worth so the cut-point path matters.
    let data = content(500_000, 3);
    folder_a.write("big/asset.bin", &data, 100).unwrap();

    let up = a.sync_once().expect("A commits with gear chunking");
    assert_eq!(up.uploaded, vec!["big/asset.bin"]);

    let down = b.sync_once().expect("B pulls");
    assert_eq!(down.downloaded, vec!["big/asset.bin"]);
    assert_eq!(folder_b.read("big/asset.bin").unwrap().to_vec(), data);

    // Edits round-trip too, and dedup still works within the kind: an
    // identical copy under a new name must be metadata-only traffic.
    let traffic_before: u64 = r.handles.iter().map(|h| h.traffic().uploaded_bytes).sum();
    folder_a.write("big/copy.bin", &data, 200).unwrap();
    a.sync_once().unwrap();
    let traffic_after: u64 = r.handles.iter().map(|h| h.traffic().uploaded_bytes).sum();
    assert!(
        traffic_after - traffic_before < 100_000,
        "gear-kind dedup failed: copy moved {} bytes",
        traffic_after - traffic_before
    );
    b.sync_once().unwrap();
    assert_eq!(folder_b.read("big/copy.bin").unwrap().to_vec(), data);
}

#[test]
fn mixed_kind_devices_interoperate() {
    // Chunker kind is a local ingest decision: a gear device and a
    // rabin device share one folder and see each other's files intact
    // (segment ids are content hashes of whatever cuts the writer
    // chose; readers never re-chunk).
    let r = rig(302);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 11, ChunkerKind::Gear, 2);
    let mut b = client(&r, "device-b", &folder_b, 12, ChunkerKind::Rabin, 1);

    let from_a = content(300_000, 5);
    folder_a.write("from-gear.bin", &from_a, 1).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();
    assert_eq!(folder_b.read("from-gear.bin").unwrap().to_vec(), from_a);

    let from_b = content(250_000, 6);
    folder_b.write("from-rabin.bin", &from_b, 2).unwrap();
    b.sync_once().unwrap();
    a.sync_once().unwrap();
    assert_eq!(folder_a.read("from-rabin.bin").unwrap().to_vec(), from_b);

    // An edit by the other kind replaces the file cleanly.
    let edited = content(320_000, 7);
    folder_b.write("from-gear.bin", &edited, 3).unwrap();
    b.sync_once().unwrap();
    let rep = a.sync_once().unwrap();
    assert_eq!(rep.downloaded, vec!["from-gear.bin"]);
    assert_eq!(folder_a.read("from-gear.bin").unwrap().to_vec(), edited);
}

#[test]
fn gear_sync_survives_two_cloud_outage() {
    let r = rig(303);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "device-a", &folder_a, 21, ChunkerKind::Gear, 4);
    let mut b = client(&r, "device-b", &folder_b, 22, ChunkerKind::Gear, 4);

    let data = content(200_000, 9);
    folder_a.write("x.bin", &data, 1).unwrap();
    a.sync_once().unwrap();

    // K_r = 3 of 5: gear-cut blocks obey the same redundancy contract.
    r.handles[0].set_available(false);
    r.handles[3].set_available(false);

    let rep = b.sync_once().expect("B syncs despite two outages");
    assert_eq!(rep.downloaded, vec!["x.bin"]);
    assert_eq!(folder_b.read("x.bin").unwrap().to_vec(), data);
}
