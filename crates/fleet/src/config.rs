//! Fleet run configuration and presets.

use std::time::Duration;

use unidrive_cloud::{CloudOp, FaultEvent, FaultKind, FaultPlan};
use unidrive_meta::MetaMode;
use unidrive_workload::{PopulationProfile, Provider};

/// Quorum-lock parameters as the fleet model sees them (the analytic
/// mirror of `unidrive_core::LockConfig`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLockParams {
    /// Losing rounds before a sync round is deferred.
    pub max_attempts: u32,
    /// Base of the random backoff between losing rounds.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Wait beyond which an acquire is flagged starved
    /// (`lock.starved`), mirroring `LockConfig::starvation_audit`.
    pub starvation_audit: Duration,
}

impl Default for FleetLockParams {
    fn default() -> Self {
        FleetLockParams {
            max_attempts: 12,
            backoff_base: Duration::from_millis(500),
            backoff_max: Duration::from_secs(15),
            starvation_audit: Duration::from_secs(30),
        }
    }
}

/// Configuration of one fleet simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Seed deriving every random stream in the run.
    pub seed: u64,
    /// Device population size.
    pub devices: u32,
    /// Shard count for the parallel phase. Metrics are invariant to
    /// this — shards are a pure work partition.
    pub shards: usize,
    /// Worker threads for the shard fan-out (0 = pool auto-size).
    /// Like `shards`, has no effect on results.
    pub threads: usize,
    /// Arrival horizon: no new sessions start after this much virtual
    /// time. In-flight sessions drain to completion afterwards.
    pub horizon: Duration,
    /// Population behavior model.
    pub profile: PopulationProfile,
    /// Number of shared hot folders contended across the fleet.
    pub hot_folders: u32,
    /// Per-cloud sustained request-rate ceiling, ops/s.
    pub cloud_qps: u64,
    /// Per-cloud burst allowance, ops.
    pub cloud_burst: u64,
    /// Lock protocol parameters.
    pub lock: FleetLockParams,
    /// Metadata-plane mode for hot-folder commits: `Lock` contends a
    /// quorum lock per commit; `Oplog` appends per-device op files and
    /// locks only for periodic base compaction.
    pub meta_mode: MetaMode,
    /// Scheduled fault plan evaluated analytically against every
    /// device's cloud operations.
    pub fault_plan: FaultPlan,
}

impl FleetConfig {
    /// The `--quick` CI preset: ≈10k devices, 10 virtual minutes.
    pub fn quick(seed: u64) -> FleetConfig {
        FleetConfig {
            seed,
            devices: 10_000,
            shards: 8,
            threads: 0,
            horizon: Duration::from_secs(600),
            profile: PopulationProfile::consumer(),
            hot_folders: 50,
            cloud_qps: 1_500,
            cloud_burst: 3_000,
            lock: FleetLockParams::default(),
            meta_mode: MetaMode::Lock,
            fault_plan: default_chaos_plan(seed, 600),
        }
    }

    /// The full acceptance run: 100k devices, 30 virtual minutes,
    /// five clouds, chaos enabled.
    pub fn full(seed: u64) -> FleetConfig {
        FleetConfig {
            seed,
            devices: 100_000,
            shards: 8,
            threads: 0,
            horizon: Duration::from_secs(1_800),
            profile: PopulationProfile::consumer(),
            hot_folders: 200,
            cloud_qps: 4_000,
            cloud_burst: 8_000,
            lock: FleetLockParams::default(),
            meta_mode: MetaMode::Lock,
            fault_plan: default_chaos_plan(seed, 1_800),
        }
    }

    /// Horizon in virtual nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.horizon.as_nanos() as u64
    }
}

/// The standard fleet chaos schedule, scaled to `horizon_secs`: one
/// provider outage, a transient burst, a latency spike, a quota
/// window, a torn-upload window, and a delayed-visibility window —
/// every [`FaultKind`] exercised, all windows closed well before the
/// horizon so the fleet can drain and converge.
pub fn default_chaos_plan(seed: u64, horizon_secs: u64) -> FaultPlan {
    let h = horizon_secs.max(60);
    let secs = |s: u64| s * 1_000_000_000;
    let mut plan = FaultPlan::new(seed);
    let names: Vec<&str> = Provider::ALL.iter().map(|p| p.name()).collect();
    plan.push(FaultEvent {
        cloud: names[4].to_owned(), // the weakest provider goes dark
        ops: Vec::new(),
        start_ns: secs(h / 6),
        end_ns: secs(h / 3),
        kind: FaultKind::Outage,
    });
    plan.push(FaultEvent {
        cloud: names[1].to_owned(),
        ops: Vec::new(),
        start_ns: secs(h / 4),
        end_ns: secs(h / 2),
        kind: FaultKind::TransientBurst { probability: 0.25 },
    });
    plan.push(FaultEvent {
        cloud: names[2].to_owned(),
        ops: Vec::new(),
        start_ns: secs(h / 3),
        end_ns: secs(2 * h / 3),
        kind: FaultKind::LatencySpike { extra_ms: 400 },
    });
    plan.push(FaultEvent {
        cloud: names[3].to_owned(),
        ops: vec![CloudOp::Upload],
        start_ns: secs(h / 2),
        end_ns: secs(2 * h / 3),
        kind: FaultKind::QuotaExhausted,
    });
    plan.push(FaultEvent {
        cloud: names[0].to_owned(),
        ops: vec![CloudOp::Upload],
        start_ns: secs(h / 5),
        end_ns: secs(2 * h / 5),
        kind: FaultKind::TornUpload { probability: 0.15 },
    });
    plan.push(FaultEvent {
        cloud: names[1].to_owned(),
        ops: Vec::new(),
        start_ns: secs(3 * h / 5),
        end_ns: secs(4 * h / 5),
        kind: FaultKind::DelayedVisibility,
    });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let q = FleetConfig::quick(1);
        assert_eq!(q.devices, 10_000);
        assert!(q.shards >= 1 && q.hot_folders >= 1);
        let f = FleetConfig::full(1);
        assert_eq!(f.devices, 100_000);
        assert_eq!(f.horizon_ns(), 1_800 * 1_000_000_000);
    }

    #[test]
    fn chaos_plan_covers_all_kinds_and_closes_before_horizon() {
        let plan = default_chaos_plan(7, 600);
        assert_eq!(plan.events.len(), 6);
        let horizon_ns = 600 * 1_000_000_000;
        for ev in &plan.events {
            assert!(ev.end_ns <= horizon_ns, "window past horizon");
            assert!(ev.start_ns < ev.end_ns);
        }
        let kinds: std::collections::HashSet<&str> = plan
            .events
            .iter()
            .map(|e| e.kind.label())
            .collect();
        assert_eq!(kinds.len(), 6, "every FaultKind exercised");
    }
}
