//! Real-bytes demo: the full UniDrive stack — content-defined chunking,
//! non-systematic Reed-Solomon, DES-encrypted metadata, quorum locking —
//! running under **wall-clock time** with five local directories acting
//! as the clouds (throttled to cloud-like speeds).
//!
//! ```sh
//! cargo run --example real_directories
//! ```
//!
//! Afterwards, inspect `/tmp/unidrive-demo/clouds/*` to see the lock
//! directory, the encrypted `meta.*` files, and the opaque parity
//! blocks: no single "cloud" directory contains reconstructable data.

use std::sync::Arc;
use std::time::Duration;

use unidrive::cloud::{CloudSet, CloudStore, LocalDirCloud, ThrottledCloud};
use unidrive::core::{
    ClientConfig, DataPlaneConfig, DirFolder, SyncFolder, UniDriveClient,
};
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::{RealRuntime, Runtime, SimRng};

fn main() {
    let base = std::env::temp_dir().join("unidrive-demo");
    let _ = std::fs::remove_dir_all(&base);
    let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());

    // Five "clouds": throttled local directories (2-10 MB/s).
    let rates = [10e6, 8e6, 6e6, 4e6, 2e6];
    let clouds = CloudSet::new(
        rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| {
                let dir = LocalDirCloud::create(
                    format!("cloud-{i}"),
                    base.join(format!("clouds/cloud-{i}")),
                )
                .expect("create cloud dir");
                Arc::new(ThrottledCloud::new(Arc::new(dir), Arc::clone(&rt), rate))
                    as Arc<dyn CloudStore>
            })
            .collect(),
    );

    // Two real directories as the devices' sync folders.
    let folder_a = DirFolder::create(base.join("device-a")).expect("folder a");
    let folder_b = DirFolder::create(base.join("device-b")).expect("folder b");

    let config = |device: &str| {
        let mut c = ClientConfig::paper_default(device);
        c.passphrase = "correct horse battery staple".into();
        c.data = DataPlaneConfig::with_params(
            RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
            512 * 1024,
        );
        c
    };
    let mut a = UniDriveClient::new(
        Arc::clone(&rt),
        clouds.clone(),
        folder_a.clone() as Arc<dyn SyncFolder>,
        config("device-a"),
        SimRng::seed_from_u64(1),
    );
    let mut b = UniDriveClient::new(
        Arc::clone(&rt),
        clouds.clone(),
        folder_b.clone() as Arc<dyn SyncFolder>,
        config("device-b"),
        SimRng::seed_from_u64(2),
    );

    // Write a real 3 MB file on device A.
    let payload: Vec<u8> = (0..3_000_000u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 256) as u8)
        .collect();
    folder_a.write("media/clip.bin", &payload, 0).expect("write");

    let t = std::time::Instant::now();
    let up = a.sync_once().expect("A sync");
    println!("A uploaded {:?} in {:.2?}", up.uploaded, t.elapsed());

    let t = std::time::Instant::now();
    let down = b.sync_once().expect("B sync");
    println!("B downloaded {:?} in {:.2?}", down.downloaded, t.elapsed());

    let restored = folder_b.read("media/clip.bin").expect("restored");
    assert_eq!(restored.to_vec(), payload);
    println!("contents verified identical on both devices");

    // Show what a cloud actually stores: opaque parity blocks + encrypted
    // metadata. Nothing plaintext.
    let sample = base.join("clouds/cloud-0/unidrive");
    println!("\ncloud-0 stores under {}:", sample.display());
    for entry in std::fs::read_dir(&sample).expect("listing") {
        let entry = entry.expect("entry");
        println!("  {}", entry.file_name().to_string_lossy());
    }
    let meta = std::fs::read(sample.join("meta.base")).expect("meta file");
    assert!(
        !meta.windows(8).any(|w| w == b"clip.bin"),
        "metadata must be encrypted"
    );
    println!("metadata is DES-encrypted (file names not visible in the blob)");

    // Idle pass: nothing to do.
    rt.sleep(Duration::from_millis(50));
    assert!(a.sync_once().expect("idle").is_noop());
}
