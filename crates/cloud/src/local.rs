//! [`LocalDirCloud`]: a cloud backed by a directory on the local
//! filesystem.
//!
//! Lets the examples and integration tests run the full UniDrive stack —
//! chunking, erasure coding, quorum locking, scheduling — against real
//! bytes on disk, with each "cloud" being a separate directory. Combine
//! with [`ThrottledCloud`](crate::ThrottledCloud) to emulate bandwidth
//! limits under wall-clock time.

use std::fs;
use std::path::{Path, PathBuf};

use unidrive_util::bytes::Bytes;

use crate::{validate_path, CloudError, CloudStore, ObjectInfo};

/// A cloud whose objects are files under a root directory.
///
/// Uploads are atomic (write to a temp file, then rename) so a crashed
/// client never leaves a half-written object visible — matching the
/// read-after-write contract of the trait.
///
/// # Examples
///
/// ```no_run
/// use unidrive_cloud::{CloudStore, LocalDirCloud};
/// use unidrive_util::bytes::Bytes;
///
/// # fn main() -> Result<(), unidrive_cloud::CloudError> {
/// let cloud = LocalDirCloud::create("my-drive", "/tmp/clouds/drive-a")?;
/// cloud.upload("notes.txt", Bytes::from_static(b"hi"))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LocalDirCloud {
    name: String,
    root: PathBuf,
}

impl LocalDirCloud {
    /// Opens (and creates if necessary) the root directory.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Io`] if the directory cannot be created.
    pub fn create(name: impl Into<String>, root: impl AsRef<Path>) -> Result<Self, CloudError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(LocalDirCloud {
            name: name.into(),
            root,
        })
    }

    /// The root directory backing this cloud.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Resolves a directory path; the empty string is the root.
    fn resolve(&self, path: &str) -> Result<PathBuf, CloudError> {
        if path.is_empty() {
            return Ok(self.root.clone());
        }
        validate_path(path)?;
        Ok(self.root.join(path))
    }

    /// Resolves an object path; the empty string (the root) is not a
    /// valid object and is rejected like any other malformed path.
    fn resolve_object(&self, path: &str) -> Result<PathBuf, CloudError> {
        validate_path(path)?;
        Ok(self.root.join(path))
    }
}

impl CloudStore for LocalDirCloud {
    fn name(&self) -> &str {
        &self.name
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let full = self.resolve_object(path)?;
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        // The temp name must append (never replace) the object name:
        // blocks `<hash>.0` and `<hash>.5` are distinct objects and may
        // upload concurrently, so `with_extension` would collide them on
        // one temp file and interleave their bytes. A per-process counter
        // keeps concurrent uploads of even the *same* object distinct.
        let unique = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp_name = full
            .file_name()
            .expect("validated path has a file name")
            .to_os_string();
        tmp_name.push(format!(".{unique}.part.tmp"));
        let tmp = full.with_file_name(tmp_name);
        fs::write(&tmp, &data)?;
        fs::rename(&tmp, &full)?;
        Ok(())
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let full = self.resolve_object(path)?;
        match fs::read(&full) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(CloudError::not_found(path))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        let full = self.resolve(path)?;
        fs::create_dir_all(full)?;
        Ok(())
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        let full = self.resolve(path)?;
        let rd = match fs::read_dir(&full) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CloudError::not_found(path))
            }
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry?;
            let meta = entry.metadata()?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".part.tmp") {
                continue; // in-flight atomic upload
            }
            out.push(ObjectInfo {
                name,
                size: if meta.is_dir() { 0 } else { meta.len() },
                is_dir: meta.is_dir(),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        let full = self.resolve_object(path)?;
        match fs::metadata(&full) {
            Ok(m) if m.is_dir() => {
                fs::remove_dir_all(&full)?;
                Ok(())
            }
            Ok(_) => {
                fs::remove_file(&full)?;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(CloudError::not_found(path))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn caps(&self) -> crate::CloudCaps {
        crate::CloudCaps {
            // Appends are the default download + atomic-rename upload:
            // no in-place extension, so not native.
            native_append: false,
            // Local filesystem reads see completed renames immediately.
            read_after_write: true,
            max_object_bytes: None,
            supports_conditional_put: false,
            // The filesystem reports ENOENT for absent files and dirs.
            strict_not_found: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cloud(tag: &str) -> LocalDirCloud {
        let dir = std::env::temp_dir().join(format!(
            "unidrive-localcloud-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        LocalDirCloud::create("local", dir).unwrap()
    }

    #[test]
    fn round_trip_on_disk() {
        let c = tmp_cloud("rt");
        c.upload("a/b.bin", Bytes::from(vec![9u8; 64])).unwrap();
        assert_eq!(c.download("a/b.bin").unwrap().len(), 64);
        let entries = c.list("a").unwrap();
        assert_eq!(entries[0].name, "b.bin");
        assert_eq!(entries[0].size, 64);
    }

    #[test]
    fn delete_file_and_directory() {
        let c = tmp_cloud("del");
        c.upload("d/x", Bytes::new()).unwrap();
        c.upload("d/y", Bytes::new()).unwrap();
        c.delete("d/x").unwrap();
        assert!(!c.exists("d/x").unwrap());
        c.delete("d").unwrap();
        assert!(matches!(
            c.list("d").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn missing_object_is_not_found() {
        let c = tmp_cloud("nf");
        assert!(matches!(
            c.download("ghost").unwrap_err(),
            CloudError::NotFound { .. }
        ));
        assert!(matches!(
            c.delete("ghost").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn traversal_is_rejected() {
        let c = tmp_cloud("trav");
        assert!(matches!(
            c.download("../etc/passwd").unwrap_err(),
            CloudError::InvalidPath { .. }
        ));
    }

    #[test]
    fn concurrent_uploads_of_sibling_blocks_do_not_corrupt() {
        // Regression: blocks `<hash>.0` and `<hash>.5` used to collide on
        // one temp file when uploaded concurrently, interleaving bytes.
        use std::sync::Arc;
        let c = Arc::new(tmp_cloud("race"));
        for round in 0..20 {
            let handles: Vec<_> = (0..4u8)
                .map(|i| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let data = Bytes::from(vec![i; 50_000]);
                        c.upload(&format!("blocks/seg{round}.{i}"), data).unwrap();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            for i in 0..4u8 {
                let data = c.download(&format!("blocks/seg{round}.{i}")).unwrap();
                assert!(
                    data.iter().all(|&b| b == i),
                    "round {round} block {i} corrupted"
                );
            }
        }
    }

    #[test]
    fn temp_files_are_hidden_from_listing() {
        let c = tmp_cloud("tmpf");
        c.upload("real", Bytes::new()).unwrap();
        fs::write(c.root().join("ghost.part.tmp"), b"x").unwrap();
        let names: Vec<_> = c.list("").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["real"]);
    }
}
