//! **Figure 1** — spatial dimension of the measurement study (§3.2):
//! average/min/max time to upload and download an 8 MB file to each of
//! the five CCSs from the 13 globally distributed sites, probing
//! periodically for a simulated month.
//!
//! Shape targets from the paper: per-cloud times vary strongly across
//! sites; no cloud wins everywhere; upload and download performance are
//! positively but weakly correlated (~0.4).

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::SingleCloudClient;
use unidrive_bench::ExperimentScale;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{
    build_cloud, pearson, random_bytes, Provider, Summary, TextTable, PLANETLAB_SITES,
};

fn seed_of(site: &str, provider: Provider) -> u64 {
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in site.bytes().chain([provider as u8]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let scale = ExperimentScale::from_args();
    let days: u64 = if scale.repeats >= 5 { 30 } else { 7 };
    let probes_per_day: u64 = 8; // every 3 virtual hours
    let file_size = 8 * 1024 * 1024;
    let data = random_bytes(file_size, 1);

    println!("Figure 1: avg (min-max) seconds to transfer 8 MB, {days} simulated days\n");
    let headers = ["site", "Dropbox", "OneDrive", "GoogleDrive", "BaiduPCS", "DBank"];
    let mut up_table = TextTable::new(&headers);
    let mut down_table = TextTable::new(&headers);
    let mut up_means = Vec::new();
    let mut down_means = Vec::new();
    let mut winners = std::collections::HashSet::new();

    for site in PLANETLAB_SITES {
        let mut up_cells = vec![site.name.to_owned()];
        let mut down_cells = vec![site.name.to_owned()];
        let mut site_up_means = Vec::new();
        for provider in Provider::ALL {
            let sim = SimRuntime::new(seed_of(site.name, provider));
            let cloud = build_cloud(&sim, site, provider);
            let client =
                SingleCloudClient::new(sim.clone().as_runtime(), Arc::clone(&cloud) as _, 5);
            let mut up_times = Vec::new();
            let mut down_times = Vec::new();
            for probe in 0..days * probes_per_day {
                if let Ok(d) = client.upload(&format!("probe-{probe}"), data.clone()) {
                    up_times.push(d.as_secs_f64());
                }
                if let Ok((d, _)) = client.download(&format!("probe-{probe}")) {
                    down_times.push(d.as_secs_f64());
                }
                // Clean up so storage does not grow unboundedly.
                let _ = cloud.is_available();
                sim.sleep(Duration::from_secs(86_400 / probes_per_day));
            }
            let up = Summary::of(&up_times);
            let down = Summary::of(&down_times);
            up_cells.push(match up {
                Some(s) => format!("{:.1} ({:.1}-{:.1})", s.mean, s.min, s.max),
                None => "-".into(),
            });
            down_cells.push(match down {
                Some(s) => format!("{:.1} ({:.1}-{:.1})", s.mean, s.min, s.max),
                None => "-".into(),
            });
            if let (Some(u), Some(d)) = (up, down) {
                up_means.push(u.mean);
                down_means.push(d.mean);
                site_up_means.push((provider, u.mean));
            }
        }
        if let Some((winner, _)) = site_up_means
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        {
            winners.insert(winner.name());
        }
        up_table.row(up_cells);
        down_table.row(down_cells);
    }

    println!("UPLOAD (seconds)\n{}", up_table.render());
    println!("DOWNLOAD (seconds)\n{}", down_table.render());

    // Paper: correlation between upload and download means ≈ 0.41.
    let corr = pearson(&up_means, &down_means).unwrap_or(f64::NAN);
    println!("upload/download mean-time correlation: {corr:.2} (paper: ~0.41 on speeds)");
    println!(
        "distinct fastest clouds across sites: {} (paper: no always-winner)",
        winners.len()
    );
    let spread = Summary::of(&up_means).expect("nonempty");
    println!(
        "cross-(site,cloud) mean upload spread: {:.0}x (paper: up to ~60x)",
        spread.max / spread.min
    );
}
