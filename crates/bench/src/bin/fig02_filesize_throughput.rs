//! **Figure 2** — impact of file size on throughput (§3.2, Princeton):
//! throughput grows with file size (request latency amortizes) and the
//! gain diminishes beyond ~4 MB.

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::SingleCloudClient;
use unidrive_bench::mbps;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{build_cloud, random_bytes, site_by_name, Provider, TextTable};

fn main() {
    let site = site_by_name("Princeton").expect("site exists");
    let sizes_kb: [usize; 6] = [128, 512, 1024, 2048, 4096, 8192];
    let repeats = 40;

    println!("Figure 2: mean throughput (Mbit/s) vs file size, Princeton\n");
    let mut table = TextTable::new(&["size", "Dropbox up", "Dropbox down", "OneDrive up", "OneDrive down"]);
    let mut last_up = Vec::new();
    let mut first_up = Vec::new();
    for &kb in &sizes_kb {
        let size = kb * 1024;
        let mut cells = vec![if kb >= 1024 {
            format!("{} MB", kb / 1024)
        } else {
            format!("{kb} KB")
        }];
        for provider in [Provider::Dropbox, Provider::OneDrive] {
            let sim = SimRuntime::new(2_000 + kb as u64 + provider as u64 * 7);
            let cloud = build_cloud(&sim, site, provider);
            let client =
                SingleCloudClient::new(sim.clone().as_runtime(), Arc::clone(&cloud) as _, 5);
            let data = random_bytes(size, kb as u64);
            let mut up = Vec::new();
            let mut down = Vec::new();
            for i in 0..repeats {
                if let Ok(d) = client.upload(&format!("f{i}"), data.clone()) {
                    up.push(mbps(size, d));
                }
                if let Ok((d, _)) = client.download(&format!("f{i}")) {
                    down.push(mbps(size, d));
                }
                sim.sleep(Duration::from_secs(600));
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            cells.push(format!("{:.2}", mean(&up)));
            cells.push(format!("{:.2}", mean(&down)));
            if provider == Provider::Dropbox {
                if kb == sizes_kb[0] {
                    first_up.push(mean(&up));
                }
                if kb == sizes_kb[sizes_kb.len() - 1] {
                    last_up.push(mean(&up));
                }
            }
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "throughput grows with size and saturates (paper: diminishing gains past 4 MB): \
         8 MB/128 KB Dropbox upload ratio = {:.1}x",
        last_up[0] / first_up[0]
    );
}
