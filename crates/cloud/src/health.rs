//! Per-cloud health scoreboard: EWMA latency, windowed error rate, an
//! availability state machine with flap damping, and SLO burn counters.
//!
//! UniDrive's placement story rests on *measuring* the clouds — the
//! paper probes per-PCS throughput/latency and redistributes chunks
//! when performance shifts. This module is the measurement half: every
//! operation outcome (latency, ok/err) feeds a [`HealthTracker`],
//! which rolls samples into fixed virtual-time windows (the same
//! window grid as `obs::series`) and derives:
//!
//! * an **EWMA latency** score updated once per closed window,
//! * a per-window **error rate**,
//! * an **availability state** — `healthy → degraded → down` — that
//!   degrades *immediately* on a bad window but recovers only after
//!   `recover_windows` consecutive clean windows (flap damping: one
//!   good window between two outage bursts must not flash `healthy`),
//! * **SLO burn** counters: windows whose mean latency exceeded the
//!   latency SLO, and windows whose error rate exceeded the error
//!   budget.
//!
//! The state machine:
//!
//! ```text
//!             err_rate ≥ degraded_err_rate          err_rate ≥ down_err_rate
//!   +---------+ ------------------------> +----------+ ----------------> +------+
//!   | HEALTHY |                           | DEGRADED |                   | DOWN |
//!   +---------+ <------------------------ +----------+ <---------------- +------+
//!             recover_windows clean                    1 clean window
//!             (consecutive, counted                    (then climbs via
//!              across idle windows)                     the same streak)
//! ```
//!
//! Everything is driven by caller-supplied virtual-time stamps and
//! integer/f64 arithmetic with no ambient time or randomness, so
//! same-seed runs export byte-identical health JSON.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Availability state of one cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Error rate below the degraded threshold.
    Healthy,
    /// Error rate at or above `degraded_err_rate` in the latest
    /// active window (or recovering from `Down`).
    Degraded,
    /// Error rate at or above `down_err_rate`: the cloud is effectively
    /// refusing or failing the workload.
    Down,
}

impl HealthState {
    /// Stable lowercase label used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for [`HealthTracker`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Rollup window width, nanoseconds (match the obs series window).
    pub window_ns: u64,
    /// EWMA smoothing factor in `(0, 1]`; applied once per closed
    /// window to the window's mean latency.
    pub ewma_alpha: f64,
    /// Window error rate at or above this ⇒ at least `Degraded`.
    pub degraded_err_rate: f64,
    /// Window error rate at or above this ⇒ `Down`.
    pub down_err_rate: f64,
    /// Windows with fewer ops than this and zero errors are *idle*:
    /// they assert nothing about the cloud but count toward recovery.
    pub min_ops: u64,
    /// Consecutive clean windows required before `Degraded` returns to
    /// `Healthy` (flap damping).
    pub recover_windows: u32,
    /// Latency SLO: a window whose mean op latency exceeds this burns
    /// one latency budget window. 0 disables.
    pub slo_latency_ns: u64,
    /// Error-rate SLO budget: a window whose error rate exceeds this
    /// burns one error budget window.
    pub slo_err_budget: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window_ns: 10_000_000_000,
            ewma_alpha: 0.3,
            degraded_err_rate: 0.10,
            down_err_rate: 0.50,
            min_ops: 3,
            recover_windows: 2,
            slo_latency_ns: 2_000_000_000,
            slo_err_budget: 0.01,
        }
    }
}

/// One closed window's health view.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowHealth {
    /// Window index (`t_ns / window_ns`).
    pub index: u64,
    /// Operations observed in the window.
    pub ops: u64,
    /// Failed operations (`NotFound` is a success — the object simply
    /// isn't there; callers decide).
    pub errors: u64,
    /// `errors / ops` (0 when idle).
    pub err_rate: f64,
    /// EWMA latency after folding this window in, nanoseconds.
    pub ewma_latency_ns: u64,
    /// State *after* evaluating this window.
    pub state: HealthState,
}

/// A recorded state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// Window index at which the new state took effect.
    pub window: u64,
    /// Previous state.
    pub from: HealthState,
    /// New state.
    pub to: HealthState,
}

/// Single-threaded per-cloud health model; see the module docs for the
/// state machine. Wrap in [`CloudHealth`] when shared across threads.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    name: String,
    config: HealthConfig,
    // Open window accumulation.
    open_index: Option<u64>,
    open_ops: u64,
    open_errors: u64,
    open_lat_sum: u64,
    // Derived model state.
    state: HealthState,
    clean_streak: u32,
    ewma_latency_ns: f64,
    ewma_seeded: bool,
    total_ops: u64,
    total_errors: u64,
    slo_latency_burn: u64,
    slo_error_burn: u64,
    timeline: Vec<WindowHealth>,
    transitions: Vec<HealthTransition>,
}

impl HealthTracker {
    /// A fresh tracker for cloud `name`.
    pub fn new(name: impl Into<String>, config: HealthConfig) -> HealthTracker {
        assert!(config.window_ns > 0, "window must be positive");
        assert!(
            config.degraded_err_rate <= config.down_err_rate,
            "degraded threshold must not exceed down threshold"
        );
        HealthTracker {
            name: name.into(),
            config,
            open_index: None,
            open_ops: 0,
            open_errors: 0,
            open_lat_sum: 0,
            state: HealthState::Healthy,
            clean_streak: 0,
            ewma_latency_ns: 0.0,
            ewma_seeded: false,
            total_ops: 0,
            total_errors: 0,
            slo_latency_burn: 0,
            slo_error_burn: 0,
            timeline: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The cloud this tracker scores.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current availability state (reflects all *closed* windows).
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// EWMA latency in nanoseconds (0 until the first active window).
    pub fn ewma_latency_ns(&self) -> u64 {
        self.ewma_latency_ns.round() as u64
    }

    /// Closed-window timeline (active windows only; idle windows are
    /// folded into the recovery streak but not materialized).
    pub fn timeline(&self) -> &[WindowHealth] {
        &self.timeline
    }

    /// Recorded state transitions, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// `(latency SLO burn windows, error SLO burn windows)`.
    pub fn slo_burn(&self) -> (u64, u64) {
        (self.slo_latency_burn, self.slo_error_burn)
    }

    /// Records one operation outcome observed at virtual time `t_ns`.
    /// Rolls the window grid forward as `t_ns` advances; `ok` should be
    /// true for successes *and* `NotFound`.
    pub fn record(&mut self, t_ns: u64, latency_ns: u64, ok: bool) {
        let index = t_ns / self.config.window_ns;
        match self.open_index {
            Some(open) if open == index => {}
            Some(open) if open > index => {
                // Late sample (merge-phase replay): fold into the open
                // window rather than rewriting closed history — the
                // state machine only moves at window boundaries anyway.
            }
            Some(open) => {
                self.close_open_window();
                // Windows between `open` and `index` saw no traffic:
                // idle windows count toward recovery, one streak step
                // each, but produce no timeline rows.
                for w in open + 1..index {
                    self.idle_window(w);
                }
                self.open_index = Some(index);
            }
            None => self.open_index = Some(index),
        }
        self.open_ops += 1;
        self.open_lat_sum = self.open_lat_sum.saturating_add(latency_ns);
        if !ok {
            self.open_errors += 1;
        }
        self.total_ops += 1;
        if !ok {
            self.total_errors += 1;
        }
    }

    /// Closes the open window and steps the state machine through any
    /// fully-elapsed idle windows before `end_ns`: call once at the
    /// end of a run so the final partial window is evaluated.
    pub fn finish(&mut self, end_ns: u64) {
        if let Some(open) = self.open_index {
            self.close_open_window();
            // Only windows that fully elapsed before `end_ns` count as
            // observed-idle; the partial window containing `end_ns`
            // asserts nothing.
            let end_index = end_ns / self.config.window_ns;
            for w in open + 1..end_index {
                self.idle_window(w);
            }
            self.open_index = None;
        }
    }

    fn idle_window(&mut self, index: u64) {
        self.step_state(index, true);
    }

    fn close_open_window(&mut self) {
        let index = match self.open_index {
            Some(i) => i,
            None => return,
        };
        let (ops, errors, lat_sum) = (self.open_ops, self.open_errors, self.open_lat_sum);
        self.open_ops = 0;
        self.open_errors = 0;
        self.open_lat_sum = 0;
        if ops == 0 {
            self.idle_window(index);
            return;
        }
        let mean_lat = lat_sum as f64 / ops as f64;
        if self.ewma_seeded {
            let a = self.config.ewma_alpha;
            self.ewma_latency_ns = a * mean_lat + (1.0 - a) * self.ewma_latency_ns;
        } else {
            self.ewma_latency_ns = mean_lat;
            self.ewma_seeded = true;
        }
        let err_rate = errors as f64 / ops as f64;
        if self.config.slo_latency_ns > 0 && mean_lat > self.config.slo_latency_ns as f64 {
            self.slo_latency_burn += 1;
        }
        if err_rate > self.config.slo_err_budget {
            self.slo_error_burn += 1;
        }
        // Windows with too few ops assert nothing unless they actually
        // erred; a low-traffic clean window still counts as clean.
        let clean = if ops < self.config.min_ops {
            errors == 0
        } else {
            err_rate < self.config.degraded_err_rate
        };
        self.step_state(index, clean);
        // Evaluate severity for non-clean active windows.
        if !clean {
            let to = if ops >= self.config.min_ops && err_rate >= self.config.down_err_rate {
                HealthState::Down
            } else {
                HealthState::Degraded
            };
            // Degrading is immediate; a Down verdict overrides Degraded
            // but an already-Down cloud stays Down on a Degraded window.
            if to > self.state {
                self.transition(index, to);
            }
        }
        let state = self.state;
        self.timeline.push(WindowHealth {
            index,
            ops,
            errors,
            err_rate,
            ewma_latency_ns: self.ewma_latency_ns.round() as u64,
            state,
        });
    }

    /// Advances the recovery streak for window `index`; `clean` windows
    /// build the streak, dirty ones reset it (the actual degradation
    /// transition is decided by the caller, which knows the severity).
    fn step_state(&mut self, index: u64, clean: bool) {
        if !clean {
            self.clean_streak = 0;
            return;
        }
        self.clean_streak = self.clean_streak.saturating_add(1);
        match self.state {
            HealthState::Healthy => {}
            HealthState::Down => {
                // One clean window steps Down → Degraded; the climb to
                // Healthy then needs the full streak below.
                self.transition(index, HealthState::Degraded);
                self.clean_streak = 0;
            }
            HealthState::Degraded => {
                if self.clean_streak >= self.config.recover_windows {
                    self.transition(index, HealthState::Healthy);
                }
            }
        }
    }

    fn transition(&mut self, window: u64, to: HealthState) {
        if to == self.state {
            return;
        }
        self.transitions.push(HealthTransition {
            window,
            from: self.state,
            to,
        });
        self.state = to;
    }

    /// Deterministic JSON object for this cloud's scoreboard row
    /// (schema `unidrive-health/v1`, embedded in the series export or
    /// standalone).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"cloud\": \"{}\", \"state\": \"{}\", \"ewma_latency_ns\": {}, \
             \"ops\": {}, \"errors\": {}, \"slo\": {{\"latency_burn_windows\": {}, \
             \"error_burn_windows\": {}}}, \"transitions\": [",
            self.name,
            self.state.as_str(),
            self.ewma_latency_ns(),
            self.total_ops,
            self.total_errors,
            self.slo_latency_burn,
            self.slo_error_burn,
        ));
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"window\": {}, \"from\": \"{}\", \"to\": \"{}\"}}",
                t.window,
                t.from.as_str(),
                t.to.as_str()
            ));
        }
        out.push_str("], \"timeline\": [");
        for (i, w) in self.timeline.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"i\": {}, \"ops\": {}, \"errors\": {}, \"err_rate\": {}, \
                 \"ewma_latency_ns\": {}, \"state\": \"{}\"}}",
                w.index,
                w.ops,
                w.errors,
                fmt_rate(w.err_rate),
                w.ewma_latency_ns,
                w.state.as_str()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Locale-free fixed-precision rate: deterministic across hosts.
fn fmt_rate(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0.0000".to_owned()
    }
}

/// Thread-safe wrapper around a [`HealthTracker`], shared between an
/// [`ObservedCloud`](crate::ObservedCloud) and the reporting path.
#[derive(Debug)]
pub struct CloudHealth {
    inner: Mutex<HealthTracker>,
}

impl CloudHealth {
    /// A shared tracker for cloud `name`.
    pub fn new(name: impl Into<String>, config: HealthConfig) -> Arc<CloudHealth> {
        Arc::new(CloudHealth {
            inner: Mutex::new(HealthTracker::new(name, config)),
        })
    }

    /// Records one operation outcome (see [`HealthTracker::record`]).
    pub fn record(&self, t_ns: u64, latency_ns: u64, ok: bool) {
        self.lock().record(t_ns, latency_ns, ok);
    }

    /// Closes the final window (see [`HealthTracker::finish`]).
    pub fn finish(&self, end_ns: u64) {
        self.lock().finish(end_ns);
    }

    /// Current availability state.
    pub fn state(&self) -> HealthState {
        self.lock().state()
    }

    /// Deterministic JSON row (see [`HealthTracker::to_json`]).
    pub fn to_json(&self) -> String {
        self.lock().to_json()
    }

    /// A clone of the underlying tracker for inspection.
    pub fn tracker(&self) -> HealthTracker {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthTracker> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A set of per-cloud health trackers keyed by cloud name — the
/// scoreboard one world hands to its reporting path.
#[derive(Debug, Default)]
pub struct HealthBoard {
    config: HealthConfig,
    clouds: Mutex<BTreeMap<String, Arc<CloudHealth>>>,
}

impl HealthBoard {
    /// An empty board whose trackers use `config`.
    pub fn new(config: HealthConfig) -> Arc<HealthBoard> {
        Arc::new(HealthBoard {
            config,
            clouds: Mutex::new(BTreeMap::new()),
        })
    }

    /// The tracker for `cloud`, created on first use.
    pub fn cloud(&self, cloud: &str) -> Arc<CloudHealth> {
        let mut map = self.clouds.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(h) = map.get(cloud) {
            return Arc::clone(h);
        }
        let h = CloudHealth::new(cloud, self.config.clone());
        map.insert(cloud.to_owned(), Arc::clone(&h));
        h
    }

    /// Closes every tracker's final window at `end_ns`.
    pub fn finish(&self, end_ns: u64) {
        for h in self
            .clouds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            h.finish(end_ns);
        }
    }

    /// One deterministic JSON object per cloud, sorted by name — ready
    /// for [`SeriesSnapshot::to_json_with_health`]
    /// (unidrive_obs::SeriesSnapshot::to_json_with_health).
    pub fn to_json_rows(&self) -> Vec<String> {
        self.clouds
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|h| h.to_json())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000;

    fn config() -> HealthConfig {
        HealthConfig {
            window_ns: W,
            ewma_alpha: 0.5,
            degraded_err_rate: 0.10,
            down_err_rate: 0.50,
            min_ops: 3,
            recover_windows: 2,
            slo_latency_ns: 100,
            slo_err_budget: 0.01,
        }
    }

    /// Fills window `w` with `ok` successes and `err` failures at
    /// `lat` ns each.
    fn fill(h: &mut HealthTracker, w: u64, ok: u64, err: u64, lat: u64) {
        for k in 0..ok + err {
            h.record(w * W + k % W, lat, k < ok);
        }
    }

    #[test]
    fn degrades_immediately_and_recovers_after_streak() {
        let mut h = HealthTracker::new("c0", config());
        fill(&mut h, 0, 10, 0, 50);
        fill(&mut h, 1, 5, 5, 50); // 50% errors ⇒ Down at window 1
        fill(&mut h, 2, 9, 1, 50); // 10% ⇒ still dirty, stays Down
        fill(&mut h, 3, 10, 0, 50); // clean: Down → Degraded
        fill(&mut h, 4, 10, 0, 50); // clean streak 1
        fill(&mut h, 5, 10, 0, 50); // clean streak 2 ⇒ Healthy
        h.finish(6 * W);
        assert_eq!(h.state(), HealthState::Healthy);
        let ts: Vec<(u64, HealthState)> =
            h.transitions().iter().map(|t| (t.window, t.to)).collect();
        assert_eq!(
            ts,
            vec![
                (1, HealthState::Down),
                (3, HealthState::Degraded),
                (5, HealthState::Healthy),
            ]
        );
    }

    #[test]
    fn flap_damping_holds_degraded_through_single_clean_windows() {
        let mut h = HealthTracker::new("c0", config());
        fill(&mut h, 0, 8, 2, 50); // 20% ⇒ Degraded
        // Alternating clean/dirty windows must never flash Healthy:
        // recover_windows = 2 and every dirty window resets the streak.
        for w in 1..7 {
            if w % 2 == 1 {
                fill(&mut h, w, 10, 0, 50);
            } else {
                fill(&mut h, w, 8, 2, 50);
            }
        }
        h.finish(7 * W);
        assert_eq!(h.state(), HealthState::Degraded);
        assert!(h.transitions().iter().all(|t| t.to != HealthState::Healthy));
        // Two consecutive clean windows finally recover.
        fill(&mut h, 7, 10, 0, 50);
        fill(&mut h, 8, 10, 0, 50);
        h.finish(9 * W);
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn idle_windows_count_toward_recovery() {
        let mut h = HealthTracker::new("c0", config());
        fill(&mut h, 0, 8, 2, 50); // Degraded
        // No traffic in windows 1..=4, next activity in window 5.
        fill(&mut h, 5, 10, 0, 50);
        h.finish(6 * W);
        // Idle windows 1-4 built the streak: healthy before window 5.
        assert_eq!(h.state(), HealthState::Healthy);
        let back = h
            .transitions()
            .iter()
            .find(|t| t.to == HealthState::Healthy)
            .unwrap();
        assert!(back.window <= 2, "recovered at {}", back.window);
    }

    #[test]
    fn sparse_low_traffic_windows_assert_nothing_unless_erring() {
        let mut h = HealthTracker::new("c0", config());
        fill(&mut h, 0, 2, 0, 50); // below min_ops, clean: stays Healthy
        fill(&mut h, 1, 1, 1, 50); // below min_ops but errored: Degraded
        h.finish(2 * W);
        assert_eq!(h.state(), HealthState::Degraded);
        // Never Down on under-sampled evidence.
        assert!(h.transitions().iter().all(|t| t.to != HealthState::Down));
    }

    #[test]
    fn ewma_and_slo_burn_track_latency() {
        let mut h = HealthTracker::new("c0", config());
        fill(&mut h, 0, 10, 0, 80); // under the 100 ns SLO
        fill(&mut h, 1, 10, 0, 200); // over: burns one window
        h.finish(2 * W);
        // EWMA: seed 80, then 0.5·200 + 0.5·80 = 140.
        assert_eq!(h.ewma_latency_ns(), 140);
        assert_eq!(h.slo_burn(), (1, 0));
        assert_eq!(h.timeline().len(), 2);
        assert_eq!(h.timeline()[1].ewma_latency_ns, 140);
    }

    #[test]
    fn json_row_is_deterministic_and_complete() {
        let mut h = HealthTracker::new("gdrive", config());
        fill(&mut h, 0, 5, 5, 50);
        h.finish(W);
        let a = h.to_json();
        assert_eq!(a, h.to_json());
        assert!(a.contains("\"cloud\": \"gdrive\""));
        assert!(a.contains("\"state\": \"down\""));
        assert!(a.contains("\"err_rate\": 0.5000"));
        assert!(a.contains("\"transitions\": [{\"window\": 0, \"from\": \"healthy\", \"to\": \"down\"}]"));
        assert!(a.contains("\"slo\""));
    }

    #[test]
    fn board_sorts_rows_by_cloud_name() {
        let board = HealthBoard::new(config());
        board.cloud("zeta").record(10, 5, true);
        board.cloud("alpha").record(10, 5, true);
        board.finish(2 * W);
        let rows = board.to_json_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("\"alpha\"") && rows[1].contains("\"zeta\""));
        // Same Arc on repeat lookup.
        assert_eq!(board.cloud("alpha").tracker().name(), "alpha");
    }
}
