//! Atomic metric primitives: counters, gauges, log₂-bucketed
//! histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (bits stored in an atomic).
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value; `NaN` until first set.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Lock-free log₂-bucketed histogram for latencies and sizes.
///
/// The bucket of value `v > 0` is `64 - v.leading_zeros()`, i.e. one
/// plus the position of its highest set bit, so bucket boundaries are
/// exact powers of two. Alongside the buckets it tracks count, sum,
/// min and max.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i` (0 for the zero bucket).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        match i {
            0 | 1 => i as u64,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the histogram state. (Individual
    /// atomics are read independently; in quiescent snapshots — the
    /// only kind the export path takes — the copy is exact.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((Self::bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets:
    /// the inclusive upper bound of the bucket containing the rank-`q`
    /// observation, clamped to the observed `[min, max]`. Exact to
    /// within one power of two, 0 when empty, and fully deterministic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(lo, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                // Bucket [2^(i-1), 2^i) has inclusive upper bound
                // 2*lo - 1; the two singleton buckets are exact.
                let hi = if lo <= 1 { lo } else { 2 * lo - 1 };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into this snapshot: counts and sums add
    /// (saturating), extrema combine, buckets union by lower bound.
    /// Commutative and associative, which is what lets windowed
    /// rollups merge per-shard snapshots in any order.
    ///
    /// An empty side is the identity: its `min` is the *sentinel* 0,
    /// not an observation, so a naive `min(self.min, other.min)` would
    /// poison the merged minimum — and through the `[min, max]` clamp
    /// in [`quantile`](HistogramSnapshot::quantile), drag every
    /// percentile of a sparse window toward 0 and break the
    /// p50 ≤ p95 ≤ p99 ordering contract.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(la, na)), Some(&(lb, nb))) if la == lb => {
                    merged.push((la, na.saturating_add(nb)));
                    i += 1;
                    j += 1;
                }
                (Some(&(la, na)), Some(&(lb, _))) if la < lb => {
                    merged.push((la, na));
                    i += 1;
                }
                (Some(_), Some(&(lb, nb))) => {
                    merged.push((lb, nb));
                    j += 1;
                }
                (Some(&a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }

    /// Median estimate (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 2..HISTOGRAM_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_tracks_stats() {
        let h = Histogram::default();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1033);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (4, 1), (1024, 1)]);
        assert!((s.mean() - 206.6).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!((s.p50(), s.p95(), s.p99()), (0, 0, 0));
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let h = Histogram::default();
        // 90 fast observations around 1 ms, 10 slow around 1 s.
        for _ in 0..90 {
            h.record(1_000_000);
        }
        for _ in 0..10 {
            h.record(1_000_000_000);
        }
        let s = h.snapshot();
        // p50 lands in the 1 ms bucket; the upper bound clamps to max
        // of that region's observations within one power of two.
        assert!(s.p50() >= 1_000_000 && s.p50() < 2_097_152, "p50 = {}", s.p50());
        assert!(s.p95() >= 536_870_912, "p95 = {}", s.p95());
        assert_eq!(s.p99(), s.quantile(0.99));
        assert!(s.p99() <= s.max && s.p95() <= s.max);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());

        // Single-value histograms are exact at every percentile.
        let one = Histogram::default();
        one.record(7);
        let os = one.snapshot();
        assert_eq!((os.p50(), os.p95(), os.p99()), (7, 7, 7));
    }

    fn snap_of(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::default();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_matches_recording_everything_into_one_histogram() {
        let a = snap_of(&[0, 1, 7, 1024]);
        let b = snap_of(&[3, 7, 500_000]);
        let mut m = a.clone();
        m.merge_from(&b);
        assert_eq!(m, snap_of(&[0, 1, 7, 1024, 3, 7, 500_000]));
        // Commutative.
        let mut n = b.clone();
        n.merge_from(&a);
        assert_eq!(n, m);
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let s = snap_of(&[40, 90]);
        let empty = snap_of(&[]);

        let mut m = s.clone();
        m.merge_from(&empty);
        assert_eq!(m, s, "empty rhs must not change anything");
        // In particular the empty side's sentinel min=0 must not leak:
        // through the quantile clamp it would drag p50 to ~0.
        assert_eq!(m.min, 40);
        assert!(m.p50() >= 40);

        let mut e = empty.clone();
        e.merge_from(&s);
        assert_eq!(e, s, "empty lhs adopts the other side verbatim");
    }

    #[test]
    fn sparse_one_sample_window_merges_keep_percentiles_ordered() {
        // Regression: windowed rollups fold many 1-sample windows; the
        // merged estimate must stay monotone and within [min, max].
        let windows = [9_u64, 130, 3, 77_000, 1, 500_000, 12];
        let mut acc = snap_of(&[]);
        for &v in &windows {
            acc.merge_from(&snap_of(&[v]));
            let (p50, p95, p99) = (acc.p50(), acc.p95(), acc.p99());
            assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
            assert!(p50 >= acc.min && p99 <= acc.max);
        }
        assert_eq!(acc.count, windows.len() as u64);
        assert_eq!(acc.sum, windows.iter().sum::<u64>());
        assert_eq!(acc.min, 1);
        assert_eq!(acc.max, 500_000);
    }
}
