//! **bench_kernels** — throughput of the client-side ingest kernels.
//!
//! The ingest path (content-defined chunking → SHA-1 content
//! addressing → Reed-Solomon block generation) is the client's CPU
//! cost per synced byte; this binary records its perf trajectory so
//! every PR inherits a measured kernel baseline. Rows:
//!
//! - `sha1` — one-shot digest, several sizes
//! - `rabin_roll` / `gear_roll` — rolling-hash slide across a buffer
//!   (the per-byte cost of each cut-point hash, no chunking logic)
//! - `chunker_cut_points` / `gear_cut_points` — content-defined
//!   segmentation, serial, per kind (no hashing)
//! - `cut_points_parallel` — gear cut-point discovery fanned across
//!   disjoint slices at 1/2/4/8 worker threads (byte-identical output
//!   to the serial scan; `--cuts-out` below gates that in CI)
//! - `rs_encode` / `rs_decode` — (255, 3) non-systematic codec,
//!   full 5-block stripe per iteration (the paper's N = 5)
//! - `ingest` / `ingest_gear` — end-to-end chunk + hash + encode per
//!   chunker kind at 1/2/4/8 worker threads through
//!   `unidrive_util::pool::WorkerPool` (both cut discovery and
//!   per-segment work ride the pool, as in `DataPlane`)
//!
//! Per-iteration wall-clock nanoseconds are kept as exact samples and
//! `p50_ns`/`p95_ns` are computed from the sorted sample array.
//! (Earlier revisions read the percentiles off the `unidrive-obs`
//! log₂ histogram, whose quantile returns its bucket's *upper bound*
//! `2^k - 1`; with power-of-two payloads that collapses every row's
//! p50/p95 to `bytes - 1` — a coarse bucket artifact, not a latency.)
//! Each sample is still recorded into the obs histogram so the export
//! machinery stays exercised. Results export as JSON with a fixed
//! schema and row order — values are wall clock and vary run to run,
//! the *shape* never does.
//!
//! Usage: `bench_kernels [--quick|quick] [--out PATH]`
//! (default out: `BENCH_kernels.json`), or
//! `bench_kernels --cuts-out PATH --cuts-threads N` to dump the
//! parallel cut points of a fixed deterministic buffer (both kinds)
//! and exit — `ci.sh` runs that at several thread counts and `cmp`s
//! the dumps.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use unidrive_chunker::{
    cut_points, cut_points_parallel, ChunkerConfig, GearHash, RabinHash,
};
use unidrive_crypto::Sha1;
use unidrive_erasure::Codec;
use unidrive_obs::{Obs, Registry};
use unidrive_util::bytes::Bytes;
use unidrive_util::pool::WorkerPool;
use unidrive_workload::random_bytes;

/// One measured row of the report.
struct Row {
    kernel: &'static str,
    bytes: usize,
    threads: usize,
    iters: u64,
    mb_per_s: f64,
    mean_ns: u64,
    p50_ns: u64,
    p95_ns: u64,
}

struct Harness {
    obs: Obs,
    /// Per-row time budget.
    budget: std::time::Duration,
    rows: Vec<Row>,
}

/// Exact rank-`q` percentile of the (sorted in place) samples:
/// the ⌈q·n⌉-th smallest observation, an actual measured value rather
/// than a histogram bucket bound.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Harness {
    fn new(quick: bool) -> Self {
        let registry = Registry::new();
        let epoch = Instant::now();
        registry.set_clock(move || epoch.elapsed().as_nanos() as u64);
        Harness {
            obs: Obs::with_registry(registry),
            budget: std::time::Duration::from_millis(if quick { 120 } else { 500 }),
            rows: Vec::new(),
        }
    }

    /// Times `f` until the row budget is spent (≥ 3 iterations), with
    /// one untimed warm-up. `bytes` is the payload a single iteration
    /// processes; `threads` is a reporting tag.
    fn row<T>(
        &mut self,
        kernel: &'static str,
        bytes: usize,
        threads: usize,
        mut f: impl FnMut() -> T,
    ) {
        black_box(f());
        let name = format!("bench.{kernel}.{bytes}.{threads}");
        let start = Instant::now();
        let mut samples: Vec<u64> = Vec::with_capacity(256);
        while samples.len() < 3 || (start.elapsed() < self.budget && samples.len() < 10_000) {
            let t0 = Instant::now();
            black_box(f());
            let ns = t0.elapsed().as_nanos() as u64;
            self.obs.observe(&name, ns);
            samples.push(ns);
        }
        let iters = samples.len() as u64;
        let mean_ns = samples.iter().sum::<u64>() as f64 / iters as f64;
        samples.sort_unstable();
        let row = Row {
            kernel,
            bytes,
            threads,
            iters,
            mb_per_s: bytes as f64 / (mean_ns / 1e9).max(1e-12) / (1024.0 * 1024.0),
            mean_ns: mean_ns as u64,
            p50_ns: percentile(&samples, 0.50),
            p95_ns: percentile(&samples, 0.95),
        };
        println!(
            "{:<24} {:>10} B {:>2} thr {:>6} it {:>10.1} MiB/s  (mean {:>9} ns, p50 {:>9}, p95 {:>9})",
            row.kernel, row.bytes, row.threads, row.iters, row.mb_per_s, row.mean_ns, row.p50_ns,
            row.p95_ns
        );
        self.rows.push(row);
    }

    fn to_json(&self, mode: &str) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"bench_kernels\": \"unidrive/v1\",\n");
        let _ = writeln!(out, "\"mode\": \"{mode}\",");
        out.push_str("\"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"kernel\": \"{}\", \"bytes\": {}, \"threads\": {}, \"iters\": {}, \
                 \"mb_per_s\": {:.2}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}}}",
                r.kernel, r.bytes, r.threads, r.iters, r.mb_per_s, r.mean_ns, r.p50_ns, r.p95_ns
            );
        }
        out.push_str("\n]\n}\n");
        out
    }
}

/// The full pipeline one upload performs per file before any network
/// traffic, mirroring `DataPlane`: parallel content-defined cut
/// discovery, then per-segment SHA-1 + a 5-block RS stripe, all fanned
/// across `pool`.
fn ingest(data: &Bytes, config: &ChunkerConfig, codec: &Codec, pool: &WorkerPool) -> usize {
    let cuts = cut_points_parallel(data, config, pool);
    let outputs = pool.par_map_indexed(&cuts, |_, &(offset, len)| {
        let seg = data.slice(offset..offset + len);
        let digest = Sha1::digest(&seg);
        let blocks = codec.encode_blocks(&seg, &[0, 1, 2, 3, 4]);
        (digest, blocks)
    });
    outputs.len()
}

/// `--cuts-out` mode: chunk one fixed deterministic buffer with the
/// parallel driver (both kinds) at the given thread count and dump the
/// cut points as text. Byte-identical dumps across thread counts are
/// the CI-visible form of the serial ≡ parallel contract.
fn dump_cuts(path: &str, threads: usize) {
    let data = random_bytes(8 * 1024 * 1024, 0xC0DE_C4B5);
    let pool = WorkerPool::new(threads);
    let mut out = String::new();
    for config in [
        ChunkerConfig::new(128 * 1024),
        ChunkerConfig::gear(128 * 1024),
    ] {
        for (offset, len) in cut_points_parallel(&data, &config, &pool) {
            let _ = writeln!(out, "{} {offset} {len}", config.kind.label());
        }
    }
    std::fs::write(path, &out).unwrap_or_else(|e| {
        eprintln!("bench_kernels: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote cut points for both kinds ({threads} threads) to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag("--cuts-out") {
        let threads = flag("--cuts-threads")
            .and_then(|t| t.parse().ok())
            .unwrap_or(1);
        dump_cuts(&path, threads);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_kernels.json".to_owned());
    let mode = if quick { "quick" } else { "full" };
    println!("bench_kernels ({mode} mode)\n");

    let mut h = Harness::new(quick);

    let sha_sizes: &[usize] = if quick {
        &[256 * 1024, 1024 * 1024]
    } else {
        &[256 * 1024, 1024 * 1024, 8 * 1024 * 1024]
    };
    for &size in sha_sizes {
        let data = random_bytes(size, 0xC0FFEE ^ size as u64);
        h.row("sha1", size, 1, || Sha1::digest(&data));
    }

    let roll_size = if quick { 1024 * 1024 } else { 4 * 1024 * 1024 };
    let data = random_bytes(roll_size, 0xAB1E);
    h.row("rabin_roll", roll_size, 1, || {
        let mut hash = RabinHash::new(48);
        for &b in &data[..48] {
            hash.push(b);
        }
        let mut acc = 0u64;
        for i in 48..data.len() {
            hash.roll(data[i - 48], data[i]);
            acc ^= hash.fingerprint();
        }
        acc
    });
    h.row("gear_roll", roll_size, 1, || {
        let mut hash = GearHash::new();
        let mut acc = 0u64;
        for &b in data.iter() {
            hash.push(b);
            acc ^= hash.fingerprint();
        }
        acc
    });

    let chunk_size = if quick { 4 * 1024 * 1024 } else { 16 * 1024 * 1024 };
    let theta = chunk_size / 16;
    let data = random_bytes(chunk_size, 0x5E6);
    let rabin_config = ChunkerConfig::new(theta);
    h.row("chunker_cut_points", chunk_size, 1, || {
        cut_points(&data, &rabin_config)
    });
    let gear_config = ChunkerConfig::gear(theta);
    h.row("gear_cut_points", chunk_size, 1, || {
        cut_points(&data, &gear_config)
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        h.row("cut_points_parallel", chunk_size, threads, || {
            cut_points_parallel(&data, &gear_config, &pool)
        });
    }

    let rs_size = if quick { 1024 * 1024 } else { 4 * 1024 * 1024 };
    let data = random_bytes(rs_size, 0xEC0DE);
    let codec = Codec::non_systematic(255, 3).expect("paper parameters");
    h.row("rs_encode", rs_size, 1, || {
        codec.encode_blocks(&data, &[0, 1, 2, 3, 4])
    });
    let stripe = codec.encode_blocks(&data, &[0, 1, 2, 3, 4]);
    let shares: Vec<(usize, &[u8])> = [0usize, 2, 4]
        .iter()
        .map(|&i| (i, stripe[i].as_ref()))
        .collect();
    h.row("rs_decode", rs_size, 1, || {
        codec.decode(&shares, data.len()).expect("k shares decode")
    });

    let ingest_size = if quick { 4 * 1024 * 1024 } else { 16 * 1024 * 1024 };
    let data = random_bytes(ingest_size, 0x1265);
    let rabin_ingest = ChunkerConfig::new(ingest_size / 16);
    let gear_ingest = ChunkerConfig::gear(ingest_size / 16);
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        h.row("ingest", ingest_size, threads, || {
            ingest(&data, &rabin_ingest, &codec, &pool)
        });
    }
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        h.row("ingest_gear", ingest_size, threads, || {
            ingest(&data, &gear_ingest, &codec, &pool)
        });
    }

    let json = h.to_json(mode);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("bench_kernels: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}
