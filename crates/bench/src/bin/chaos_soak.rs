//! **Chaos soak** — N rounds of multi-device sync under seeded,
//! randomized [`FaultPlan`]s, with Jepsen-style invariant checks after
//! every round (§3.2, §7.3: UniDrive must stay correct while individual
//! CCSs fail):
//!
//! * **durability** — no acknowledged-then-lost data: every file a
//!   `sync_once` reported as uploaded is readable, byte-identical, on
//!   every device after the soak;
//! * **lock** — at most one quorum-lock holder at any instant (scanned
//!   from the `LockAcquired`/`LockReleased`/`LockBroken` trace);
//! * **convergence** — once the fault horizon closes, every device's
//!   `SyncFolderImage` converges to the same encoded bytes;
//! * **refcounts** — each converged image's segment refcounts match a
//!   from-scratch recount.
//!
//! The randomized plans draw only from *masked* fault kinds (transient
//! bursts, outages, latency spikes, quota, torn uploads) — faults the
//! protocol claims to absorb — so every soak round must pass. A final
//! **lethal** round schedules what the protocol cannot absorb
//! (delayed-visibility on a lock quorum, plus a torn-upload cloud) and
//! must *fail*; the failing schedule is then greedily minimized by
//! dropping events and replaying, and the smallest still-failing plan
//! is emitted as JSON alongside a flight record of the failing round.
//!
//! Every randomized round runs under **both** metadata planes — the
//! quorum-locked image and the append-only oplog — so the invariants
//! (durability, convergence, single lock holder, refcounts) are soaked
//! against oplog commits too, including torn-upload faults landing on
//! op files mid-append. The lethal round always runs the lock plane:
//! its must-fail verdict depends on delayed visibility breaking the
//! lock's read-after-write assumption, which the oplog plane absorbs
//! by construction (ops become visible after the windows close).
//!
//! Everything runs in virtual time from fixed seeds: same-seed runs
//! produce byte-identical verdict files (checked in CI, like fig11).
//!
//! A final **health** round drives a targeted single-cloud outage with
//! every device frontend wrapped in an [`ObservedCloud`] feeding a
//! shared per-provider [`HealthBoard`]: the targeted cloud must leave
//! `healthy` during the fault window and return to `healthy` after it
//! closes, and no untargeted cloud may go `down`. The scoreboard is
//! embedded in the verdict and, with `--series-out`, exported alongside
//! the windowed obs series.
//!
//! Usage: `chaos_soak [quick] [--meta-mode {lock,oplog}]
//! [--out verdict.json] [--series-out SERIES.json]`.
//! `--meta-mode` restricts the randomized rounds to one plane.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{
    ChaosCloud, CloudBuilder, CloudSet, CloudStore, FaultEvent, FaultKind, FaultPlan,
    HealthBoard, HealthConfig, MemCloud, SimCloud, SimCloudConfig,
};
use unidrive_core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive_erasure::RedundancyConfig;
use unidrive_meta::MetaMode;
use unidrive_obs::{Event, Obs, Registry, DEFAULT_SERIES_WINDOW_NS};
use unidrive_sim::{spawn, SimRng, SimRuntime};

const CLOUDS: usize = 5;
const DEVICES: usize = 3;
/// Per-device sync instants (seconds). Devices 0 and 1 write and sync
/// at the *same* instant so their lock acquisitions genuinely race.
const SYNC_TIMES: [[u64; 5]; DEVICES] = [
    [5, 65, 125, 185, 245],
    [5, 67, 123, 187, 243],
    [20, 80, 140, 200, 260],
];
/// All fault windows close before this (seconds); convergence runs after.
const HORIZON_SECS: u64 = 300;

/// What one soak round observed.
struct RoundOutcome {
    /// Invariants violated (empty = round passed).
    failed: Vec<&'static str>,
    /// Files acknowledged as uploaded during the soak.
    acked: usize,
    /// `sync_once` errors tolerated during the soak + convergence.
    sync_errors: usize,
    /// Faults the chaos layer injected.
    injected: u64,
    /// Canonicalized obs snapshot of the round, when requested.
    flight: Option<String>,
}

fn deterministic_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SimRng::derive(seed, "chaos_soak/payload");
    (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect()
}

/// Runs one full soak round under `plan`: builds a fresh 5-cloud /
/// 3-device world seeded by `plan.seed` with the given metadata plane,
/// soaks it through the fault horizon, converges, and checks every
/// invariant. The lock invariant stays armed in oplog mode: base
/// compaction still takes the quorum lock, so two simultaneous holders
/// would be a real violation there too.
fn run_round(plan: &FaultPlan, mode: MetaMode, want_flight: bool) -> RoundOutcome {
    let sim = SimRuntime::new(plan.seed);
    let rt = sim.clone().as_runtime();
    let obs = Obs::with_registry(Registry::with_trace_capacity(1 << 16));
    sim.install_obs(obs.clone());

    // Five providers, each one shared backing store with a per-device
    // network frontend — faults are injected per device handle, so a
    // visibility anomaly hides *other* devices' writes, not your own.
    let backings: Vec<Arc<MemCloud>> = (0..CLOUDS)
        .map(|i| Arc::new(MemCloud::new(format!("b{i}"))))
        .collect();
    let mut chaos_handles: Vec<Arc<ChaosCloud>> = Vec::new();
    let mut device_sets = Vec::new();
    for d in 0..DEVICES {
        let members: Vec<Arc<dyn CloudStore>> = (0..CLOUDS)
            .map(|i| {
                let inner = Arc::new(SimCloud::with_backing(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(2e6, 8e6),
                    Arc::clone(&backings[i]),
                ));
                inner.install_obs(obs.clone());
                let built = CloudBuilder::new(&rt, inner as Arc<dyn CloudStore>)
                    .chaos(plan, &format!("dev{d}"))
                    .obs(&obs)
                    .build();
                chaos_handles.push(built.chaos.expect("chaos stage configured"));
                built.store
            })
            .collect();
        device_sets.push(CloudSet::new(members));
    }

    let folders: Vec<Arc<MemFolder>> = (0..DEVICES).map(|_| MemFolder::new()).collect();
    let client = |d: usize| {
        let mut config = ClientConfig::paper_default(format!("dev{d}"));
        config.meta_mode = mode;
        config.data = DataPlaneConfig {
            obs: obs.clone(),
            ..DataPlaneConfig::with_params(
                RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
                64 * 1024,
            )
        };
        UniDriveClient::new(
            rt.clone(),
            device_sets[d].clone(),
            Arc::clone(&folders[d]) as Arc<dyn SyncFolder>,
            config,
            SimRng::derive(plan.seed, &format!("chaos_soak/client{d}")),
        )
    };

    // Soak phase: each device syncs on its own schedule in a spawned
    // task; devices 0 and 1 write fresh files before their first two
    // rounds. A sync error under faults is tolerated (the daemon just
    // retries next round), but every *acknowledged* upload is recorded
    // with its exact bytes for the durability check.
    let mut tasks = Vec::new();
    for d in 0..DEVICES {
        let mut c = client(d);
        let folder = Arc::clone(&folders[d]);
        let rt2 = rt.clone();
        let seed = plan.seed;
        tasks.push(spawn(&rt, &format!("soak-dev{d}"), move || {
            let mut written: BTreeMap<String, Vec<u8>> = BTreeMap::new();
            let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
            let mut errors = 0usize;
            for (i, &t) in SYNC_TIMES[d].iter().enumerate() {
                let target = t * 1_000_000_000;
                let now = rt2.now().as_nanos();
                if target > now {
                    rt2.sleep(Duration::from_nanos(target - now));
                }
                if d < 2 && i < 2 {
                    let path = format!("dev{d}/f{i}.bin");
                    let data = deterministic_bytes(
                        seed ^ ((d as u64) << 8) ^ i as u64,
                        96 * 1024 + d * 4096,
                    );
                    folder.write(&path, &data, (i + 1) as u64).expect("mem write");
                    written.insert(path, data);
                }
                match c.sync_once() {
                    Ok(report) => {
                        for p in report.uploaded {
                            if let Some(data) = written.get(&p) {
                                acked.push((p, data.clone()));
                            }
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            (c, acked, errors)
        }));
    }
    let mut clients = Vec::new();
    let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
    let mut sync_errors = 0usize;
    for t in tasks {
        let (c, a, e) = t.join();
        clients.push(c);
        acked.extend(a);
        sync_errors += e;
    }

    // Convergence phase: all fault windows have closed; poll every
    // device until one full pass where everyone reports a no-op sync.
    let horizon = HORIZON_SECS * 1_000_000_000;
    let now = rt.now().as_nanos();
    if horizon > now {
        rt.sleep(Duration::from_nanos(horizon - now));
    }
    let mut converged = false;
    for _ in 0..15 {
        let mut all_noop = true;
        for c in &mut clients {
            match c.sync_once() {
                Ok(report) => all_noop &= report.is_noop(),
                Err(_) => {
                    sync_errors += 1;
                    all_noop = false;
                }
            }
        }
        if all_noop {
            converged = true;
            break;
        }
        rt.sleep(Duration::from_secs(10));
    }

    // Invariant checks.
    let mut failed = Vec::new();
    let images: Vec<_> = clients.iter().map(|c| c.image().encode()).collect();
    if !converged || images.windows(2).any(|w| w[0] != w[1]) {
        failed.push("convergence");
    }
    if acked.iter().any(|(path, data)| {
        folders
            .iter()
            .any(|f| f.read(path).map(|d| d.as_ref() != &data[..]).unwrap_or(true))
    }) {
        failed.push("durability");
    }
    let snap = obs.snapshot().expect("registry snapshot");
    let mut holders: Vec<String> = Vec::new();
    let mut two_holders = false;
    for e in &snap.events {
        match &e.event {
            Event::LockAcquired { device, .. } => {
                if !holders.is_empty() && !holders.iter().any(|h| h == device) {
                    two_holders = true;
                }
                if !holders.iter().any(|h| h == device) {
                    holders.push(device.clone());
                }
            }
            Event::LockReleased { device } => holders.retain(|h| h != device),
            Event::LockBroken { victim, .. } => holders.retain(|h| h != victim),
            _ => {}
        }
    }
    if two_holders {
        failed.push("lock");
    }
    if clients.iter().any(|c| {
        let mut recounted = c.image().clone();
        recounted.recompute_refcounts();
        recounted.encode() != c.image().encode()
    }) {
        failed.push("refcounts");
    }

    let flight = want_flight.then(|| {
        let mut snap = snap;
        snap.canonicalize();
        snap.to_json()
    });
    RoundOutcome {
        failed,
        acked: acked.len(),
        sync_errors,
        injected: chaos_handles.iter().map(|h| h.injected_faults()).sum(),
        flight,
    }
}

/// Cloud targeted by the [`health_round`] outage.
const HEALTH_TARGET: &str = "c2";
/// Outage window (seconds) for the health round.
const HEALTH_OUTAGE: (u64, u64) = (60, 160);

/// What the targeted-outage health round observed.
struct HealthOutcome {
    /// The targeted cloud left `healthy` during the outage window.
    dipped: bool,
    /// ... and was back to `healthy` once the window closed.
    recovered: bool,
    /// No *untargeted* cloud ever went `down`.
    others_clean: bool,
    /// Scoreboard rows (one JSON object per cloud, sorted by name).
    rows: Vec<String>,
}

/// Targeted health round: a fixed outage on [`HEALTH_TARGET`] while
/// the usual soak workload runs, with every device frontend wrapped in
/// an [`ObservedCloud`] feeding one *shared* per-provider health
/// tracker (the scoreboard scores the provider, not one device's view
/// of it). This is the observability acceptance check: the fault
/// window must demonstrably move the targeted cloud out of `healthy`
/// and the close of the window must bring it back. When `series_out`
/// is set, the windowed series + health scoreboard export is written
/// there — virtual-time deterministic, same seed ⇒ byte-identical.
fn health_round(series_out: Option<&str>) -> HealthOutcome {
    let plan = FaultPlan::with_events(
        0x4ea17,
        vec![FaultEvent::always(HEALTH_TARGET, FaultKind::Outage)
            .window_secs(HEALTH_OUTAGE.0, HEALTH_OUTAGE.1)],
    );
    let sim = SimRuntime::new(plan.seed);
    let rt = sim.clone().as_runtime();
    let registry = Registry::with_trace_capacity(1 << 16);
    registry.enable_series(DEFAULT_SERIES_WINDOW_NS);
    let obs = Obs::with_registry(Arc::clone(&registry));
    sim.install_obs(obs.clone());
    let board = HealthBoard::new(HealthConfig::default());

    let backings: Vec<Arc<MemCloud>> = (0..CLOUDS)
        .map(|i| Arc::new(MemCloud::new(format!("b{i}"))))
        .collect();
    let mut device_sets = Vec::new();
    for d in 0..DEVICES {
        let members: Vec<Arc<dyn CloudStore>> = (0..CLOUDS)
            .map(|i| {
                let inner = Arc::new(SimCloud::with_backing(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(2e6, 8e6),
                    Arc::clone(&backings[i]),
                ));
                inner.install_obs(obs.clone());
                CloudBuilder::new(&rt, inner as Arc<dyn CloudStore>)
                    .chaos(&plan, &format!("dev{d}"))
                    .observed(board.cloud(&format!("c{i}")))
                    .obs(&obs)
                    .build()
                    .store
            })
            .collect();
        device_sets.push(CloudSet::new(members));
    }

    let folders: Vec<Arc<MemFolder>> = (0..DEVICES).map(|_| MemFolder::new()).collect();
    let mut tasks = Vec::new();
    for d in 0..DEVICES {
        let mut config = ClientConfig::paper_default(format!("dev{d}"));
        config.meta_mode = MetaMode::Lock;
        config.data = DataPlaneConfig {
            obs: obs.clone(),
            ..DataPlaneConfig::with_params(
                RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
                64 * 1024,
            )
        };
        let mut c = UniDriveClient::new(
            rt.clone(),
            device_sets[d].clone(),
            Arc::clone(&folders[d]) as Arc<dyn SyncFolder>,
            config,
            SimRng::derive(plan.seed, &format!("chaos_soak/health{d}")),
        );
        let folder = Arc::clone(&folders[d]);
        let rt2 = rt.clone();
        let seed = plan.seed;
        tasks.push(spawn(&rt, &format!("health-dev{d}"), move || {
            for (i, &t) in SYNC_TIMES[d].iter().enumerate() {
                let target = t * 1_000_000_000;
                let now = rt2.now().as_nanos();
                if target > now {
                    rt2.sleep(Duration::from_nanos(target - now));
                }
                if d < 2 && i < 2 {
                    let path = format!("dev{d}/f{i}.bin");
                    let data = deterministic_bytes(
                        seed ^ ((d as u64) << 8) ^ i as u64,
                        96 * 1024 + d * 4096,
                    );
                    folder.write(&path, &data, (i + 1) as u64).expect("mem write");
                }
                let _ = c.sync_once();
            }
            c
        }));
    }
    let mut clients: Vec<_> = tasks.into_iter().map(|t| t.join()).collect();

    // Cool-down past the horizon: a few no-op sync passes give every
    // cloud clean active windows so recovery streaks can complete.
    let horizon = HORIZON_SECS * 1_000_000_000;
    let now = rt.now().as_nanos();
    if horizon > now {
        rt.sleep(Duration::from_nanos(horizon - now));
    }
    for _ in 0..4 {
        for c in &mut clients {
            let _ = c.sync_once();
        }
        rt.sleep(Duration::from_secs(15));
    }

    board.finish(rt.now().as_nanos());
    let rows = board.to_json_rows();
    if let Some(path) = series_out {
        let doc = registry.series_snapshot().to_json_with_health(&rows);
        match std::fs::write(path, doc) {
            Ok(()) => println!("series written to {path}"),
            Err(e) => eprintln!("failed to write --series-out {path}: {e}"),
        }
    }

    let target_tag = format!("{{\"cloud\": \"{HEALTH_TARGET}\"");
    let target = rows
        .iter()
        .find(|r| r.starts_with(&target_tag))
        .cloned()
        .unwrap_or_default();
    let dipped =
        target.contains("\"to\": \"degraded\"") || target.contains("\"to\": \"down\"");
    let recovered = target.contains("\"state\": \"healthy\"");
    let others_clean = rows
        .iter()
        .filter(|r| !r.starts_with(&target_tag))
        .all(|r| !r.contains("\"to\": \"down\""));
    HealthOutcome {
        dipped,
        recovered,
        others_clean,
        rows,
    }
}

/// A randomized per-round schedule drawn only from fault kinds the
/// protocol is supposed to mask. `DelayedVisibility` is deliberately
/// excluded: it breaks the quorum lock's read-after-write assumption
/// (that is what the lethal round is for).
fn random_plan(seed: u64) -> FaultPlan {
    let mut rng = SimRng::derive(seed, "chaos_soak/plan");
    let mut plan = FaultPlan::new(seed);
    let events = 3 + rng.below(3);
    for _ in 0..events {
        let cloud = format!("c{}", rng.below(CLOUDS as u64));
        let start = rng.below(230);
        let end = (start + 10 + rng.below(40)).min(280);
        let kind = match rng.below(5) {
            0 => FaultKind::TransientBurst {
                probability: 0.3 + 0.4 * rng.next_f64(),
            },
            1 => FaultKind::Outage,
            2 => FaultKind::QuotaExhausted,
            3 => FaultKind::LatencySpike {
                extra_ms: 200 + rng.below(1800),
            },
            _ => FaultKind::TornUpload {
                probability: 0.5 + 0.5 * rng.next_f64(),
            },
        };
        plan.push(FaultEvent::always(cloud, kind).window_secs(start, end));
    }
    plan
}

/// The deliberately lethal schedule: delayed visibility on three of
/// five clouds lets two devices each assemble a 3/5 lock quorum that
/// cannot see the other's lock files, while cloud 3 tears every upload
/// and cloud 4 flaps — quorum-lock loss plus torn uploads.
fn lethal_plan(seed: u64) -> FaultPlan {
    FaultPlan::with_events(
        seed,
        vec![
            FaultEvent::always("c0", FaultKind::DelayedVisibility).window_secs(0, 280),
            FaultEvent::always("c1", FaultKind::DelayedVisibility).window_secs(0, 280),
            FaultEvent::always("c2", FaultKind::DelayedVisibility).window_secs(0, 280),
            FaultEvent::always("c3", FaultKind::TornUpload { probability: 1.0 })
                .window_secs(0, 280),
            FaultEvent::always("c3", FaultKind::LatencySpike { extra_ms: 800 })
                .window_secs(0, 280),
            FaultEvent::always("c4", FaultKind::TransientBurst { probability: 0.4 })
                .window_secs(0, 280),
        ],
    )
}

/// Greedy schedule minimization: repeatedly try dropping each event and
/// replaying the round from the same seed; keep any removal that still
/// violates an invariant. Returns the minimal plan and replay count.
/// Always replays under the lock plane — the lethal schedule targets it.
fn minimize(plan: &FaultPlan) -> (FaultPlan, usize) {
    let mut best = plan.clone();
    let mut replays = 0usize;
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.events.len() {
            let candidate = best.without_event(i);
            replays += 1;
            if run_round(&candidate, MetaMode::Lock, false).failed.is_empty() {
                i += 1;
            } else {
                best = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            break;
        }
    }
    (best, replays)
}

fn json_str_list(items: &[&str]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("[{}]", quoted.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick" || a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let series_out = args
        .iter()
        .position(|a| a == "--series-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let only_mode = args
        .iter()
        .position(|a| a == "--meta-mode")
        .and_then(|i| args.get(i + 1))
        .map(|v| match MetaMode::parse(v) {
            Some(m) => m,
            None => {
                eprintln!("--meta-mode must be 'lock' or 'oplog', got '{v}'");
                std::process::exit(2);
            }
        });
    let modes: Vec<MetaMode> = match only_mode {
        Some(m) => vec![m],
        None => vec![MetaMode::Lock, MetaMode::Oplog],
    };
    let rounds = if quick { 3 } else { 8 };
    println!(
        "Chaos soak: {rounds} randomized rounds x {} meta plane(s) + 1 lethal round, {DEVICES} devices x {CLOUDS} clouds\n",
        modes.len()
    );

    let mut soak_json = Vec::new();
    let mut soak_ok = true;
    println!("{:>5}  {:>5}  {:>10}  {:>6}  {:>5}  {:>8}  {:>6}  failed", "round", "mode", "seed", "events", "acked", "injected", "errors");
    for round in 0..rounds {
        let plan = random_plan(0x0ddba11 + round as u64);
        for &mode in &modes {
            let outcome = run_round(&plan, mode, false);
            soak_ok &= outcome.failed.is_empty();
            println!(
                "{round:>5}  {mode:>5}  {:>10}  {:>6}  {:>5}  {:>8}  {:>6}  {}",
                plan.seed,
                plan.events.len(),
                outcome.acked,
                outcome.injected,
                outcome.sync_errors,
                if outcome.failed.is_empty() { "-".to_owned() } else { outcome.failed.join(",") },
            );
            soak_json.push(format!(
                "{{\"seed\":{},\"mode\":\"{mode}\",\"events\":{},\"acked\":{},\"injected\":{},\"sync_errors\":{},\"failed\":{}}}",
                plan.seed,
                plan.events.len(),
                outcome.acked,
                outcome.injected,
                outcome.sync_errors,
                json_str_list(&outcome.failed),
            ));
        }
    }

    // The lethal round must fail, and its minimized schedule must still
    // fail — that is the evidence the invariant checker has teeth. It
    // runs the lock plane regardless of --meta-mode: the schedule is
    // built to break quorum-lock read-after-write, which the oplog
    // plane sidesteps.
    let lethal = lethal_plan(0xdead);
    let lethal_outcome = run_round(&lethal, MetaMode::Lock, true);
    println!(
        "\nlethal round (seed {}): {} events, invariants violated: {}",
        lethal.seed,
        lethal.events.len(),
        if lethal_outcome.failed.is_empty() { "NONE (expected a failure!)".to_owned() } else { lethal_outcome.failed.join(",") },
    );
    let (minimized, replays) = if lethal_outcome.failed.is_empty() {
        (lethal.clone(), 0)
    } else {
        minimize(&lethal)
    };
    let minimized_outcome = run_round(&minimized, MetaMode::Lock, false);
    println!(
        "minimized to {} events in {replays} replays; still failing: {}",
        minimized.events.len(),
        if minimized_outcome.failed.is_empty() { "NO".to_owned() } else { minimized_outcome.failed.join(",") },
    );

    // Health round: targeted outage must visibly move the scoreboard.
    let health = health_round(series_out.as_deref());
    println!(
        "\nhealth round: outage on {HEALTH_TARGET} [{}s,{}s): dipped={} recovered={} others_clean={}",
        HEALTH_OUTAGE.0, HEALTH_OUTAGE.1, health.dipped, health.recovered, health.others_clean,
    );
    let health_ok = health.dipped && health.recovered && health.others_clean;

    let pass = soak_ok
        && !lethal_outcome.failed.is_empty()
        && !minimized_outcome.failed.is_empty()
        && health_ok;
    let meta_modes: Vec<&str> = modes.iter().map(|m| m.as_str()).collect();
    let verdict = format!(
        "{{\n\"chaos_soak\": \"unidrive/v1\",\n\"mode\": \"{}\",\n\"meta_modes\": {},\n\"soak_rounds\": [{}],\n\"soak_ok\": {},\n\"lethal\": {{\"seed\": {}, \"initial_events\": {}, \"failed\": {}, \"minimize_replays\": {}, \"minimized_failed\": {}, \"minimized_plan\": {}}},\n\"health\": {{\"target\": \"{}\", \"outage_secs\": [{}, {}], \"dipped\": {}, \"recovered\": {}, \"others_clean\": {}, \"clouds\": [{}]}},\n\"verdict\": \"{}\"\n}}\n",
        if quick { "quick" } else { "full" },
        json_str_list(&meta_modes),
        soak_json.join(","),
        soak_ok,
        lethal.seed,
        lethal.events.len(),
        json_str_list(&lethal_outcome.failed),
        replays,
        json_str_list(&minimized_outcome.failed),
        minimized.to_json(),
        HEALTH_TARGET,
        HEALTH_OUTAGE.0,
        HEALTH_OUTAGE.1,
        health.dipped,
        health.recovered,
        health.others_clean,
        health.rows.join(","),
        if pass { "PASS" } else { "FAIL" },
    );
    println!("\nchaos_soak verdict: {}", if pass { "PASS" } else { "FAIL" });

    if let Some(path) = out {
        let stem = path.strip_suffix(".json").unwrap_or(&path);
        let minplan_path = format!("{stem}.minplan.json");
        let flight_path = format!("{stem}.flight.json");
        let mut writes = vec![
            (path.clone(), verdict.clone()),
            (minplan_path, minimized.to_json()),
        ];
        if let Some(flight) = &lethal_outcome.flight {
            writes.push((flight_path, flight.clone()));
        }
        for (p, body) in writes {
            match std::fs::write(&p, body) {
                Ok(()) => println!("written {p}"),
                Err(e) => eprintln!("failed to write {p}: {e}"),
            }
        }
    } else {
        println!("\n{verdict}");
    }
    if !pass {
        std::process::exit(1);
    }
}
