//! Upload scheduling: even normal-block placement, **over-provisioning**
//! onto idle fast clouds, and the **availability-first /
//! reliability-second** two-phase principle for batches (paper §6.2).
//!
//! The scheduler is pull-based: the shared [`TransferEngine`] runs one
//! worker per (cloud, connection) that asks this module's
//! [`TransferPolicy`] for its next block whenever it goes idle. Because
//! a faster cloud's connections go idle more often, it is handed more
//! blocks — the network utilization of each cloud ends up proportional
//! to its performance exactly as the paper intends, with every completed
//! transfer doubling as an in-channel bandwidth probe.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_cloud::{CloudError, CloudId, CloudSet};
use unidrive_obs::{SpanGuard, SpanId};
use unidrive_erasure::Codec;
use unidrive_meta::{block_path, BlockRef, SegmentId};
use unidrive_sim::{Runtime, Time};

use crate::engine::{EngineParams, JobDesc, TransferEngine, TransferPolicy, WireOp};
use crate::plan::{normal_assignment, DataPlaneConfig, SegmentData};
use crate::probe::BandwidthProbe;

/// One file to upload, already segmented.
#[derive(Debug, Clone)]
pub struct FileUpload {
    /// Sync-folder-relative path (reporting only).
    pub path: String,
    /// The file's segments in order. Segments already present in the
    /// multi-cloud (dedup hits) are simply omitted by the caller.
    pub segments: Vec<SegmentData>,
}

/// Shared sink collecting `(segment, block)` placements that complete
/// *after* an upload call returned (paper §5.1: block locations are "set
/// asynchronously via callback"). The client drains it at its next
/// metadata commit.
pub type BlockSink = Arc<Mutex<Vec<(SegmentId, BlockRef)>>>;

/// Options controlling one upload batch.
#[derive(Debug, Clone, Default)]
pub struct UploadOptions {
    /// Return as soon as every file is *available* (k blocks per
    /// segment); the reliability-second work continues on background
    /// workers, reporting placements through `sink`.
    pub detach_after_availability: bool,
    /// Receives every successful placement (including those after
    /// detach).
    pub sink: Option<BlockSink>,
    /// Causal parent for this batch's `engine.batch` span (usually the
    /// client's `sync.round` span); `None` makes the batch a root span.
    pub parent_span: Option<SpanId>,
}

/// Outcome for one uploaded file.
#[derive(Debug, Clone)]
pub struct FileUploadResult {
    /// Path as supplied.
    pub path: String,
    /// When the file became *available* (k blocks of every segment in
    /// the multi-cloud), if it did.
    pub available_at: Option<Time>,
    /// Whether every cloud holds its fair share of every segment.
    pub reliable: bool,
}

/// Outcome of an upload batch.
#[derive(Debug, Clone)]
pub struct UploadReport {
    /// Per-file outcomes, in request order.
    pub files: Vec<FileUploadResult>,
    /// Every block successfully placed: feed these to
    /// [`SyncFolderImage::record_block`](unidrive_meta::SyncFolderImage::record_block).
    pub blocks: Vec<(SegmentId, BlockRef)>,
    /// Blocks that could not be placed anywhere (all candidate clouds
    /// dead or at their security cap).
    pub unplaced_blocks: usize,
    /// When the batch started.
    pub started: Time,
    /// When the batch finished.
    pub finished: Time,
    /// Availability timeline: `(time, file index)` per file, in
    /// completion order (drives the Fig. 12 cumulative plot).
    pub timeline: Vec<(Time, usize)>,
}

impl UploadReport {
    /// Whether every file became available.
    pub fn all_available(&self) -> bool {
        self.files.iter().all(|f| f.available_at.is_some())
    }

    /// Duration until the last file became available (the paper's
    /// *available time* metric), if all did.
    pub fn available_duration(&self) -> Option<Duration> {
        let last = self
            .files
            .iter()
            .map(|f| f.available_at)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()?;
        Some(last.saturating_duration_since(self.started))
    }

    /// Total wall/virtual duration of the batch (availability +
    /// reliability phases).
    pub fn total_duration(&self) -> Duration {
        self.finished.saturating_duration_since(self.started)
    }
}

struct SegPlan {
    id: SegmentId,
    data: Bytes,
    /// Indices queued for each cloud (normal blocks initially).
    planned: Vec<VecDeque<u16>>,
    /// Blocks orphaned by dead clouds, waiting for a new home.
    reassign: VecDeque<u16>,
    /// Blocks currently in flight per cloud.
    inflight: Vec<usize>,
    /// Successfully placed blocks.
    done: Vec<BlockRef>,
    /// Next over-provisioned index to mint.
    next_extra: u16,
    /// Total per-segment failure bounces (gives up eventually).
    bounces: u32,
    /// Files (by index) referencing this segment.
    files: Vec<usize>,
}

impl SegPlan {
    fn blocks_on(&self, cloud: usize) -> usize {
        self.done.iter().filter(|b| b.cloud as usize == cloud).count() + self.inflight[cloud]
    }

    fn available(&self, k: usize) -> bool {
        self.done.len() >= k
    }
}

struct UploadState {
    segs: Vec<SegPlan>,
    /// File index → (path, plan indices, available_at).
    files: Vec<(String, Vec<usize>, Option<Time>)>,
    cloud_alive: Vec<bool>,
    finished: bool,
    unplaced: usize,
    timeline: Vec<(Time, usize)>,
    /// Live `engine.batch` span; dropped (= ended) when `finished`
    /// flips, so detached uploads stamp their true completion time.
    batch_guard: Option<SpanGuard>,
}

impl UploadState {
    fn file_available(&self, file: usize, k: usize) -> bool {
        self.files[file]
            .1
            .iter()
            .all(|&p| self.segs[p].available(k))
    }

    fn all_available(&self, k: usize) -> bool {
        (0..self.files.len()).all(|f| self.files[f].2.is_some() || self.file_available(f, k))
    }

    /// Marks newly-available files, returning their indices.
    fn refresh_availability(&mut self, k: usize, now: Time) -> Vec<usize> {
        let mut newly = Vec::new();
        for f in 0..self.files.len() {
            if self.files[f].2.is_none() && self.file_available(f, k) {
                self.files[f].2 = Some(now);
                self.timeline.push((now, f));
                newly.push(f);
            }
        }
        newly
    }
}

/// A job handed to a worker: upload block `index` of segment `seg`.
struct Job {
    seg: usize,
    index: u16,
}

/// Runs one upload batch over `clouds` and returns the report.
///
/// The caller provides files already segmented (and deduplicated);
/// see [`DataPlane`](crate::DataPlane) for the full path from bytes.
pub fn run_upload(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    codec: &Arc<Codec>,
    config: &DataPlaneConfig,
    probe: &Arc<BandwidthProbe>,
    uploads: Vec<FileUpload>,
) -> UploadReport {
    run_upload_opts(rt, clouds, codec, config, probe, uploads, UploadOptions::default())
}

/// [`run_upload`] with [`UploadOptions`] (availability detach, block
/// sink).
pub fn run_upload_opts(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    codec: &Arc<Codec>,
    config: &DataPlaneConfig,
    probe: &Arc<BandwidthProbe>,
    uploads: Vec<FileUpload>,
    options: UploadOptions,
) -> UploadReport {
    let started = rt.now();
    let n_clouds = clouds.len();
    let k = config.redundancy.k();
    let cap = config.redundancy.per_cloud_cap();
    let normal_total = config.redundancy.normal_block_count() as u16;

    // Build plans, sharing one plan per distinct segment.
    let mut files = Vec::new();
    let mut segs: Vec<SegPlan> = Vec::new();
    let mut seg_index: std::collections::HashMap<SegmentId, usize> = std::collections::HashMap::new();
    for (fi, file) in uploads.iter().enumerate() {
        let mut plan_ids = Vec::new();
        for seg in &file.segments {
            let idx = *seg_index.entry(seg.id).or_insert_with(|| {
                let assignment = normal_assignment(&config.redundancy);
                segs.push(SegPlan {
                    id: seg.id,
                    data: seg.data.clone(),
                    planned: assignment
                        .into_iter()
                        .map(|v| v.into_iter().collect())
                        .collect(),
                    reassign: VecDeque::new(),
                    inflight: vec![0; n_clouds],
                    done: Vec::new(),
                    next_extra: normal_total,
                    bounces: 0,
                    files: Vec::new(),
                });
                segs.len() - 1
            });
            if !segs[idx].files.contains(&fi) {
                segs[idx].files.push(fi);
            }
            plan_ids.push(idx);
        }
        files.push((file.path.clone(), plan_ids, None));
    }

    let mut batch_guard = config.obs.span("engine.batch", options.parent_span);
    batch_guard.attr_str("label", "upload");
    batch_guard.attr_u64("files", uploads.len() as u64);
    let batch_span = batch_guard.id();

    let mut st = UploadState {
        segs,
        files,
        cloud_alive: vec![true; n_clouds],
        finished: false,
        unplaced: 0,
        timeline: Vec::new(),
        batch_guard: Some(batch_guard),
    };

    // Files with no segments (empty, or fully deduplicated) are
    // available immediately — and an empty batch must be born finished
    // (the engine's deadlock-safety invariant).
    st.refresh_availability(k, started);
    maybe_finish(&mut st, cap);

    let policy = UploadPolicy {
        st,
        config: config.clone(),
        codec: Arc::clone(codec),
        sink: options.sink.clone(),
        k,
        cap,
        normal_total,
        batch_span,
    };
    let params = EngineParams {
        connections_per_cloud: config.connections_per_cloud,
        retry: config.retry.clone(),
        obs: config.obs.clone(),
        label: "upload".into(),
        probe: Some(Arc::clone(probe)),
        idle_wait: config.idle_wait,
        batch_span,
        watchdog: config.watchdog.clone(),
    };
    let engine = TransferEngine::start(rt, clouds, params, policy);

    let fair = config.redundancy.fair_share();
    if options.detach_after_availability {
        // Wait only until every file is available (or nothing more can
        // make progress); the reliability work continues on the detached
        // workers and reports through the sink.
        let rt2 = Arc::clone(rt);
        engine.wait_until(move |p| {
            let all_avail =
                p.st.files.iter().all(|(_, _, at)| at.is_some()) || p.st.all_available(p.k);
            if all_avail {
                // Stamp availability in case the check above hit the
                // computed path.
                let now = rt2.now();
                p.st.refresh_availability(p.k, now);
            }
            all_avail
        });
        let finished = rt.now();
        let report = engine.with(|p| build_report(&p.st, n_clouds, fair, started, finished));
        engine.detach(); // tasks keep running on their own threads
        report
    } else {
        let policy = engine.join();
        let finished = rt.now();
        build_report(&policy.st, n_clouds, fair, started, finished)
    }
}

fn build_report(
    st: &UploadState,
    n_clouds: usize,
    fair: usize,
    started: Time,
    finished: Time,
) -> UploadReport {
    let report_files = st
        .files
        .iter()
        .map(|(path, plan_ids, available_at)| {
            let reliable = plan_ids.iter().all(|&p| {
                let seg = &st.segs[p];
                (0..n_clouds).all(|c| {
                    !st.cloud_alive[c]
                        || seg.done.iter().filter(|b| b.cloud as usize == c).count() >= fair
                })
            });
            FileUploadResult {
                path: path.clone(),
                available_at: *available_at,
                reliable,
            }
        })
        .collect();
    let blocks = st
        .segs
        .iter()
        .flat_map(|s| s.done.iter().map(move |b| (s.id, *b)))
        .collect();
    UploadReport {
        files: report_files,
        blocks,
        unplaced_blocks: st.unplaced,
        started,
        finished,
        timeline: st.timeline.clone(),
    }
}

/// Upload-side scheduling brain: two-phase batching, fair-share
/// placement, and over-provisioning, driven by the shared engine.
struct UploadPolicy {
    st: UploadState,
    config: DataPlaneConfig,
    codec: Arc<Codec>,
    sink: Option<BlockSink>,
    k: usize,
    cap: usize,
    normal_total: u16,
    batch_span: Option<SpanId>,
}

impl TransferPolicy for UploadPolicy {
    type Token = Job;

    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<Job>> {
        let job = next_job(&mut self.st, cloud.0, self.k, self.cap, &self.config)?;
        let seg = &self.st.segs[job.seg];
        let path = block_path(&seg.id, job.index);
        let data = seg.data.clone();
        let codec = Arc::clone(&self.codec);
        let index = job.index;
        Some(JobDesc {
            index,
            extra: index >= self.normal_total,
            parent_span: self.batch_span,
            // Encoding runs on the worker, outside this policy's lock.
            op: WireOp::Upload {
                path,
                payload: Box::new(move || codec.encode_block(&data, index as usize)),
            },
            token: job,
        })
    }

    fn is_done(&self) -> bool {
        self.st.finished
    }

    fn on_success(&mut self, cloud: CloudId, job: Job, _data: Option<Bytes>, now: Time) {
        self.st.segs[job.seg].inflight[cloud.0] -= 1;
        let placed = BlockRef {
            index: job.index,
            cloud: cloud.0 as u16,
        };
        self.st.segs[job.seg].done.push(placed);
        if let Some(sink) = &self.sink {
            sink.lock().push((self.st.segs[job.seg].id, placed));
        }
        self.st.refresh_availability(self.k, now);
        maybe_finish(&mut self.st, self.cap);
    }

    fn on_failure(&mut self, cloud: CloudId, job: Job, error: CloudError, _now: Time) {
        self.st.segs[job.seg].inflight[cloud.0] -= 1;
        handle_failure(&mut self.st, job, cloud, error, self.config.max_block_bounces);
        maybe_finish(&mut self.st, self.cap);
    }
}

/// Picks the next block for an idle connection of `cloud` under the
/// two-phase + over-provisioning policy.
fn next_job(
    st: &mut UploadState,
    cloud: usize,
    k: usize,
    cap: usize,
    config: &DataPlaneConfig,
) -> Option<Job> {
    if !st.cloud_alive[cloud] {
        return None;
    }
    let all_avail = st.all_available(k);

    // Ablation mode (two_phase = false): file-at-a-time — finish ALL of
    // the earliest unfinished file's work (availability, reliability,
    // extras) before touching the next file. This is the natural
    // alternative the paper's availability-first principle improves on.
    if !config.two_phase {
        for f in 0..st.files.len() {
            let plan_ids = st.files[f].1.clone();
            let pending = plan_ids.iter().any(|&p| {
                let seg = &st.segs[p];
                (0..st.cloud_alive.len()).any(|c| !seg.planned[c].is_empty())
                    || !seg.reassign.is_empty()
                    || seg.inflight.iter().any(|&i| i > 0)
                    || !seg.available(k)
            });
            if !pending {
                continue;
            }
            for &p in &plan_ids {
                if let Some(job) = take_planned(st, p, cloud, cap) {
                    return Some(job);
                }
            }
            if config.overprovisioning {
                for &p in &plan_ids {
                    if st.segs[p].available(k) {
                        continue;
                    }
                    if let Some(job) = mint_extra(st, p, cloud, cap) {
                        return Some(job);
                    }
                }
            }
            // This file still has in-flight work: wait for it rather
            // than starting the next file.
            return None;
        }
        return None;
    }

    // Phase 1 — availability: earliest unavailable file first. All of
    // this cloud's planned (fair-share) work comes first; only a cloud
    // that has *finished its fair share* of a file receives
    // over-provisioned extras (paper: extras are "assigned on the fly to
    // those clouds finished transferring their fair share").
    for f in 0..st.files.len() {
        if st.files[f].2.is_some() {
            continue;
        }
        let plan_ids = st.files[f].1.clone();
        for &p in &plan_ids {
            if st.segs[p].available(k) {
                continue;
            }
            if let Some(job) = take_planned(st, p, cloud, cap) {
                return Some(job);
            }
        }
        if config.overprovisioning {
            for &p in &plan_ids {
                if st.segs[p].available(k) {
                    continue;
                }
                if let Some(job) = mint_extra(st, p, cloud, cap) {
                    return Some(job);
                }
            }
        }
    }

    // Phase 2 — reliability: remaining fair-share blocks. Under the
    // two-phase principle this work only starts once ALL files are
    // available; the ablation switch interleaves it instead.
    if all_avail || !config.two_phase {
        for p in 0..st.segs.len() {
            if let Some(job) = take_planned(st, p, cloud, cap) {
                return Some(job);
            }
        }
        // Over-provisioning continues while the slowest cloud is still
        // pushing its fair share (paper §6.2: "the over-provisioning
        // process will stop when the slowest cloud finishes uploading
        // its fair share or when the maximally allowed blocks are
        // transferred") — an otherwise idle fast cloud keeps minting
        // extras, which is what lets Fig. 14 survive n = 3 outages.
        if config.overprovisioning {
            let slowest_still_pushing = st.segs.iter().any(|seg| {
                (0..st.cloud_alive.len()).any(|c| !seg.planned[c].is_empty())
                    || seg.inflight.iter().any(|&i| i > 0)
            });
            if slowest_still_pushing {
                for p in 0..st.segs.len() {
                    if let Some(job) = mint_extra(st, p, cloud, cap) {
                        return Some(job);
                    }
                }
            }
        }
    }
    None
}

fn take_planned(st: &mut UploadState, p: usize, cloud: usize, cap: usize) -> Option<Job> {
    // Our own queued normal blocks first.
    if let Some(index) = st.segs[p].planned[cloud].pop_front() {
        st.segs[p].inflight[cloud] += 1;
        return Some(Job { seg: p, index });
    }
    // Orphans from dead clouds, if the security cap allows us to adopt.
    if st.segs[p].blocks_on(cloud) < cap {
        if let Some(index) = st.segs[p].reassign.pop_front() {
            st.segs[p].inflight[cloud] += 1;
            return Some(Job { seg: p, index });
        }
    }
    None
}

fn mint_extra(st: &mut UploadState, p: usize, cloud: usize, cap: usize) -> Option<Job> {
    let seg = &mut st.segs[p];
    if seg.blocks_on(cloud) >= cap {
        return None;
    }
    let n_max = seg
        .planned
        .len()
        .checked_mul(cap)
        .expect("cap fits") as u16;
    if seg.next_extra >= n_max {
        return None;
    }
    let index = seg.next_extra;
    seg.next_extra += 1;
    seg.inflight[cloud] += 1;
    Some(Job { seg: p, index })
}

fn handle_failure(
    st: &mut UploadState,
    job: Job,
    cloud: CloudId,
    error: CloudError,
    max_bounces: u32,
) {
    let fatal = matches!(
        error,
        CloudError::Unavailable { .. } | CloudError::QuotaExceeded { .. }
    );
    if fatal {
        // Fail the cloud for this batch and orphan its queued blocks.
        st.cloud_alive[cloud.0] = false;
        for seg in &mut st.segs {
            let orphans: Vec<u16> = seg.planned[cloud.0].drain(..).collect();
            seg.reassign.extend(orphans);
        }
    }
    let seg = &mut st.segs[job.seg];
    seg.bounces += 1;
    if seg.bounces <= max_bounces {
        seg.reassign.push_back(job.index);
    } else {
        st.unplaced += 1;
    }
}

/// Declares the batch finished when no work remains or none of what
/// remains is assignable (every candidate cloud is dead or at its
/// security cap). Permanently-stuck orphan blocks are counted as
/// unplaced so the report can surface degraded reliability.
fn maybe_finish(st: &mut UploadState, cap: usize) {
    if st.finished {
        return;
    }
    let n_clouds = st.cloud_alive.len();
    for p in 0..st.segs.len() {
        let seg = &st.segs[p];
        if seg.inflight.iter().any(|&i| i > 0) {
            return;
        }
        if (0..n_clouds).any(|c| st.cloud_alive[c] && !seg.planned[c].is_empty()) {
            return;
        }
        if !seg.reassign.is_empty() {
            let adoptable =
                (0..n_clouds).any(|c| st.cloud_alive[c] && seg.blocks_on(c) < cap);
            if adoptable {
                return;
            }
        }
    }
    // Nothing is in flight and nothing left is assignable: drain the
    // stuck orphans and finish.
    for seg in &mut st.segs {
        st.unplaced += seg.reassign.len();
        seg.reassign.clear();
    }
    st.finished = true;
    // Ending the batch span here — not when `run_upload_opts` returns —
    // stamps the true completion time even for detached uploads whose
    // reliability phase outlives the call.
    st.batch_guard.take();
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_crypto::Sha1;
    use unidrive_erasure::RedundancyConfig;
    use unidrive_sim::SimRuntime;

    fn make_file(path: &str, size: usize, tag: u8) -> FileUpload {
        let data: Vec<u8> = (0..size).map(|i| (i as u8).wrapping_mul(tag)).collect();
        FileUpload {
            path: path.into(),
            segments: vec![SegmentData {
                id: unidrive_meta::SegmentId(Sha1::digest(&data)),
                data: Bytes::from(data),
            }],
        }
    }

    type TestRig = (
        Arc<SimRuntime>,
        Arc<dyn Runtime>,
        CloudSet,
        Arc<Codec>,
        DataPlaneConfig,
        Arc<BandwidthProbe>,
    );

    fn setup(seed: u64, rates: &[f64]) -> TestRig {
        let sim = SimRuntime::new(seed);
        let clouds = CloudSet::new(
            rates
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    Arc::new(SimCloud::new(
                        &sim,
                        format!("c{i}"),
                        SimCloudConfig::steady(r, r * 5.0),
                    )) as Arc<dyn CloudStore>
                })
                .collect(),
        );
        let redundancy = RedundancyConfig::new(rates.len(), 3, 3, 2).unwrap();
        let config = DataPlaneConfig::with_params(redundancy, 64 * 1024);
        let codec = Arc::new(Codec::for_config(&config.redundancy).unwrap());
        let probe = Arc::new(BandwidthProbe::new(rates.len(), 1e6));
        let rt = sim.clone().as_runtime();
        (sim, rt, clouds, codec, config, probe)
    }

    #[test]
    fn upload_places_fair_share_everywhere() {
        let (_sim, rt, clouds, codec, config, probe) = setup(1, &[1e6; 5]);
        let report = run_upload(
            &rt,
            &clouds,
            &codec,
            &config,
            &probe,
            vec![make_file("f", 300_000, 3)],
        );
        assert!(report.all_available());
        assert!(report.files[0].reliable);
        assert_eq!(report.unplaced_blocks, 0);
        // Every cloud holds at least fair share (1) and at most cap (2).
        for c in 0..5u16 {
            let on_c = report.blocks.iter().filter(|(_, b)| b.cloud == c).count();
            assert!((1..=2).contains(&on_c), "cloud {c} holds {on_c}");
        }
    }

    #[test]
    fn over_provisioning_gives_fast_clouds_more_blocks() {
        // Cloud 0 is 10x faster than the rest.
        let (_sim, rt, clouds, codec, config, probe) =
            setup(2, &[10e6, 1e6, 1e6, 1e6, 1e6]);
        let report = run_upload(
            &rt,
            &clouds,
            &codec,
            &config,
            &probe,
            vec![make_file("f", 600_000, 5)],
        );
        assert!(report.all_available());
        let on_fast = report.blocks.iter().filter(|(_, b)| b.cloud == 0).count();
        let per_seg_cap = config.redundancy.per_cloud_cap();
        let segs: std::collections::HashSet<_> =
            report.blocks.iter().map(|(s, _)| *s).collect();
        // The fast cloud should be saturated at its security cap.
        assert_eq!(on_fast, per_seg_cap * segs.len(), "fast cloud not saturated");
    }

    #[test]
    fn security_cap_never_exceeded() {
        let (_sim, rt, clouds, codec, config, probe) =
            setup(3, &[20e6, 1e6, 1e6, 1e6, 1e6]);
        let report = run_upload(
            &rt,
            &clouds,
            &codec,
            &config,
            &probe,
            (0..4).map(|i| make_file(&format!("f{i}"), 200_000, i as u8 + 1)).collect(),
        );
        let cap = config.redundancy.per_cloud_cap();
        let mut per_seg_cloud: std::collections::HashMap<(SegmentId, u16), usize> =
            std::collections::HashMap::new();
        for (seg, b) in &report.blocks {
            *per_seg_cloud.entry((*seg, b.cloud)).or_default() += 1;
        }
        for ((seg, cloud), count) in per_seg_cloud {
            assert!(
                count <= cap,
                "segment {seg} has {count} blocks on cloud {cloud} (cap {cap})"
            );
        }
    }

    #[test]
    fn upload_survives_a_dead_cloud() {
        let sim = SimRuntime::new(4);
        let mut members: Vec<Arc<dyn CloudStore>> = Vec::new();
        let mut sim_clouds = Vec::new();
        for i in 0..5 {
            let c = Arc::new(SimCloud::new(
                &sim,
                format!("c{i}"),
                SimCloudConfig::steady(1e6, 5e6),
            ));
            sim_clouds.push(Arc::clone(&c));
            members.push(c);
        }
        sim_clouds[2].set_available(false);
        let clouds = CloudSet::new(members);
        let redundancy = RedundancyConfig::new(5, 3, 3, 2).unwrap();
        let config = DataPlaneConfig::with_params(redundancy, 64 * 1024);
        let codec = Arc::new(Codec::for_config(&config.redundancy).unwrap());
        let probe = Arc::new(BandwidthProbe::new(5, 1e6));
        let rt = sim.clone().as_runtime();
        let report = run_upload(
            &rt,
            &clouds,
            &codec,
            &config,
            &probe,
            vec![make_file("f", 300_000, 7)],
        );
        assert!(report.all_available(), "upload must survive one outage");
        assert!(report
            .blocks
            .iter()
            .all(|(_, b)| b.cloud != 2), "no blocks on the dead cloud");
    }

    #[test]
    fn two_phase_batches_make_all_files_available_before_reliability() {
        let (_sim, rt, clouds, codec, config, probe) =
            setup(5, &[2e6, 1e6, 1e6, 1e6, 0.5e6]);
        let files: Vec<FileUpload> = (0..5)
            .map(|i| make_file(&format!("f{i}"), 150_000, i as u8 + 1))
            .collect();
        let report = run_upload(&rt, &clouds, &codec, &config, &probe, files);
        assert!(report.all_available());
        assert_eq!(report.timeline.len(), 5);
        // Availability of the last file precedes the end of the batch
        // (reliability work continues afterwards).
        let last_avail = report.timeline.iter().map(|(t, _)| *t).max().unwrap();
        assert!(last_avail <= report.finished);
    }

    #[test]
    fn empty_and_dedup_only_files_complete_instantly() {
        let (_sim, rt, clouds, codec, config, probe) = setup(6, &[1e6; 5]);
        let report = run_upload(
            &rt,
            &clouds,
            &codec,
            &config,
            &probe,
            vec![FileUpload {
                path: "empty.txt".into(),
                segments: Vec::new(),
            }],
        );
        assert!(report.all_available());
        assert_eq!(report.blocks.len(), 0);
    }

    #[test]
    fn duplicate_segments_upload_once() {
        let (_sim, rt, clouds, codec, config, probe) = setup(7, &[1e6; 5]);
        let f1 = make_file("a", 100_000, 9);
        let mut f2 = f1.clone();
        f2.path = "b".into();
        let report = run_upload(&rt, &clouds, &codec, &config, &probe, vec![f1, f2]);
        assert!(report.all_available());
        let seg_ids: std::collections::HashSet<_> =
            report.blocks.iter().map(|(s, _)| *s).collect();
        assert_eq!(seg_ids.len(), 1, "shared segment uploaded once");
    }
}
