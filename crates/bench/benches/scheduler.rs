//! Micro-benchmarks of the schedulers under virtual time: wall-clock
//! cost of simulating uploads/downloads (the harness's own
//! efficiency), the end-to-end lock round-trip, and the overhead of
//! the `unidrive-obs` instrumentation (no-op vs installed registry).
//!
//! Uses the in-tree `microbench` harness (`cargo bench --bench
//! scheduler`); no external benchmarking crate so the workspace builds
//! offline.

use std::collections::HashSet;
use std::sync::Arc;

use unidrive_bench::microbench::run;
use unidrive_cloud::{CloudSet, CloudStore, MemCloud, SimCloud, SimCloudConfig};
use unidrive_core::{DataPlane, DataPlaneConfig, LockConfig, QuorumLock, UploadRequest};
use unidrive_erasure::RedundancyConfig;
use unidrive_obs::{Obs, Registry};
use unidrive_sim::{RealRuntime, Runtime, SimRng, SimRuntime};
use unidrive_workload::random_bytes;

/// One full 4 MB upload through the DataPlane over five simulated
/// clouds; `obs` is threaded into the plane (and the clouds) when
/// enabled.
fn sim_upload(obs: &Obs) -> usize {
    let sim = SimRuntime::new(1);
    let clouds = CloudSet::new(
        (0..5)
            .map(|i| {
                let cloud = SimCloud::new(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(1e6 * (i + 1) as f64, 2e7),
                );
                cloud.install_obs(obs.clone());
                Arc::new(cloud) as Arc<dyn CloudStore>
            })
            .collect(),
    );
    let config = DataPlaneConfig {
        obs: obs.clone(),
        ..DataPlaneConfig::with_params(RedundancyConfig::paper_default(), 1024 * 1024)
    };
    let plane = DataPlane::new(sim.clone().as_runtime(), clouds, config);
    let (report, _) = plane.upload_files(
        vec![UploadRequest {
            path: "bench".into(),
            data: random_bytes(4 * 1024 * 1024, 9),
        }],
        &HashSet::new(),
    );
    assert!(report.all_available());
    report.blocks.len()
}

fn bench_sim_upload() {
    let noop = run("scheduler/sim_upload_4mb_5_clouds/noop", 10, 0, || {
        sim_upload(&Obs::noop())
    });
    let registry = Registry::new();
    let obs = Obs::with_registry(registry);
    let instrumented = run("scheduler/sim_upload_4mb_5_clouds/obs", 10, 0, || {
        sim_upload(&obs)
    });
    println!(
        "observability overhead: {:+.2}% (target < 5%)",
        (instrumented.mean_ns() / noop.mean_ns() - 1.0) * 100.0
    );
}

fn bench_lock_round_trip() {
    let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
    let clouds = CloudSet::new(
        (0..5)
            .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
            .collect(),
    );
    let lock = QuorumLock::new(
        rt,
        clouds,
        "bench-device",
        LockConfig::default(),
        SimRng::seed_from_u64(3),
    );
    run("scheduler/quorum_lock_acquire_release_5_mem", 50, 0, || {
        let guard = lock.acquire().expect("uncontended");
        guard.release();
    });
}

fn main() {
    bench_sim_upload();
    bench_lock_round_trip();
}
