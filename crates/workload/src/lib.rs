//! # unidrive-workload
//!
//! Evaluation substrate for the UniDrive reproduction: the five-provider
//! network [`profiles`](build_multicloud) calibrated to the paper's §3.2
//! measurement study, workload [generators](trial_population) including
//! the synthetic 272-user trial of §7.3, population-scale
//! arrival/churn/session models ([`PopulationProfile`]) for the fleet
//! simulator, and the summary [statistics](Summary) the tables and
//! figures report.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod gen;
mod population;
mod profiles;
mod stats;

pub use gen::{batch, random_bytes, trial_population, FileKind, SizeBucket, TrialUser};
pub use population::{BoundedPareto, DeviceClass, Exp, PopulationProfile, Zipf};
pub use profiles::{
    build_cloud, build_multicloud, build_multicloud_shared, cloud_config, disjoint_degraded_windows, nominal_rates,
    site_by_name, Provider, Region, Site, EC2_SITES, PLANETLAB_SITES,
};
pub use stats::{pearson, quantile, Summary, TextTable};

/// Convenience: a `Duration` as fractional seconds (benches print these).
pub fn secs(d: std::time::Duration) -> f64 {
    d.as_secs_f64()
}
