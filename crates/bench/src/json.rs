//! Minimal JSON value + recursive-descent parser, shared by the
//! report/diff binaries (`trace_report`, `obs_report`,
//! `bench_compare`). Hand-rolled: the workspace builds offline with
//! zero external crates.
//!
//! Numbers parse as `f64` — every number the harness emits (counters,
//! nanosecond quantiles, microsecond trace stamps) is well inside
//! f64's 2^53 exact-integer range.

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses `text` as a single JSON document (trailing garbage is an
/// error).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_harness_shapes() {
        let doc = parse_json(
            r#"{"a": [1, 2.5, -3e2], "s": "x\"yA", "b": true, "n": null, "o": {}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\"yA"));
        assert_eq!(doc.get("b"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("n"), Some(&Json::Null));
        assert!(doc.get("o").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_numbers() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn round_trips_a_series_export() {
        let doc = parse_json(
            r#"{"series": "unidrive-obs-series/v1", "window_ns": 10000000000,
                "metrics": {"cloud.ops": {"dropbox": {"kind": "counter",
                "windows": [[0, 6], [3, 2]]}}}, "health": []}"#,
        )
        .unwrap();
        let m = doc.get("metrics").unwrap().get("cloud.ops").unwrap();
        let w = m.get("dropbox").unwrap().get("windows").unwrap();
        assert_eq!(w.as_arr().unwrap()[1].as_arr().unwrap()[0].as_f64(), Some(3.0));
    }
}
