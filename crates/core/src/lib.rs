//! # unidrive-core
//!
//! The UniDrive system itself (Middleware 2015): a server-less,
//! client-centric consumer-cloud-storage app that synergizes multiple
//! clouds through five public file-access operations.
//!
//! * **Control plane** — [`QuorumLock`] (empty-lock-file majority
//!   locking with ΔT lock breaking), [`MetadataStore`] (DES-encrypted
//!   base + delta + version files replicated to all clouds), and
//!   [`UniDriveClient::sync_once`] implementing the paper's Algorithm 1
//!   with three-way merge and conflict retention.
//! * **Data plane** — [`DataPlane`]: content-defined segmentation,
//!   non-systematic Reed-Solomon blocks, even fair-share placement,
//!   **over-provisioning** onto idle fast clouds, the
//!   availability-first / reliability-second two-phase batch principle,
//!   pull-based download with in-channel probing, and add/remove-cloud
//!   rebalancing.
//!
//! The same code runs under wall-clock or deterministic virtual time —
//! see [`unidrive_sim`].
//!
//! # Example: two devices syncing through five simulated clouds
//!
//! See `examples/quickstart.rs` in the repository root.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod control;
mod dataplane;
mod download;
mod engine;
mod folder;
mod lock;
mod maintenance;
mod plan;
mod plane;
mod probe;
mod rebalance;
mod upload;

pub use client::{ClientConfig, SyncError, SyncReport, UniDriveClient};
pub use control::{newer, MetaError, MetadataStore, RemoteState};
pub use plane::{build_plane, LockPlane, OplogPlane};
pub use dataplane::{DataPlane, FileSegmentation, UploadRequest};
pub use download::{
    run_download, run_download_in, DownloadError, DownloadReport, SegmentFetch,
};
pub use engine::{
    EngineParams, JobDesc, TransferEngine, TransferPolicy, WatchdogConfig, WireOp,
};
pub use folder::{
    scan_changes, DirFolder, FolderError, LocalChange, LocalStat, MemFolder, SyncFolder,
};
pub use lock::{LockConfig, LockError, LockGuard, QuorumLock};
pub use maintenance::{trim_overprovisioned, trim_plan};
pub use plan::{normal_assignment, s3_cloud_set, DataPlaneConfig, SegmentData};
pub use probe::BandwidthProbe;
pub use rebalance::{add_cloud, remove_cloud, RebalanceError, RebalanceOutcome};
pub use upload::{
    run_upload, run_upload_opts, BlockSink, FileUpload, FileUploadResult, UploadOptions,
    UploadReport,
};
