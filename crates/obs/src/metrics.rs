//! Atomic metric primitives: counters, gauges, log₂-bucketed
//! histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (bits stored in an atomic).
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value; `NaN` until first set.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Lock-free log₂-bucketed histogram for latencies and sizes.
///
/// The bucket of value `v > 0` is `64 - v.leading_zeros()`, i.e. one
/// plus the position of its highest set bit, so bucket boundaries are
/// exact powers of two. Alongside the buckets it tracks count, sum,
/// min and max.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket `value` falls into.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i` (0 for the zero bucket).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        match i {
            0 | 1 => i as u64,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the histogram state. (Individual
    /// atomics are read independently; in quiescent snapshots — the
    /// only kind the export path takes — the copy is exact.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((Self::bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets:
    /// the inclusive upper bound of the bucket containing the rank-`q`
    /// observation, clamped to the observed `[min, max]`. Exact to
    /// within one power of two, 0 when empty, and fully deterministic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(lo, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                // Bucket [2^(i-1), 2^i) has inclusive upper bound
                // 2*lo - 1; the two singleton buckets are exact.
                let hi = if lo <= 1 { lo } else { 2 * lo - 1 };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 2..HISTOGRAM_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(Histogram::bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_tracks_stats() {
        let h = Histogram::default();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1033);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (4, 1), (1024, 1)]);
        assert!((s.mean() - 206.6).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!((s.p50(), s.p95(), s.p99()), (0, 0, 0));
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let h = Histogram::default();
        // 90 fast observations around 1 ms, 10 slow around 1 s.
        for _ in 0..90 {
            h.record(1_000_000);
        }
        for _ in 0..10 {
            h.record(1_000_000_000);
        }
        let s = h.snapshot();
        // p50 lands in the 1 ms bucket; the upper bound clamps to max
        // of that region's observations within one power of two.
        assert!(s.p50() >= 1_000_000 && s.p50() < 2_097_152, "p50 = {}", s.p50());
        assert!(s.p95() >= 536_870_912, "p95 = {}", s.p95());
        assert_eq!(s.p99(), s.quantile(0.99));
        assert!(s.p99() <= s.max && s.p95() <= s.max);
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());

        // Single-value histograms are exact at every percentile.
        let one = Histogram::default();
        one.record(7);
        let os = one.snapshot();
        assert_eq!((os.p50(), os.p95(), os.p99()), (7, 7, 7));
    }
}
