//! Composable decorators over any [`CloudStore`].
//!
//! * [`FaultyCloud`] — deterministic failure injection for tests of the
//!   retry/failover paths.
//! * [`ThrottledCloud`] — token-bucket bandwidth limiting under any
//!   [`Runtime`]; gives the real-directory examples cloud-like speeds.
//! * [`CountingCloud`] — traffic and operation accounting used by the
//!   overhead experiments (Table 3, Fig. 13).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unidrive_obs::{Event, Obs};
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_sim::{Runtime, SimRng};

use crate::{CloudError, CloudStore, ObjectInfo, TrafficSnapshot};

/// Wraps a store, failing a configurable fraction of requests.
///
/// Failures are deterministic given the seed, so tests of UniDrive's
/// failover logic are reproducible.
pub struct FaultyCloud {
    inner: Arc<dyn CloudStore>,
    rng: Mutex<SimRng>,
    failure_prob: Mutex<f64>,
    injected: AtomicU64,
    obs: Mutex<Obs>,
}

impl std::fmt::Debug for FaultyCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyCloud")
            .field("inner", &self.inner.name())
            .field("failure_prob", &*self.failure_prob.lock())
            .finish()
    }
}

impl FaultyCloud {
    /// Wraps `inner`, failing each request with probability `p`.
    pub fn new(inner: Arc<dyn CloudStore>, p: f64, seed: u64) -> Self {
        FaultyCloud {
            inner,
            rng: Mutex::new(SimRng::seed_from_u64(seed)),
            failure_prob: Mutex::new(p),
            injected: AtomicU64::new(0),
            obs: Mutex::new(Obs::noop()),
        }
    }

    /// Adjusts the failure probability at runtime.
    pub fn set_failure_prob(&self, p: f64) {
        *self.failure_prob.lock() = p;
    }

    /// Installs an observability handle: every injected failure then
    /// increments `cloud.{name}.injected_failures` and traces an
    /// [`Event::CloudOpFailed`], so tests can reconcile retries against
    /// the exact number of faults injected.
    pub fn install_obs(&self, obs: Obs) {
        *self.obs.lock() = obs;
    }

    /// How many failures this wrapper has injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn roll(&self, op: &'static str) -> Result<(), CloudError> {
        let p = *self.failure_prob.lock();
        if self.rng.lock().chance(p) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            let obs = self.obs.lock().clone();
            obs.inc(&format!("cloud.{}.injected_failures", self.inner.name()));
            obs.event(|| Event::CloudOpFailed {
                cloud: self.inner.name().to_owned(),
                op,
                bytes: 0,
                transient: true,
            });
            Err(CloudError::transient("injected failure"))
        } else {
            Ok(())
        }
    }
}

impl CloudStore for FaultyCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        self.roll("upload")?;
        self.inner.upload(path, data)
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        self.roll("download")?;
        self.inner.download(path)
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.roll("create_dir")?;
        self.inner.create_dir(path)
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.roll("list")?;
        self.inner.list(path)
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.roll("delete")?;
        self.inner.delete(path)
    }
}

/// Wraps a store, limiting payload throughput with a token bucket.
///
/// Tokens are bytes; the bucket refills at `bytes_per_sec` and holds at
/// most one second of burst. Requests sleep on the wrapped [`Runtime`]
/// until enough tokens accumulate, so this works under both wall-clock
/// and virtual time.
pub struct ThrottledCloud {
    inner: Arc<dyn CloudStore>,
    rt: Arc<dyn Runtime>,
    bytes_per_sec: f64,
    bucket: Mutex<Bucket>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_refill: unidrive_sim::Time,
}

impl std::fmt::Debug for ThrottledCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThrottledCloud")
            .field("inner", &self.inner.name())
            .field("bytes_per_sec", &self.bytes_per_sec)
            .finish()
    }
}

impl ThrottledCloud {
    /// Wraps `inner` with a `bytes_per_sec` payload rate limit.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(inner: Arc<dyn CloudStore>, rt: Arc<dyn Runtime>, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        let now = rt.now();
        ThrottledCloud {
            inner,
            rt,
            bytes_per_sec,
            bucket: Mutex::new(Bucket {
                tokens: bytes_per_sec, // one second of initial burst
                last_refill: now,
            }),
        }
    }

    fn consume(&self, bytes: u64) {
        let mut need = bytes as f64;
        loop {
            let wait = {
                let mut b = self.bucket.lock();
                let now = self.rt.now();
                let elapsed = now.saturating_duration_since(b.last_refill);
                b.tokens = (b.tokens + elapsed.as_secs_f64() * self.bytes_per_sec)
                    .min(self.bytes_per_sec);
                b.last_refill = now;
                if b.tokens >= need {
                    b.tokens -= need;
                    return;
                }
                need -= b.tokens;
                b.tokens = 0.0;
                Duration::from_secs_f64(need / self.bytes_per_sec)
            };
            self.rt.sleep(wait);
            // After sleeping the bucket will have refilled enough; loop to
            // account for it exactly.
        }
    }
}

impl CloudStore for ThrottledCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        self.consume(data.len() as u64);
        self.inner.upload(path, data)
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let data = self.inner.download(path)?;
        self.consume(data.len() as u64);
        Ok(data)
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.inner.create_dir(path)
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.inner.list(path)
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.inner.delete(path)
    }
}

/// Wraps a store, counting operations and payload bytes.
///
/// [`SimCloud`](crate::SimCloud) counts its own traffic including
/// protocol overhead; `CountingCloud` is the backend-agnostic variant
/// used to account *payload* traffic for any store (and to attribute
/// traffic per client in multi-device experiments).
pub struct CountingCloud {
    inner: Arc<dyn CloudStore>,
    uploaded: AtomicU64,
    downloaded: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
}

impl std::fmt::Debug for CountingCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingCloud")
            .field("inner", &self.inner.name())
            .field("uploaded", &self.uploaded.load(Ordering::Relaxed))
            .field("downloaded", &self.downloaded.load(Ordering::Relaxed))
            .finish()
    }
}

impl CountingCloud {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: Arc<dyn CloudStore>) -> Self {
        CountingCloud {
            inner,
            uploaded: AtomicU64::new(0),
            downloaded: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            uploaded_bytes: self.uploaded.load(Ordering::Relaxed),
            downloaded_bytes: self.downloaded.load(Ordering::Relaxed),
            ok_requests: self.ok.load(Ordering::Relaxed),
            failed_requests: self.failed.load(Ordering::Relaxed),
        }
    }

    fn record<T>(&self, r: Result<T, CloudError>) -> Result<T, CloudError> {
        match &r {
            Ok(_) => self.ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        r
    }
}

impl CloudStore for CountingCloud {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        let len = data.len() as u64;
        let r = self.record(self.inner.upload(path, data));
        if r.is_ok() {
            self.uploaded.fetch_add(len, Ordering::Relaxed);
        }
        r
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let r = self.record(self.inner.download(path));
        if let Ok(data) = &r {
            self.downloaded.fetch_add(data.len() as u64, Ordering::Relaxed);
        }
        r
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        self.record(self.inner.create_dir(path))
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        self.record(self.inner.list(path))
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        self.record(self.inner.delete(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemCloud;
    use unidrive_sim::{RealRuntime, SimRuntime};

    fn mem() -> Arc<dyn CloudStore> {
        Arc::new(MemCloud::new("m"))
    }

    #[test]
    fn faulty_cloud_fails_roughly_at_rate() {
        let c = FaultyCloud::new(mem(), 0.3, 11);
        let fails = (0..1000)
            .filter(|_| c.upload("x", Bytes::new()).is_err())
            .count();
        assert!((200..400).contains(&fails), "fails {fails}");
    }

    #[test]
    fn faulty_cloud_rate_can_change() {
        let c = FaultyCloud::new(mem(), 1.0, 12);
        assert!(c.upload("x", Bytes::new()).is_err());
        c.set_failure_prob(0.0);
        assert!(c.upload("x", Bytes::new()).is_ok());
    }

    #[test]
    fn throttle_paces_virtual_time() {
        let sim = SimRuntime::new(13);
        let rt = sim.clone().as_runtime();
        let c = ThrottledCloud::new(mem(), rt, 1_000_000.0);
        let t0 = sim.now();
        // First MB rides the initial burst; next 2 MB take 2 s.
        for i in 0..3 {
            c.upload(&format!("f{i}"), Bytes::from(vec![0u8; 1_000_000]))
                .unwrap();
        }
        let elapsed = (sim.now() - t0).as_secs_f64();
        assert!((1.9..2.3).contains(&elapsed), "elapsed {elapsed}");
    }

    #[test]
    fn throttle_works_under_wall_clock() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let c = ThrottledCloud::new(mem(), Arc::clone(&rt), 10_000_000.0);
        let t0 = rt.now();
        // 10 MB burst + 10 MB at 10 MB/s ≈ 1 s.
        c.upload("a", Bytes::from(vec![0u8; 10_000_000])).unwrap();
        c.upload("b", Bytes::from(vec![0u8; 10_000_000])).unwrap();
        let took = (rt.now() - t0).as_secs_f64();
        assert!(took >= 0.9, "took {took}");
    }

    #[test]
    fn counting_cloud_tallies_payloads() {
        let c = CountingCloud::new(mem());
        c.upload("a", Bytes::from(vec![0u8; 100])).unwrap();
        let _ = c.download("a").unwrap();
        let _ = c.download("missing");
        let t = c.traffic();
        assert_eq!(t.uploaded_bytes, 100);
        assert_eq!(t.downloaded_bytes, 100);
        assert_eq!(t.ok_requests, 2);
        assert_eq!(t.failed_requests, 1);
    }
}
