//! **Figure 4** — impact of file size on the Web API failure rate
//! (§3.2, Princeton): larger transfers fail more; below ~2 MB the
//! increase is mild.

use std::time::Duration;

use unidrive_cloud::CloudStore;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{build_cloud, random_bytes, site_by_name, Provider, TextTable};

fn main() {
    let site = site_by_name("Princeton").expect("site exists");
    let sizes_kb: [usize; 6] = [256, 512, 1024, 2048, 4096, 8192];
    let attempts = 400;

    println!("Figure 4: failed request share by file size, Princeton, {attempts} attempts each\n");
    let mut table = TextTable::new(&["size", "Dropbox fail %", "OneDrive fail %", "GoogleDrive fail %"]);
    let mut small_rate = 0.0;
    let mut big_rate = 0.0;
    for &kb in &sizes_kb {
        let size = kb * 1024;
        let mut cells = vec![if kb >= 1024 {
            format!("{} MB", kb / 1024)
        } else {
            format!("{kb} KB")
        }];
        for provider in Provider::US {
            let sim = SimRuntime::new(4_000 + kb as u64 * 3 + provider as u64);
            let cloud = build_cloud(&sim, site, provider);
            let data = random_bytes(size, kb as u64);
            let mut failures = 0usize;
            for i in 0..attempts {
                // Raw Web API request: the paper counts per-request
                // outcomes, before any client-level retries.
                if cloud.upload(&format!("f{i}"), data.clone()).is_err() {
                    failures += 1;
                }
                sim.sleep(Duration::from_secs(60));
            }
            let rate = 100.0 * failures as f64 / attempts as f64;
            cells.push(format!("{rate:.1}"));
            if provider == Provider::Dropbox {
                if kb == sizes_kb[0] {
                    small_rate = rate;
                }
                if kb == sizes_kb[sizes_kb.len() - 1] {
                    big_rate = rate;
                }
            }
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Dropbox failure rate grows {small_rate:.1}% -> {big_rate:.1}% from 256 KB to 8 MB \
         (paper: failures rise with size, mild below 2 MB)"
    );
}
