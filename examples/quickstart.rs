//! Quickstart: two devices synchronizing a folder through five
//! simulated consumer clouds, under deterministic virtual time.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use unidrive::cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive::core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::{Runtime, SimRng, SimRuntime};

fn main() {
    // 1. A virtual-time world with five clouds of different speeds.
    let sim = SimRuntime::new(42);
    let rates = [2.0e6, 1.5e6, 1.0e6, 0.6e6, 0.3e6]; // bytes/s per connection
    let clouds = CloudSet::new(
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                Arc::new(SimCloud::new(
                    &sim,
                    format!("cloud-{i}"),
                    SimCloudConfig::steady(r, r * 4.0),
                )) as Arc<dyn CloudStore>
            })
            .collect(),
    );

    // 2. Two devices with their own local folders.
    let laptop_folder = MemFolder::new();
    let desktop_folder = MemFolder::new();
    let config = |device: &str| {
        let mut c = ClientConfig::paper_default(device);
        // N = 5 clouds, k = 3 blocks/segment, survive 2 cloud outages,
        // no single cloud can read your data; 256 KB segments.
        c.data = DataPlaneConfig::with_params(
            RedundancyConfig::new(5, 3, 3, 2).expect("valid redundancy"),
            256 * 1024,
        );
        c
    };
    let mut laptop = UniDriveClient::new(
        sim.clone().as_runtime(),
        clouds.clone(),
        laptop_folder.clone() as Arc<dyn SyncFolder>,
        config("laptop"),
        SimRng::seed_from_u64(1),
    );
    let mut desktop = UniDriveClient::new(
        sim.clone().as_runtime(),
        clouds.clone(),
        desktop_folder.clone() as Arc<dyn SyncFolder>,
        config("desktop"),
        SimRng::seed_from_u64(2),
    );

    // 3. Create a file on the laptop and sync.
    let report = (0..2_000_000u32)
        .map(|i| (i % 251) as u8)
        .collect::<Vec<u8>>();
    laptop_folder
        .write("projects/report.dat", &report, 1)
        .expect("local write");

    let t0 = sim.now();
    let up = laptop.sync_once().expect("laptop sync");
    println!(
        "laptop committed {:?} in {:.2} virtual seconds",
        up.uploaded,
        (sim.now() - t0).as_secs_f64()
    );

    // 4. The desktop polls and pulls the update.
    let t1 = sim.now();
    let down = desktop.sync_once().expect("desktop sync");
    println!(
        "desktop received {:?} in {:.2} virtual seconds",
        down.downloaded,
        (sim.now() - t1).as_secs_f64()
    );
    assert_eq!(
        desktop_folder.read("projects/report.dat").unwrap().to_vec(),
        report
    );

    // 5. Show where the erasure-coded blocks ended up: more on the fast
    //    clouds (over-provisioning), fair share everywhere (reliability),
    //    never enough on one cloud to reconstruct (security, K_s = 2).
    println!("\nblock placement per cloud (fast -> slow):");
    let image = desktop.image();
    let mut per_cloud = [0usize; 5];
    for (_, entry) in image.segments() {
        for b in &entry.blocks {
            per_cloud[b.cloud as usize] += 1;
        }
    }
    for (i, count) in per_cloud.iter().enumerate() {
        println!("  cloud-{i}: {count} blocks");
    }

    // 6. Sleep past the poll interval and confirm steady state.
    sim.sleep(Duration::from_secs(60));
    let idle = laptop.sync_once().expect("idle pass");
    assert!(idle.is_noop());
    println!("\nsteady state reached; metadata version {}", image.version);
}
