//! # unidrive-chunker
//!
//! Content-based file segmentation for UniDrive (paper §6.1): an
//! LBFS-style Rabin rolling hash ([`RabinHash`]) finds content-defined
//! cut points, and [`segment_bytes`] produces SHA-1-addressed segments
//! whose sizes honour the paper's `(0.5 θ, 1.5 θ)` constraint. Stable
//! boundaries mean a local edit re-uploads only the touched segments,
//! and identical content dedups across files.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chunker;
mod rabin;

pub use chunker::{cut_points, segment_bytes, ChunkerConfig, Segment};
pub use rabin::{RabinHash, DEFAULT_POLY};
