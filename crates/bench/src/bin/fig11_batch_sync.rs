//! **Figure 11** — end-to-end sync time for a batch of small files
//! (paper: 100 × 1 MB) from each EC2 node to the other six (§7.2).
//!
//! UniDrive runs its *real* sync protocol: an uploading
//! [`UniDriveClient`] commits the batch while six downloading clients at
//! the other sites poll and pull concurrently; the sync time runs from
//! upload start until the last downloader holds every file. Baselines
//! are pipelined per file: a sink starts a file's download as soon as
//! its upload finished (native apps notify per file).
//!
//! Shape targets: UniDrive fastest and most consistent everywhere
//! (paper: 1.33×/1.61×/1.75× vs the top-3 CCSs at each site); the
//! benchmark lands in between; the intuitive solution is worst.

use std::sync::Arc;
use std::time::Duration;

use unidrive_util::sync::Mutex;
use unidrive_baseline::{IntuitiveMultiCloud, MultiCloudBenchmark, SingleCloudClient};
use unidrive_bench::{meta_mode_from_args, metrics_out, ExperimentScale};
use unidrive_cloud::{CloudId, CloudSet};
use unidrive_core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive_erasure::RedundancyConfig;
use unidrive_meta::MetaMode;
use unidrive_obs::Obs;
use unidrive_sim::{spawn, Runtime, SimRng, SimRuntime};
use unidrive_workload::{batch, build_multicloud_shared, Summary, TextTable, EC2_SITES};

fn client_config(device: &str, theta: usize, obs: &Obs, meta_mode: MetaMode) -> ClientConfig {
    let mut c = ClientConfig::paper_default(device);
    c.meta_mode = meta_mode;
    c.data = DataPlaneConfig {
        connections_per_cloud: 5,
        obs: obs.clone(),
        ..DataPlaneConfig::with_params(RedundancyConfig::new(5, 3, 3, 2).expect("valid"), theta)
    };
    c
}

/// A pipelined baseline run: the source uploads files in order, marking
/// each done; every sink downloads each file as soon as it is marked.
/// Returns the end-to-end seconds (upload start → last sink finished).
fn pipelined_baseline<U, D>(
    sim: &Arc<SimRuntime>,
    files: &[(String, unidrive_util::bytes::Bytes)],
    sinks: usize,
    upload: U,
    download: D,
) -> Option<f64>
where
    U: Fn(usize, &str, unidrive_util::bytes::Bytes) -> bool + Send + Sync + 'static,
    D: Fn(usize, usize, &str, u64) -> bool + Send + Sync + 'static,
{
    let rt = sim.clone().as_runtime();
    let done_flags: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(vec![false; files.len()]));
    let t0 = sim.now();
    let upload = Arc::new(upload);
    let download = Arc::new(download);
    let files: Arc<Vec<(String, unidrive_util::bytes::Bytes)>> = Arc::new(files.to_vec());

    let up_task = {
        let files = Arc::clone(&files);
        let flags = Arc::clone(&done_flags);
        let upload = Arc::clone(&upload);
        spawn(&rt, "baseline-up", move || {
            let mut all_ok = true;
            for (i, (path, data)) in files.iter().enumerate() {
                all_ok &= upload(i, path, data.clone());
                flags.lock()[i] = true;
            }
            all_ok
        })
    };
    let mut sink_tasks = Vec::new();
    for s in 0..sinks {
        let files = Arc::clone(&files);
        let flags = Arc::clone(&done_flags);
        let download = Arc::clone(&download);
        let rt2 = rt.clone();
        let sim2 = sim.clone();
        sink_tasks.push(spawn(&rt, &format!("baseline-sink-{s}"), move || {
            let mut all_ok = true;
            for (i, (path, data)) in files.iter().enumerate() {
                while !flags.lock()[i] {
                    rt2.sleep(Duration::from_secs(1));
                }
                all_ok &= download(s, i, path, data.len() as u64);
            }
            (sim2.now(), all_ok)
        }));
    }
    let up_ok = up_task.join();
    let mut ok = up_ok;
    let mut last = t0;
    for t in sink_tasks {
        let (finished, sink_ok) = t.join();
        last = last.max(finished);
        ok &= sink_ok;
    }
    ok.then(|| (last - t0).as_secs_f64())
}

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = metrics_out::from_args();
    let meta_mode = meta_mode_from_args();
    let (count, size) = scale.batch;
    let sinks = EC2_SITES.len() - 1;
    println!(
        "Figure 11: end-to-end sync seconds for {count} x {} KB files, each site -> other {sinks} (meta-mode {meta_mode})\n",
        size / 1024
    );

    let headers = [
        "uploader", "UniDrive", "Benchmark", "Intuitive", "Dropbox", "OneDrive", "GoogleDrive",
    ];
    let mut table = TextTable::new(&headers);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); 6];

    for (si, site) in EC2_SITES.iter().enumerate() {
        let mut cells = vec![site.name.to_owned()];

        // --- UniDrive: the real sync protocol. ---
        {
            let sim = SimRuntime::new(1100 + si as u64);
            // Point the registry clock at this world's virtual time so
            // windowed series (--series-out) land in real windows; each
            // site's world restarts at t=0, so same-named series
            // aggregate per window index across sites (deterministic).
            sim.install_obs(metrics.obs.clone());
            let (sets, handles) = build_multicloud_shared(&sim, &EC2_SITES);
            for handle in handles.iter().flatten() {
                handle.install_obs(metrics.obs.clone());
            }
            let rt = sim.clone().as_runtime();
            let files = batch(count, size, 1100 + si as u64);
            let uploader_folder = MemFolder::new();
            let mut uploader = UniDriveClient::new(
                rt.clone(),
                sets[si].clone(),
                Arc::clone(&uploader_folder) as Arc<dyn SyncFolder>,
                client_config(&format!("up-{}", site.name), scale.theta, &metrics.obs, meta_mode),
                SimRng::seed_from_u64(40 + si as u64),
            );
            let t0 = sim.now();
            let mut tasks = Vec::new();
            for (di, dsite) in EC2_SITES.iter().enumerate() {
                if di == si {
                    continue;
                }
                let set = sets[di].clone();
                let rt2 = rt.clone();
                let sim2 = sim.clone();
                let name = format!("down-{}", dsite.name);
                let theta = scale.theta;
                let seed = 80 + di as u64;
                let target = count;
                let obs = metrics.obs.clone();
                let mode = meta_mode;
                tasks.push(spawn(&rt, &name.clone(), move || {
                    let folder = MemFolder::new();
                    let mut client = UniDriveClient::new(
                        rt2.clone(),
                        set,
                        folder as Arc<dyn SyncFolder>,
                        client_config(&name, theta, &obs, mode),
                        SimRng::seed_from_u64(seed),
                    );
                    let mut done = 0usize;
                    for _ in 0..40 {
                        if let Ok(rep) = client.sync_once() {
                            done += rep.downloaded.len();
                        }
                        if done >= target {
                            break;
                        }
                        rt2.sleep(Duration::from_secs(2));
                    }
                    (sim2.now(), done >= target)
                }));
            }
            // The local interface layer reacts to file-system events as
            // they arrive, so a big batch is committed in waves rather
            // than one monolithic round (delta-sync exists exactly for
            // this). Drop the files in groups of five and sync.
            let mut committed = 0usize;
            for group in files.chunks(5) {
                for (path, data) in group {
                    uploader_folder.write(path, data, 1).expect("local write");
                }
                committed += uploader.sync_once().expect("uploader commits").uploaded.len();
            }
            // Retry any deferred uploads.
            for _ in 0..5 {
                if committed >= count {
                    break;
                }
                committed += uploader.sync_once().expect("retry pass").uploaded.len();
            }
            let mut last = sim.now();
            let mut complete = committed == count;
            for t in tasks {
                let (finished, ok) = t.join();
                last = last.max(finished);
                complete &= ok;
            }
            let secs = (last - t0).as_secs_f64();
            means[0].push(secs);
            cells.push(format!("{secs:.0}{}", if complete { "" } else { "*" }));
            // Drain the uploader's detached reliability work before the
            // world is dropped: an abandoned world leaks its parked
            // workers, and any engine.batch span still open in them
            // would never record (a dangling parent id in the trace).
            sim.sleep(Duration::from_secs(3600));
        }

        // --- Baselines, each in a fresh world (same seeds/profiles). ---
        for sys_idx in 0..5usize {
            let sim = SimRuntime::new(1100 + si as u64);
            let (sets, _) = build_multicloud_shared(&sim, &EC2_SITES);
            let rt = sim.clone().as_runtime();
            let files = batch(count, size, 1100 + si as u64);
            let sink_sets: Vec<CloudSet> = EC2_SITES
                .iter()
                .enumerate()
                .filter(|(di, _)| *di != si)
                .map(|(di, _)| sets[di].clone())
                .collect();

            let result = match sys_idx {
                0 => {
                    let redundancy = RedundancyConfig::new(5, 3, 3, 2).expect("valid");
                    let source = Arc::new(
                        MultiCloudBenchmark::new(rt.clone(), sets[si].clone(), redundancy, 5)
                            .with_chunk_size(scale.theta),
                    );
                    let sinks_clients: Vec<Arc<MultiCloudBenchmark>> = sink_sets
                        .iter()
                        .map(|s| {
                            Arc::new(
                                MultiCloudBenchmark::new(rt.clone(), s.clone(), redundancy, 5)
                                    .with_chunk_size(scale.theta),
                            )
                        })
                        .collect();
                    let src = Arc::clone(&source);
                    pipelined_baseline(
                        &sim,
                        &files,
                        sinks,
                        move |_, path, data| {
                            
                            src.upload(path, data).is_ok()
                        },
                        {
                            let source = Arc::clone(&source);
                            move |s, _, path, _| {
                                if let Some(m) = source.manifest_of(path) {
                                    sinks_clients[s].adopt_manifest(path, m);
                                    sinks_clients[s].download(path).is_ok()
                                } else {
                                    false
                                }
                            }
                        },
                    )
                }
                1 => {
                    let source =
                        Arc::new(IntuitiveMultiCloud::new(rt.clone(), &sets[si], 5));
                    let sinks_clients: Vec<Arc<IntuitiveMultiCloud>> = sink_sets
                        .iter()
                        .map(|s| Arc::new(IntuitiveMultiCloud::new(rt.clone(), s, 5)))
                        .collect();
                    let src = Arc::clone(&source);
                    pipelined_baseline(
                        &sim,
                        &files,
                        sinks,
                        move |_, path, data| src.upload(path, data).is_ok(),
                        move |s, _, path, len| {
                            sinks_clients[s].assume_uploaded(path, len);
                            sinks_clients[s].download(path).is_ok()
                        },
                    )
                }
                n => {
                    let provider = CloudId(n - 2);
                    let source = Arc::new(SingleCloudClient::new(
                        rt.clone(),
                        Arc::clone(sets[si].get(provider)),
                        5,
                    ));
                    let sinks_clients: Vec<Arc<SingleCloudClient>> = sink_sets
                        .iter()
                        .map(|s| {
                            Arc::new(SingleCloudClient::new(
                                rt.clone(),
                                Arc::clone(s.get(provider)),
                                5,
                            ))
                        })
                        .collect();
                    let src = Arc::clone(&source);
                    pipelined_baseline(
                        &sim,
                        &files,
                        sinks,
                        move |_, path, data| src.upload(path, data).is_ok(),
                        move |s, _, path, len| {
                            sinks_clients[s].assume_uploaded(path, len);
                            sinks_clients[s].download(path).is_ok()
                        },
                    )
                }
            };
            match result {
                Some(secs) => {
                    means[1 + sys_idx].push(secs);
                    cells.push(format!("{secs:.0}"));
                }
                None => cells.push("fail".into()),
            }
        }
        table.row(cells);
    }

    println!("{}", table.render());
    let labels = ["UniDrive", "Benchmark", "Intuitive", "Dropbox", "OneDrive", "GoogleDrive"];
    for (label, m) in labels.iter().zip(&means) {
        if let Some(s) = Summary::of(m) {
            println!(
                "{label:12} mean {:7.0}s  variance {:9.0}",
                s.mean, s.variance
            );
        }
    }
    // Paper: 1.33x over the fastest CCS at each site (on average).
    if !means[0].is_empty() {
        let mut speedups = Vec::new();
        for i in 0..means[0].len() {
            let best_ccs = (3..6)
                .filter_map(|s| means[s].get(i).copied())
                .fold(f64::MAX, f64::min);
            speedups.push(best_ccs / means[0][i]);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!("\nUniDrive vs fastest CCS per site: {avg:.2}x (paper: 1.33x)");
    }
    if let Some(path) = metrics.write() {
        println!("metrics snapshot written to {path}");
    }
}
