//! Shared data-plane configuration and block-assignment planning.

use std::time::Duration;

use unidrive_chunker::ChunkerConfig;
use unidrive_cloud::RetryPolicy;
use unidrive_erasure::RedundancyConfig;
use unidrive_obs::Obs;

/// Configuration of the data plane (paper §6, plus ablation switches).
#[derive(Debug, Clone)]
pub struct DataPlaneConfig {
    /// Erasure-coding and placement parameters (N, k, K_r, K_s).
    pub redundancy: RedundancyConfig,
    /// Content-defined segmentation parameters (θ, window, and the
    /// rolling-hash kind: paper-faithful Rabin, or the several-times
    /// faster FastCDC-style gear hash — see
    /// [`ChunkerKind`](unidrive_chunker::ChunkerKind)).
    pub chunker: ChunkerConfig,
    /// Concurrent connections per cloud (the paper uses up to 5).
    pub connections_per_cloud: usize,
    /// Retry policy for transient Web API failures.
    pub retry: RetryPolicy,
    /// Enable over-provisioned parity blocks (paper §6.2). Disabling
    /// reduces UniDrive to the "multi-cloud benchmark" upload behaviour.
    pub overprovisioning: bool,
    /// Enable the availability-first / reliability-second two-phase
    /// batch principle. Disabling interleaves both kinds of work.
    pub two_phase: bool,
    /// Enable in-channel probing (download tail duplication onto faster
    /// clouds). Disabling reduces downloads to plain idle-pull.
    pub probing: bool,
    /// Give up on placing a block after this many failed placements
    /// across the batch (each failure re-queues it elsewhere first).
    pub max_block_bounces: u32,
    /// Download tail-duplication threshold: an idle cloud duplicates a
    /// block in flight on a cloud at least this many times slower.
    pub dup_speed_ratio: f64,
    /// Upper bound on how long an idle transfer-engine worker parks
    /// before re-polling its policy. `None` (the default) parks until a
    /// completion or failure actually notifies it — the former 5 ms
    /// `IDLE_POLL` constant, kept sweepable for ablations.
    pub idle_wait: Option<Duration>,
    /// Worker threads for the CPU-bound ingest pipeline in
    /// [`DataPlane::upload_files`](crate::DataPlane::upload_files):
    /// cut-point discovery scans disjoint buffer slices on the pool,
    /// and per-segment hashing fans out across it. Cut points are
    /// byte-identical to the serial scan and hash results are
    /// collected by input index, so plans, metrics, and traces are
    /// byte-identical at any width — only wall clock changes. 1 (the
    /// default) runs strictly inline on the calling thread.
    pub ingest_threads: usize,
    /// Observability handle threaded through the schedulers, retries,
    /// and the bandwidth probe (no-op by default; see `unidrive-obs`).
    pub obs: Obs,
    /// Stall watchdog + flight recorder for every transfer-engine run
    /// (see [`WatchdogConfig`](crate::WatchdogConfig)). `None` (the
    /// default) leaves engine behavior untouched.
    pub watchdog: Option<crate::engine::WatchdogConfig>,
}

impl DataPlaneConfig {
    /// The paper's evaluation configuration: N = 5, k = 3, K_r = 3,
    /// K_s = 2, θ = 4 MB, 5 connections per cloud, everything enabled.
    pub fn paper_default() -> Self {
        DataPlaneConfig {
            redundancy: RedundancyConfig::paper_default(),
            chunker: ChunkerConfig::paper_default(),
            connections_per_cloud: 5,
            retry: RetryPolicy::new(),
            overprovisioning: true,
            two_phase: true,
            probing: true,
            max_block_bounces: 8,
            dup_speed_ratio: 1.5,
            idle_wait: None,
            ingest_threads: 1,
            obs: Obs::noop(),
            watchdog: None,
        }
    }

    /// Same as [`paper_default`](DataPlaneConfig::paper_default) but with
    /// the given redundancy and segment size (handy in tests, which use
    /// smaller θ).
    pub fn with_params(redundancy: RedundancyConfig, theta: usize) -> Self {
        DataPlaneConfig {
            redundancy,
            chunker: ChunkerConfig::new(theta),
            ..DataPlaneConfig::paper_default()
        }
    }
}

/// Deterministic even assignment of the normal parity blocks: block `i`
/// of a segment goes to cloud `i mod N`, so every cloud receives exactly
/// its fair share `⌈k/K_r⌉` (paper §6.2, "Basic Upload Scheduling").
pub fn normal_assignment(redundancy: &RedundancyConfig) -> Vec<Vec<u16>> {
    let n = redundancy.clouds();
    let total = redundancy.normal_block_count();
    let mut per_cloud: Vec<Vec<u16>> = vec![Vec::new(); n];
    for i in 0..total {
        per_cloud[i % n].push(i as u16);
    }
    per_cloud
}

/// Builds the user's multi-cloud from S3-compatible HTTP endpoints:
/// one [`S3Cloud`](unidrive_cloud::S3Cloud) per endpoint, each with a
/// connection pool sized by
/// [`connections_per_cloud`](DataPlaneConfig::connections_per_cloud)
/// (the paper's "up to 5 TCP connections to each cloud", §6.1).
///
/// The stores are returned bare: the sync engine already applies
/// [`DataPlaneConfig::retry`] around every Web API call, exactly as it
/// does for simulated or in-memory members, so wrapping retries here
/// would double them. Compose
/// [`CloudBuilder`](unidrive_cloud::CloudBuilder) stages around the
/// members first if a deployment wants shaping or observation.
pub fn s3_cloud_set(
    rt: &std::sync::Arc<dyn unidrive_sim::Runtime>,
    endpoints: &[unidrive_cloud::S3Endpoint],
    config: &DataPlaneConfig,
) -> unidrive_cloud::CloudSet {
    use std::sync::Arc;
    use unidrive_cloud::{CloudStore, S3Cloud};
    unidrive_cloud::CloudSet::new(
        endpoints
            .iter()
            .map(|ep| {
                Arc::new(S3Cloud::connect(rt, ep, config.connections_per_cloud))
                    as Arc<dyn CloudStore>
            })
            .collect(),
    )
}

/// A snapshot of one segment's plaintext, shared across upload workers.
#[derive(Debug, Clone)]
pub struct SegmentData {
    /// Content-addressed id.
    pub id: unidrive_meta::SegmentId,
    /// Plaintext bytes.
    pub data: unidrive_util::bytes::Bytes,
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_assignment_is_even_and_complete() {
        let cfg = RedundancyConfig::paper_default(); // fair share 1, N=5
        let a = normal_assignment(&cfg);
        assert_eq!(a.len(), 5);
        for (c, blocks) in a.iter().enumerate() {
            assert_eq!(blocks.len(), cfg.fair_share(), "cloud {c}");
        }
        let mut all: Vec<u16> = a.concat();
        all.sort();
        assert_eq!(all, (0..cfg.normal_block_count() as u16).collect::<Vec<_>>());
    }

    #[test]
    fn normal_assignment_with_larger_fair_share() {
        let cfg = RedundancyConfig::new(4, 6, 3, 1).unwrap(); // fair share 2
        let a = normal_assignment(&cfg);
        for blocks in &a {
            assert_eq!(blocks.len(), 2);
        }
    }
}
