//! # unidrive-cloud
//!
//! The minimal consumer-cloud-storage abstraction UniDrive builds on:
//! a [`CloudStore`] trait with exactly the five public RESTful Web API
//! operations every CCS offers third-party apps (paper §4) — upload,
//! download, create directory, list, delete — plus the backends and
//! decorators the reproduction needs:
//!
//! * [`MemCloud`] — instantaneous in-memory store (tests).
//! * [`SimCloud`] — a cloud behind a simulated network with fluctuating
//!   bandwidth, latency, size-dependent transient failures, degraded
//!   windows, quotas, and outage switches (the evaluation substrate).
//! * [`LocalDirCloud`] — a directory on disk (real-bytes examples).
//! * [`ChaosCloud`] / [`FaultPlan`] — deterministic scheduled fault
//!   injection (transient bursts, outages, quota exhaustion, latency
//!   spikes, torn uploads, delayed visibility) over any store.
//! * [`ThrottledCloud`], [`CountingCloud`] — composable decorators for
//!   bandwidth limiting and traffic accounting.
//! * [`ObservedCloud`] / [`CloudHealth`] / [`HealthBoard`] — the
//!   measurement decorator and per-cloud health scoreboard (EWMA
//!   latency, windowed error rate, availability state machine).
//! * [`Retry`] / [`RetryPolicy`] — bounded-backoff retries for
//!   transient Web API failures.
//! * [`TokenBucket`] / [`QpsSeries`] — deterministic per-cloud
//!   request-rate shaping and accounting for fleet-scale load.
//!
//! See the crate-level example on [`CloudStore`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod fault;
pub mod health;
mod local;
mod mem;
mod observed;
mod qps;
mod retry;
mod sim_cloud;
mod store;
mod wrappers;

pub use error::{CloudError, CloudOp};
pub use fault::{ChaosCloud, FaultEvent, FaultKind, FaultPlan};
pub use health::{
    CloudHealth, HealthBoard, HealthConfig, HealthState, HealthTracker, HealthTransition,
    WindowHealth,
};
pub use local::LocalDirCloud;
pub use mem::MemCloud;
pub use observed::ObservedCloud;
pub use qps::{QpsSeries, TokenBucket};
pub use retry::{Retry, RetryPolicy};
pub use sim_cloud::{FailureProfile, SimCloud, SimCloudConfig, TrafficCounters, TrafficSnapshot};
pub use store::{split_path, validate_path, CloudId, CloudSet, CloudStore, ObjectInfo};
pub use wrappers::{CountingCloud, ThrottledCloud};
