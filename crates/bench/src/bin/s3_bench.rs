//! **s3_bench** — wall-clock throughput of the HTTP backend.
//!
//! Boots an in-process [`MockS3`] on an ephemeral port and drives an
//! [`S3Cloud`] through the pooled std-only HTTP client, measuring each
//! Web API op end to end: request framing, connection checkout,
//! loopback TCP, server routing, and response parsing. Loopback wipes
//! out network variance, so what the rows track is the *client-side*
//! cost of the real-backend path — the serialization and pooling
//! overhead UniDrive adds on top of a provider's wire time. Rows:
//!
//! - `upload` / `download` — one object per iteration, several sizes
//! - `append` — read-modify-write through HTTP (download + upload),
//!   constant payload against a bounded object
//! - `list` — one directory of 32 entries
//! - `upload_delete` — full object lifecycle per iteration
//!
//! Like `bench_kernels`, percentiles are exact sample ranks and
//! results export as JSON with a fixed schema and row order — values
//! are wall clock and vary run to run, the shape never does.
//!
//! Usage: `s3_bench [--quick|quick] [--out PATH]`
//! (default out: `BENCH_s3.json`).

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use unidrive_cloud::{CloudStore, MockS3, S3Cloud, S3Endpoint};
use unidrive_sim::{RealRuntime, Runtime};
use unidrive_util::bytes::Bytes;
use unidrive_workload::random_bytes;

struct Row {
    op: &'static str,
    bytes: usize,
    iters: u64,
    mb_per_s: f64,
    mean_ns: u64,
    p50_ns: u64,
    p95_ns: u64,
}

/// Exact rank-`q` percentile of the (sorted) samples.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Harness {
    budget: Duration,
    rows: Vec<Row>,
}

impl Harness {
    /// Times `f` until the row budget is spent (≥ 3 iterations), with
    /// one untimed warm-up. `bytes` is the payload one iteration moves.
    fn row<T>(&mut self, op: &'static str, bytes: usize, mut f: impl FnMut() -> T) {
        black_box(f());
        let start = Instant::now();
        let mut samples: Vec<u64> = Vec::with_capacity(256);
        while samples.len() < 3 || (start.elapsed() < self.budget && samples.len() < 10_000) {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as u64);
        }
        let iters = samples.len() as u64;
        let mean_ns = samples.iter().sum::<u64>() as f64 / iters as f64;
        samples.sort_unstable();
        let row = Row {
            op,
            bytes,
            iters,
            mb_per_s: bytes as f64 / (mean_ns / 1e9).max(1e-12) / (1024.0 * 1024.0),
            mean_ns: mean_ns as u64,
            p50_ns: percentile(&samples, 0.50),
            p95_ns: percentile(&samples, 0.95),
        };
        println!(
            "{:<14} {:>9} B {:>6} it {:>10.1} MiB/s  (mean {:>9} ns, p50 {:>9}, p95 {:>9})",
            row.op, row.bytes, row.iters, row.mb_per_s, row.mean_ns, row.p50_ns, row.p95_ns
        );
        self.rows.push(row);
    }

    fn to_json(&self, mode: &str) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n\"s3_bench\": \"unidrive/v1\",\n");
        let _ = writeln!(out, "\"mode\": \"{mode}\",");
        out.push_str("\"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"op\": \"{}\", \"bytes\": {}, \"iters\": {}, \
                 \"mb_per_s\": {:.2}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}}}",
                r.op, r.bytes, r.iters, r.mb_per_s, r.mean_ns, r.p50_ns, r.p95_ns
            );
        }
        out.push_str("\n]\n}\n");
        out
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_s3.json".to_owned());

    let server = MockS3::start().unwrap_or_else(|e| {
        eprintln!("s3_bench: cannot bind mock server: {e}");
        std::process::exit(1);
    });
    let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
    let endpoint = S3Endpoint::new("s3", server.addr(), "bench");
    // The paper's data plane opens up to 5 connections per cloud; the
    // bench drives ops serially, so the pool mainly exercises reuse.
    let cloud = S3Cloud::connect(&rt, &endpoint, 5);

    let mut h = Harness {
        budget: Duration::from_millis(if quick { 60 } else { 300 }),
        rows: Vec::new(),
    };

    let sizes: &[usize] = &[4 * 1024, 256 * 1024, 1024 * 1024];
    for &size in sizes {
        let payload = random_bytes(size, 0x5335 ^ size as u64);
        h.row("upload", size, || {
            cloud.upload("bench/up.bin", payload.clone()).expect("upload")
        });
    }
    for &size in sizes {
        let payload = random_bytes(size, 0x5336 ^ size as u64);
        cloud.upload("bench/down.bin", payload).expect("seed download");
        h.row("download", size, || {
            black_box(cloud.download("bench/down.bin").expect("download"))
        });
    }

    // Append is the composed RMW over HTTP; reset the object each
    // iteration so the cost stays a function of the payload, not of an
    // unboundedly growing log.
    let chunk = random_bytes(16 * 1024, 0x5337);
    h.row("append", chunk.len(), || {
        cloud.upload("bench/log.bin", chunk.clone()).expect("reset");
        cloud.append("bench/log.bin", chunk.clone()).expect("append")
    });

    for i in 0..32 {
        cloud
            .upload(&format!("bench/dir/f{i:02}"), Bytes::from_static(b"x"))
            .expect("seed listing");
    }
    h.row("list", 0, || {
        let entries = cloud.list("bench/dir").expect("list");
        assert_eq!(entries.len(), 32);
        black_box(entries)
    });

    let small = random_bytes(4 * 1024, 0x5338);
    h.row("upload_delete", small.len(), || {
        cloud.upload("bench/tmp.bin", small.clone()).expect("upload");
        cloud.delete("bench/tmp.bin").expect("delete")
    });

    let json = h.to_json(if quick { "quick" } else { "full" });
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("s3_bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {} rows to {out_path} ({} requests served)",
        h.rows.len(),
        server.requests()
    );
}
