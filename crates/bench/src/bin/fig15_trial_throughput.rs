//! **Figures 15 & §7.3 statistics** — the synthetic 272-user trial:
//! average upload throughput at different geo-locations grouped by
//! file-size bucket, plus the deployment statistics the paper reports.
//!
//! Shape targets: throughputs at different locations are close to each
//! other within each size bucket (UniDrive masks location disparity);
//! larger files achieve higher, more stable throughput; >1 MB files
//! exceed ~10 Mbit/s almost everywhere.

use std::collections::BTreeMap;
use std::sync::Arc;

use unidrive_baseline::UniDriveTransfer;
use unidrive_bench::{mbps, ExperimentScale};
use unidrive_cloud::{CloudSet, CloudStore, SimCloud};
use unidrive_core::DataPlaneConfig;
use unidrive_erasure::RedundancyConfig;
use unidrive_sim::SimRuntime;
use unidrive_workload::{
    cloud_config, random_bytes, trial_population, SizeBucket, TextTable,
};

fn main() {
    let scale = ExperimentScale::from_args();
    let users = if scale.repeats >= 5 { 272 } else { 80 };
    let files_per_user = if scale.repeats >= 5 { 8 } else { 4 };
    let population = trial_population(1500, users, files_per_user);

    println!(
        "Figure 15: trial upload throughput (Mbit/s) by site and size bucket \
         ({users} users, {files_per_user} files each)\n"
    );

    // site -> bucket -> throughput samples.
    let mut by_site: BTreeMap<&str, BTreeMap<SizeBucket, Vec<f64>>> = BTreeMap::new();
    let mut total_files = 0usize;
    let mut total_bytes = 0u64;
    let mut op_failures = 0usize;

    for user in &population {
        let sim = SimRuntime::new(1500 + user.id as u64);
        let mut handles: Vec<Arc<SimCloud>> = Vec::new();
        let members: Vec<Arc<dyn CloudStore>> = user
            .providers
            .iter()
            .map(|&p| {
                let c = Arc::new(SimCloud::new(&sim, p.name(), cloud_config(user.site, p)));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        let n = members.len();
        let clouds = CloudSet::new(members);
        let redundancy = RedundancyConfig::new(n, 3, 3, 2).expect("3..=5 clouds valid");
        let config = DataPlaneConfig {
            connections_per_cloud: 5,
            ..DataPlaneConfig::with_params(redundancy, scale.theta)
        };
        let client = UniDriveTransfer::new(sim.clone().as_runtime(), clouds, config);

        for (fi, (_, size)) in user.files.iter().enumerate() {
            // Cap the extreme tail so a single run stays tractable.
            let size = (*size).min(16 * 1024 * 1024) as usize;
            let data = random_bytes(size, (user.id * 1000 + fi) as u64);
            total_files += 1;
            total_bytes += size as u64;
            match client.upload(&format!("u{}-f{fi}", user.id), data) {
                Ok(took) => {
                    by_site
                        .entry(user.site.name)
                        .or_default()
                        .entry(SizeBucket::of(size as u64))
                        .or_default()
                        .push(mbps(size, took));
                }
                Err(_) => op_failures += 1,
            }
        }
    }

    let mut table = TextTable::new(&["site", "<100KB", "100KB-1MB", "1MB-10MB", ">10MB"]);
    let mut per_bucket_site_means: BTreeMap<SizeBucket, Vec<f64>> = BTreeMap::new();
    for (site, buckets) in &by_site {
        let mut cells = vec![site.to_string()];
        for bucket in SizeBucket::ALL {
            match buckets.get(&bucket) {
                Some(v) if !v.is_empty() => {
                    let mean = v.iter().sum::<f64>() / v.len() as f64;
                    per_bucket_site_means.entry(bucket).or_default().push(mean);
                    cells.push(format!("{mean:.1}"));
                }
                _ => cells.push("-".into()),
            }
        }
        table.row(cells);
    }
    println!("{}", table.render());

    // §7.3 statistics.
    println!("deployment: {users} users, {total_files} files, {:.1} GB uploaded", total_bytes as f64 / 1e9);
    println!(
        "complete-operation success rate: {:.1}% (paper: 98.4% despite 82.5% API success)",
        100.0 * (1.0 - op_failures as f64 / total_files.max(1) as f64)
    );
    for bucket in SizeBucket::ALL {
        if let Some(means) = per_bucket_site_means.get(&bucket) {
            if means.len() >= 2 {
                let max = means.iter().cloned().fold(0.0f64, f64::max);
                let min = means.iter().cloned().fold(f64::MAX, f64::min);
                println!(
                    "{:10} cross-site mean-throughput spread: {:.1}x",
                    bucket.label(),
                    max / min
                );
            }
        }
    }
    println!("(paper: throughputs close across locations; >10 Mbit/s for files above 1 MB)");
}
