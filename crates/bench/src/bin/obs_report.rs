//! **Obs report** — human-readable digest and schema validator for the
//! windowed-series exports (`--series-out`) that the benches and the
//! fleet sim write (schema `unidrive-obs-series/v1`, see
//! `unidrive_obs::series`).
//!
//! The digest prints one line per `(metric, label)` series — window
//! span, totals, and a coarse per-window sparkline — and, when the
//! document embeds a health scoreboard, an ASCII availability lane per
//! cloud (`H` healthy, `d` degraded, `X` down, `.` idle) with its
//! state transitions.
//!
//! `--validate` machine-checks the document instead and exits non-zero
//! on any violation:
//!
//! * schema tag and positive `window_ns`;
//! * window indices strictly increasing within every series;
//! * sample windows internally ordered: `min ≤ p50 ≤ p95 ≤ p99 ≤ max`
//!   and `count ≥ 1` (the quantile-monotonicity guarantee that
//!   `HistogramSnapshot` merging must preserve);
//! * counter windows non-negative;
//! * health rows: states drawn from `{healthy, degraded, down}`,
//!   timelines strictly increasing, error rates within `[0, 1]`.
//!
//! Usage: `obs_report SERIES.json [--validate]`.

use unidrive_bench::json::{parse_json, Json};

/// Sparkline glyphs, low to high.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Per-window magnitude of one series window value, for the sparkline.
fn window_magnitude(w: &Json) -> f64 {
    match w {
        // Counter window: [index, sum].
        Json::Arr(pair) => pair.get(1).and_then(Json::as_f64).unwrap_or(0.0),
        // Sample window: object; plot the per-window sum.
        _ => w.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
    }
}

fn window_index(w: &Json) -> Option<i64> {
    match w {
        Json::Arr(pair) => pair.first().and_then(Json::as_f64).map(|v| v as i64),
        _ => w.get("i").and_then(Json::as_f64).map(|v| v as i64),
    }
}

fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let idx = ((v / max) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

fn state_char(state: &str) -> char {
    match state {
        "healthy" => 'H',
        "degraded" => 'd',
        "down" => 'X',
        _ => '?',
    }
}

/// Walks every `(metric, label)` series in document order.
fn each_series<'a>(doc: &'a Json, mut f: impl FnMut(&str, &str, &'a Json)) {
    let Some(metrics) = doc.get("metrics").and_then(Json::as_obj) else {
        return;
    };
    for (metric, labels) in metrics {
        if let Some(labels) = labels.as_obj() {
            for (label, series) in labels {
                f(metric, label, series);
            }
        }
    }
}

fn digest(doc: &Json) {
    let window_ns = doc.get("window_ns").and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "series document: window {}s",
        window_ns / 1e9
    );
    let mut count = 0usize;
    each_series(doc, |metric, label, series| {
        count += 1;
        let kind = series.get("kind").and_then(Json::as_str).unwrap_or("?");
        let windows = series
            .get("windows")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        let first = windows.first().and_then(window_index).unwrap_or(0);
        let last = windows.last().and_then(window_index).unwrap_or(0);
        let values: Vec<f64> = windows.iter().map(window_magnitude).collect();
        // `+ 0.0` folds the empty-sum's negative zero away.
        let total: f64 = values.iter().sum::<f64>() + 0.0;
        println!(
            "  {metric:<24} {label:<12} {kind:<8} {n:>4} windows [{first}..{last}]  total {total:.0}  {spark}",
            n = windows.len(),
            spark = sparkline(&values),
        );
    });
    println!("  ({count} series)");

    let health = doc
        .get("health")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if health.is_empty() {
        return;
    }
    println!("\nhealth scoreboard ({} clouds):", health.len());
    // Common window span across all timelines, so lanes align.
    let span: Vec<i64> = health
        .iter()
        .flat_map(|row| {
            row.get("timeline")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(|w| w.get("i").and_then(Json::as_f64).map(|v| v as i64))
                .collect::<Vec<_>>()
        })
        .collect();
    let (lo, hi) = (
        span.iter().min().copied().unwrap_or(0),
        span.iter().max().copied().unwrap_or(0),
    );
    for row in health {
        let cloud = row.get("cloud").and_then(Json::as_str).unwrap_or("?");
        let state = row.get("state").and_then(Json::as_str).unwrap_or("?");
        let mut lane = vec!['.'; (hi - lo + 1).max(1) as usize];
        let timeline = row
            .get("timeline")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        for w in timeline {
            let (Some(i), Some(s)) = (
                w.get("i").and_then(Json::as_f64).map(|v| v as i64),
                w.get("state").and_then(Json::as_str),
            ) else {
                continue;
            };
            lane[(i - lo) as usize] = state_char(s);
        }
        let transitions = row
            .get("transitions")
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        let trans: Vec<String> = transitions
            .iter()
            .filter_map(|t| {
                let w = t.get("window").and_then(Json::as_f64)? as i64;
                let from = t.get("from").and_then(Json::as_str)?;
                let to = t.get("to").and_then(Json::as_str)?;
                Some(format!("w{w}:{from}→{to}"))
            })
            .collect();
        println!(
            "  {cloud:<8} {state:<8} |{}|  {}",
            lane.into_iter().collect::<String>(),
            if trans.is_empty() {
                "steady".to_owned()
            } else {
                trans.join(" ")
            }
        );
    }
}

/// Schema checks; returns every violation found (empty = valid).
fn validate(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("series").and_then(Json::as_str) != Some("unidrive-obs-series/v1") {
        errs.push("missing or wrong schema tag \"series\"".to_owned());
    }
    match doc.get("window_ns").and_then(Json::as_f64) {
        Some(w) if w > 0.0 => {}
        _ => errs.push("window_ns must be a positive number".to_owned()),
    }

    each_series(doc, |metric, label, series| {
        let at = format!("{metric}/{label}");
        let kind = series.get("kind").and_then(Json::as_str).unwrap_or("");
        if kind != "counter" && kind != "sample" {
            errs.push(format!("{at}: bad kind {kind:?}"));
        }
        let Some(windows) = series.get("windows").and_then(Json::as_arr) else {
            errs.push(format!("{at}: missing windows array"));
            return;
        };
        let mut prev: Option<i64> = None;
        for w in windows {
            let Some(i) = window_index(w) else {
                errs.push(format!("{at}: window without an index"));
                continue;
            };
            if let Some(p) = prev {
                if i <= p {
                    errs.push(format!("{at}: windows not strictly increasing at {i}"));
                }
            }
            prev = Some(i);
            match kind {
                "counter" if window_magnitude(w) < 0.0 => {
                    errs.push(format!("{at}: negative counter delta in window {i}"));
                }
                "sample" => {
                    let field =
                        |k: &str| w.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
                    let (count, min, p50, p95, p99, max) = (
                        field("count"),
                        field("min"),
                        field("p50"),
                        field("p95"),
                        field("p99"),
                        field("max"),
                    );
                    if count.is_nan() || count < 1.0 {
                        errs.push(format!("{at}: sample window {i} with count < 1"));
                    }
                    // The quantile-monotonicity contract, including
                    // across merged sparse windows.
                    if !(min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= max) {
                        errs.push(format!(
                            "{at}: window {i} breaks min ≤ p50 ≤ p95 ≤ p99 ≤ max \
                             ({min} / {p50} / {p95} / {p99} / {max})"
                        ));
                    }
                }
                _ => {}
            }
        }
    });

    for row in doc
        .get("health")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        let cloud = row.get("cloud").and_then(Json::as_str).unwrap_or("?");
        let ok_state =
            |s: &str| matches!(s, "healthy" | "degraded" | "down");
        match row.get("state").and_then(Json::as_str) {
            Some(s) if ok_state(s) => {}
            other => errs.push(format!("health {cloud}: bad state {other:?}")),
        }
        let mut prev: Option<i64> = None;
        for w in row
            .get("timeline")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            let i = w.get("i").and_then(Json::as_f64).map(|v| v as i64);
            let Some(i) = i else {
                errs.push(format!("health {cloud}: timeline window without index"));
                continue;
            };
            if let Some(p) = prev {
                if i <= p {
                    errs.push(format!(
                        "health {cloud}: timeline not strictly increasing at {i}"
                    ));
                }
            }
            prev = Some(i);
            if let Some(r) = w.get("err_rate").and_then(Json::as_f64) {
                if !(0.0..=1.0).contains(&r) {
                    errs.push(format!(
                        "health {cloud}: err_rate {r} outside [0,1] in window {i}"
                    ));
                }
            }
            match w.get("state").and_then(Json::as_str) {
                Some(s) if ok_state(s) => {}
                other => errs.push(format!(
                    "health {cloud}: bad timeline state {other:?} in window {i}"
                )),
            }
        }
        for t in row
            .get("transitions")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            for key in ["from", "to"] {
                match t.get(key).and_then(Json::as_str) {
                    Some(s) if ok_state(s) => {}
                    other => errs.push(format!(
                        "health {cloud}: bad transition {key} {other:?}"
                    )),
                }
            }
        }
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let validate_only = args.iter().any(|a| a == "--validate");
    let path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .cloned();
    let Some(path) = path else {
        eprintln!("usage: obs_report SERIES.json [--validate]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_report: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obs_report: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };

    if validate_only {
        let errs = validate(&doc);
        if errs.is_empty() {
            let mut series = 0usize;
            each_series(&doc, |_, _, _| series += 1);
            let health = doc
                .get("health")
                .and_then(Json::as_arr)
                .map(<[Json]>::len)
                .unwrap_or(0);
            println!("obs_report validate: OK ({series} series, {health} health rows)");
        } else {
            for e in &errs {
                eprintln!("obs_report validate: {e}");
            }
            eprintln!("obs_report validate: {} violation(s) in {path}", errs.len());
            std::process::exit(1);
        }
    } else {
        digest(&doc);
    }
}
