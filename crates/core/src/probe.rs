//! In-channel bandwidth probing (paper §6.2).
//!
//! Rather than predicting cloud performance or issuing explicit probes,
//! UniDrive treats every completed block transfer as a measurement: the
//! scheduler tracks the average **per-connection** throughput of each
//! cloud (per-connection, because several concurrent HTTP connections
//! serve the same cloud and scheduling is per block). An exponential
//! moving average smooths the noisy samples while following the
//! minute-scale fluctuations the measurement study observed.

use unidrive_util::sync::Mutex;
use std::time::Duration;

use unidrive_cloud::CloudId;
use unidrive_obs::Obs;

/// Per-cloud exponential-moving-average throughput estimator.
#[derive(Debug)]
pub struct BandwidthProbe {
    alpha: f64,
    estimates: Mutex<Vec<Estimate>>,
    obs: Obs,
}

#[derive(Debug, Clone, Copy)]
struct Estimate {
    bytes_per_sec: f64,
    samples: u64,
}

impl BandwidthProbe {
    /// Creates a probe for `clouds` clouds, all starting at the neutral
    /// `initial` estimate (bytes/second) so no cloud is preferred before
    /// any traffic flows.
    pub fn new(clouds: usize, initial: f64) -> Self {
        BandwidthProbe {
            alpha: 0.3,
            estimates: Mutex::new(vec![
                Estimate {
                    bytes_per_sec: initial,
                    samples: 0,
                };
                clouds
            ]),
            obs: Obs::noop(),
        }
    }

    /// Builder-style: publishes each cloud's EMA estimate as a
    /// `probe.cloud{N}.ema_bytes_per_sec` gauge (plus a `probe.samples`
    /// counter) on every recorded sample.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Records one completed transfer of `bytes` that took `elapsed`.
    /// Zero-duration samples are ignored.
    pub fn record(&self, cloud: CloudId, bytes: u64, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 || bytes == 0 {
            return;
        }
        let sample = bytes as f64 / secs;
        let ema = {
            let mut est = self.estimates.lock();
            let e = &mut est[cloud.0];
            if e.samples == 0 {
                e.bytes_per_sec = sample;
            } else {
                e.bytes_per_sec = self.alpha * sample + (1.0 - self.alpha) * e.bytes_per_sec;
            }
            e.samples += 1;
            e.bytes_per_sec
        };
        if self.obs.is_enabled() {
            self.obs
                .set_gauge(&format!("probe.cloud{}.ema_bytes_per_sec", cloud.0), ema);
            self.obs.inc("probe.samples");
        }
    }

    /// Current per-connection throughput estimate (bytes/second).
    pub fn speed(&self, cloud: CloudId) -> f64 {
        self.estimates.lock()[cloud.0].bytes_per_sec
    }

    /// Number of samples recorded for `cloud`.
    pub fn samples(&self, cloud: CloudId) -> u64 {
        self.estimates.lock()[cloud.0].samples
    }

    /// Cloud ids sorted fastest-first.
    pub fn ranking(&self) -> Vec<CloudId> {
        let est = self.estimates.lock();
        let mut ids: Vec<usize> = (0..est.len()).collect();
        ids.sort_by(|&a, &b| {
            est[b]
                .bytes_per_sec
                .partial_cmp(&est[a].bytes_per_sec)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ids.into_iter().map(CloudId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_replaces_seed() {
        let p = BandwidthProbe::new(2, 1e6);
        p.record(CloudId(0), 10_000_000, Duration::from_secs(1));
        assert_eq!(p.speed(CloudId(0)), 10e6);
        assert_eq!(p.speed(CloudId(1)), 1e6);
    }

    #[test]
    fn ema_converges_toward_new_rate() {
        let p = BandwidthProbe::new(1, 1e6);
        for _ in 0..30 {
            p.record(CloudId(0), 5_000_000, Duration::from_secs(1));
        }
        let s = p.speed(CloudId(0));
        assert!((4.9e6..5.1e6).contains(&s), "speed {s}");
    }

    #[test]
    fn ranking_orders_fastest_first() {
        let p = BandwidthProbe::new(3, 1e6);
        p.record(CloudId(0), 1_000_000, Duration::from_secs(1));
        p.record(CloudId(1), 9_000_000, Duration::from_secs(1));
        p.record(CloudId(2), 4_000_000, Duration::from_secs(1));
        assert_eq!(p.ranking(), vec![CloudId(1), CloudId(2), CloudId(0)]);
    }

    #[test]
    fn degenerate_samples_ignored() {
        let p = BandwidthProbe::new(1, 2e6);
        p.record(CloudId(0), 0, Duration::from_secs(1));
        p.record(CloudId(0), 100, Duration::ZERO);
        assert_eq!(p.speed(CloudId(0)), 2e6);
        assert_eq!(p.samples(CloudId(0)), 0);
    }
}
