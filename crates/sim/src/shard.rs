//! Sharded discrete-event scheduling primitives for fleet-scale runs.
//!
//! [`SimRuntime`](crate::SimRuntime) actors are OS threads, which caps
//! a population at a few hundred actors. The fleet layer instead runs
//! hundreds of thousands of lightweight state machines on a single
//! event [`Calendar`], fanning each *window* of due events out across
//! shards (pure per-device computation, parallelizable) and then
//! merging the shard outputs back into one globally ordered stream
//! (sequential state application). Determinism falls out of two
//! rules enforced here:
//!
//! 1. **Partition is by stable key, order-preserving** — a device's
//!    events always land in the shard `device % shards`, in calendar
//!    order, so per-shard streams are reproducible.
//! 2. **Merge is by total key order, shard-oblivious** — shard outputs
//!    are interleaved strictly by `(time, lane, seq)`, so the merged
//!    stream is byte-identical whatever the shard count or which
//!    worker thread ran which shard.
//!
//! The fleet crate drives these with `WorkerPool::par_map_indexed`
//! (itself order-preserving), giving same-seed, same-output runs at 1,
//! 4, or 16 shards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A calendar entry: `(time_ns, lane, seq)` plus a payload. `lane` is
/// the scheduling key (the fleet uses the device id); `seq` is a
/// deterministic push counter that makes the order total even if a
/// lane somehow schedules twice for the same instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<E> {
    /// Virtual time the event is due, nanoseconds.
    pub at_ns: u64,
    /// Scheduling lane (device id in the fleet).
    pub lane: u64,
    /// Deterministic tiebreaker assigned by the calendar.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> Entry<E> {
    /// The total-order key.
    pub fn key(&self) -> (u64, u64, u64) {
        (self.at_ns, self.lane, self.seq)
    }
}

/// Which shard a lane belongs to under `shards`-way partitioning.
pub fn shard_of(lane: u64, shards: usize) -> usize {
    (lane % shards.max(1) as u64) as usize
}

/// A deterministic pending-event calendar.
///
/// A `BinaryHeap` keyed by `(time, lane, seq)`: pops come out in total
/// order, and the `seq` counter is assigned in push order, which is
/// itself deterministic because the fleet engine pushes from the
/// merged (ordered) stream only.
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct HeapEntry<E>(Entry<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

impl<E> Calendar<E> {
    /// An empty calendar.
    pub fn new() -> Calendar<E> {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` on `lane` at `at_ns`.
    pub fn push(&mut self, at_ns: u64, lane: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry(Entry {
            at_ns,
            lane,
            seq,
            event,
        })));
    }

    /// Time of the earliest pending event.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(HeapEntry(e))| e.at_ns)
    }

    /// Pops every event strictly before `before_ns`, in total order.
    pub fn pop_window(&mut self, before_ns: u64) -> Vec<Entry<E>> {
        let mut out = Vec::new();
        while let Some(Reverse(HeapEntry(e))) = self.heap.peek() {
            if e.at_ns >= before_ns {
                break;
            }
            let Reverse(HeapEntry(e)) = self.heap.pop().unwrap();
            out.push(e);
        }
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

/// Partitions an ordered window of entries into `shards` lists by
/// `lane % shards`, preserving the within-shard order. The
/// concatenation of the outputs is a permutation of the input; each
/// shard list is still sorted by the entry key.
pub fn partition_window<E>(window: Vec<Entry<E>>, shards: usize) -> Vec<Vec<Entry<E>>> {
    let shards = shards.max(1);
    let mut out: Vec<Vec<Entry<E>>> = (0..shards).map(|_| Vec::new()).collect();
    for e in window {
        let s = shard_of(e.lane, shards);
        out[s].push(e);
    }
    out
}

/// K-way merges per-shard output lists back into one stream ordered by
/// `key`. Each input list must already be sorted by `key` (true for
/// shard outputs processed in partition order). The result is
/// independent of the number of input lists — the property the
/// shard-count-invariance gate checks.
pub fn merge_by_key<T, K: Ord, F: Fn(&T) -> K>(lists: Vec<Vec<T>>, key: F) -> Vec<T> {
    let total: usize = lists.iter().map(Vec::len).sum();
    // Shard counts are small (≤ 64), so a linear min-scan over peeked
    // heads beats heap overhead and has no tie-break subtleties: the
    // strict `<` in the scan means equal keys would resolve by list
    // index, but keys are unique per lane and a lane lives in exactly
    // one list, so ties cannot occur across lists.
    let mut heads: Vec<std::iter::Peekable<std::vec::IntoIter<T>>> =
        lists.into_iter().map(|l| l.into_iter().peekable()).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, K)> = None;
        for (i, it) in heads.iter_mut().enumerate() {
            if let Some(item) = it.peek() {
                let k = key(item);
                match &best {
                    Some((_, bk)) if *bk <= k => {}
                    _ => best = Some((i, k)),
                }
            }
        }
        match best {
            Some((i, _)) => out.push(heads[i].next().unwrap()),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn calendar_pops_in_total_order() {
        let mut c: Calendar<&'static str> = Calendar::new();
        c.push(50, 2, "b");
        c.push(10, 7, "a");
        c.push(50, 1, "c");
        c.push(99, 0, "d");
        assert_eq!(c.next_time(), Some(10));
        let w = c.pop_window(60);
        let got: Vec<_> = w.iter().map(|e| (e.at_ns, e.lane, e.event)).collect();
        assert_eq!(got, vec![(10, 7, "a"), (50, 1, "c"), (50, 2, "b")]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.pop_window(100).len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn same_lane_same_time_orders_by_push_seq() {
        let mut c: Calendar<u32> = Calendar::new();
        c.push(5, 1, 10);
        c.push(5, 1, 20);
        let w = c.pop_window(6);
        assert_eq!(w.iter().map(|e| e.event).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn partition_then_merge_is_identity_for_any_shard_count() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut c: Calendar<u64> = Calendar::new();
        for lane in 0..500u64 {
            c.push(rng.below(10_000), lane, lane * 3);
        }
        let window = c.pop_window(u64::MAX);
        let reference: Vec<(u64, u64, u64)> = window.iter().map(|e| e.key()).collect();
        for shards in [1usize, 4, 16, 64] {
            let parts = partition_window(window.clone(), shards);
            assert_eq!(parts.len(), shards);
            for p in &parts {
                assert!(p.windows(2).all(|w| w[0].key() < w[1].key()));
            }
            let merged = merge_by_key(parts, |e: &Entry<u64>| e.key());
            let got: Vec<(u64, u64, u64)> = merged.iter().map(|e| e.key()).collect();
            assert_eq!(got, reference, "shards = {shards}");
        }
    }

    #[test]
    fn merge_handles_empty_and_uneven_lists() {
        let lists = vec![vec![1u64, 5, 9], vec![], vec![2, 3, 4, 6, 7, 8]];
        assert_eq!(
            merge_by_key(lists, |&x| x),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9]
        );
        assert_eq!(merge_by_key(Vec::<Vec<u64>>::new(), |&x| x), Vec::<u64>::new());
    }

    #[test]
    fn shard_of_is_stable_modulo() {
        assert_eq!(shard_of(17, 4), 1);
        assert_eq!(shard_of(17, 1), 0);
        assert_eq!(shard_of(17, 0), 0); // clamped
    }
}
