//! Property-based tests of the metadata layer: codec round-trips,
//! delta-log reconstruction, and three-way merge invariants.

use proptest::prelude::*;
use unidrive_crypto::{Digest, Sha1};
use unidrive_meta::{
    diff, merge3, BlockRef, DeltaLog, SegmentId, Snapshot, SyncFolderImage, VersionStamp,
};

/// Strategy: a small random image.
fn arb_image() -> impl Strategy<Value = SyncFolderImage> {
    proptest::collection::btree_map(
        "[a-z]{1,8}(/[a-z]{1,8}){0,2}",
        (any::<u16>(), 1u64..1_000_000, proptest::collection::vec(any::<u8>(), 1..4)),
        0..12,
    )
    .prop_map(|files| {
        let mut image = SyncFolderImage::new();
        for (path, (mtime, size, seg_tags)) in files {
            let segments: Vec<SegmentId> = seg_tags
                .iter()
                .map(|t| SegmentId(Sha1::digest(&[*t])))
                .collect();
            for id in &segments {
                image.ensure_segment(*id, size);
            }
            image.upsert_file(
                &path,
                Snapshot {
                    mtime_ns: mtime as u64,
                    size,
                    segments,
                },
            );
        }
        image
    })
}

proptest! {
    /// encode/decode round-trips arbitrary images.
    #[test]
    fn image_codec_round_trips(image in arb_image()) {
        let restored = SyncFolderImage::decode(&image.encode()).unwrap();
        prop_assert_eq!(restored, image);
    }

    /// Any single-byte corruption of the encoded image is rejected.
    #[test]
    fn image_codec_rejects_bitflips(image in arb_image(), pos in any::<u16>(), flip in 1u8..) {
        let mut bytes = image.encode().to_vec();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= flip;
        // Either the checksum catches it (virtually always) or the decode
        // differs; it must never silently equal the original.
        match SyncFolderImage::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, image),
        }
    }

    /// Applying records_for(from, to) onto `from` reproduces `to`'s
    /// files and block locations.
    #[test]
    fn delta_records_reconstruct(from in arb_image(), to in arb_image()) {
        let mut log = DeltaLog::new(from.version.clone());
        log.append(DeltaLog::records_for(&from, &to), to.version.clone());
        let mut rebuilt = from.clone();
        log.apply_to(&mut rebuilt);
        // Compare the file trees.
        let files = |img: &SyncFolderImage| {
            img.files()
                .map(|(p, e)| (p.to_owned(), e.snapshot.clone()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(files(&rebuilt), files(&to));
        // Every block location in `to` is present in the rebuilt pool.
        for (id, entry) in to.segments() {
            if entry.refcount > 0 {
                let rebuilt_entry = rebuilt.segment(id).unwrap();
                for b in &entry.blocks {
                    prop_assert!(rebuilt_entry.blocks.contains(b));
                }
            }
        }
    }

    /// diff(x, x) is empty; applying diff(a, b) to `a` via merge with no
    /// cloud side reproduces b's tree.
    #[test]
    fn diff_is_sound(a in arb_image(), b in arb_image()) {
        prop_assert!(diff(&a, &a.clone()).is_empty());
        let d = diff(&a, &b);
        for (path, _) in b.files() {
            let same = a.file(path).is_some_and(|e| e.snapshot == b.file(path).unwrap().snapshot);
            prop_assert_eq!(d.get(path).is_none(), same);
        }
    }

    /// Merge with an unchanged cloud side applies exactly the local
    /// changes (no conflicts).
    #[test]
    fn merge_with_unchanged_cloud_is_local(original in arb_image(), local in arb_image()) {
        let out = merge3(&original, &local, &original, "dev");
        prop_assert!(out.conflicts.is_empty());
        let files = |img: &SyncFolderImage| {
            img.files()
                .map(|(p, e)| (p.to_owned(), e.snapshot.clone()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(files(&out.image), files(&local));
    }

    /// Merge never loses a file that only one side touched, and
    /// refcounts always cover every referenced segment.
    #[test]
    fn merge_preserves_disjoint_changes(
        original in arb_image(),
        local in arb_image(),
        cloud in arb_image(),
    ) {
        let out = merge3(&original, &local, &cloud, "dev");
        let dl = diff(&original, &local);
        let dc = diff(&original, &cloud);
        for (path, change) in dl.iter() {
            if dc.get(path).is_none() {
                match change {
                    unidrive_meta::EntryChange::Upsert(snap) => {
                        prop_assert_eq!(&out.image.file(path).unwrap().snapshot, snap);
                    }
                    unidrive_meta::EntryChange::Delete => {
                        prop_assert!(out.image.file(path).is_none());
                    }
                }
            }
        }
        // Pool covers every snapshot reference with a positive refcount.
        for (_, entry) in out.image.files() {
            for id in &entry.snapshot.segments {
                prop_assert!(out.image.segment(id).unwrap().refcount > 0);
            }
        }
    }

    /// Version files round-trip.
    #[test]
    fn version_stamp_round_trips(device in "[a-z0-9-]{1,16}", counter in any::<u64>(), ts in any::<u64>()) {
        let v = VersionStamp { device, counter, timestamp_ns: ts };
        prop_assert_eq!(VersionStamp::decode(&v.encode()).unwrap(), v);
    }

    /// Block add/remove on segment entries is idempotent and consistent.
    #[test]
    fn block_bookkeeping(ops in proptest::collection::vec((any::<u8>(), 0u16..8, 0u16..4), 0..32)) {
        let mut image = SyncFolderImage::new();
        let id = SegmentId(Digest([7; 20]));
        image.ensure_segment(id, 1);
        let mut model: std::collections::BTreeSet<(u16, u16)> = Default::default();
        for (op, index, cloud) in ops {
            let block = BlockRef { index, cloud };
            if op % 2 == 0 {
                prop_assert_eq!(image.record_block(id, block), model.insert((index, cloud)));
            } else {
                prop_assert_eq!(image.remove_block(&id, block), model.remove(&(index, cloud)));
            }
        }
        let stored: std::collections::BTreeSet<(u16, u16)> = image
            .segment(&id)
            .unwrap()
            .blocks
            .iter()
            .map(|b| (b.index, b.cloud))
            .collect();
        prop_assert_eq!(stored, model);
    }
}
