//! The shared pull-based transfer engine (paper §6.2).
//!
//! The paper's data plane is one idea applied everywhere: an idle
//! (cloud, connection) pair *pulls* the next best block, so a faster
//! cloud — whose connections go idle more often — naturally receives
//! more work. This module implements that dispatch loop exactly once.
//! What differs between upload, download, and the baseline clients is
//! only *which* block an idle connection should take and *what* to do
//! when it lands: that is a [`TransferPolicy`].
//!
//! The engine owns everything the five former hand-rolled loops
//! duplicated: the worker pool (one actor per cloud connection),
//! [`retrying_observed`] around every wire call, `unidrive-obs`
//! counters and `BlockDispatched`/`BlockCompleted` events, feeding the
//! [`BandwidthProbe`], and idle parking. Workers park on a
//! [`Notifier`] (an eventcount) instead of polling: each completion or
//! failure broadcasts, so an idle connection re-polls its policy only
//! when the schedulable state may actually have changed — no timer
//! churn in the simulator, no busy-wait under wall clock.

use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{retrying_observed, CloudError, CloudId, CloudSet, RetryPolicy};
use unidrive_obs::{Event, Obs};
use unidrive_sim::{spawn, Notifier, Runtime, Task, Time};
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::probe::BandwidthProbe;

/// What the engine should do on the wire for one job.
pub enum WireOp {
    /// Upload `payload()` to `path`. The payload is produced lazily by
    /// the worker, outside the policy lock — block encoding is the CPU
    /// cost here and must not serialize the scheduler.
    Upload {
        /// Object path on the cloud.
        path: String,
        /// Produces the bytes to upload.
        payload: Box<dyn FnOnce() -> Bytes + Send>,
    },
    /// Download the object at `path`.
    Download {
        /// Object path on the cloud.
        path: String,
    },
}

impl std::fmt::Debug for WireOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireOp::Upload { path, .. } => f.debug_struct("Upload").field("path", path).finish(),
            WireOp::Download { path } => f.debug_struct("Download").field("path", path).finish(),
        }
    }
}

/// One job handed out by a policy: the wire operation plus the
/// bookkeeping the policy needs back on completion.
#[derive(Debug)]
pub struct JobDesc<T> {
    /// Opaque policy state returned via `on_success`/`on_failure`.
    pub token: T,
    /// Block index (for the dispatch/completion events).
    pub index: u16,
    /// Whether this is an over-provisioned extra (event + counter tag).
    pub extra: bool,
    /// What to do on the wire.
    pub op: WireOp,
}

/// The scheduling brain driven by the [`TransferEngine`].
///
/// All methods are called under the engine's policy lock; they must not
/// block (no wire calls, no sleeps) — heavy work belongs in the
/// [`WireOp`] payload closure or in the caller.
///
/// Deadlock-safety invariant: whenever nothing is in flight and
/// `next_job` would return `None` for every cloud, `is_done` must be
/// `true` — the engine parks idle workers until a completion notifies
/// them, so a policy that is "not done" yet hands out no work with
/// nothing in flight would park everyone forever. Policies uphold this
/// by re-deriving their finished flag after every completion (and once
/// at construction, for empty batches).
pub trait TransferPolicy: Send + 'static {
    /// Per-job bookkeeping round-tripped through the engine.
    type Token: Send;

    /// Picks the next job for an idle connection of `cloud`, or `None`
    /// if that cloud has nothing useful to do right now.
    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<Self::Token>>;

    /// Whether the batch is over (workers exit their loops).
    fn is_done(&self) -> bool;

    /// A job finished. `data` carries downloaded bytes (`None` for
    /// uploads); `now` is the runtime clock right after the transfer.
    fn on_success(&mut self, cloud: CloudId, token: Self::Token, data: Option<Bytes>, now: Time);

    /// A job failed after retries.
    fn on_failure(&mut self, cloud: CloudId, token: Self::Token, error: CloudError, now: Time);
}

/// Engine wiring shared by every policy.
#[derive(Debug, Clone)]
pub struct EngineParams {
    /// Worker actors per cloud.
    pub connections_per_cloud: usize,
    /// Retry policy wrapped around every wire call.
    pub retry: RetryPolicy,
    /// Observability handle (counters, events, retry trace).
    pub obs: Obs,
    /// Counter/event namespace: counters are `{label}.blocks_dispatched`
    /// etc., retry traces `{label}:{cloud}`.
    pub label: String,
    /// Feed completed transfers into this probe as in-channel bandwidth
    /// measurements.
    pub probe: Option<Arc<BandwidthProbe>>,
    /// Upper bound on idle parking before an extra re-poll; `None`
    /// parks until notified (see `DataPlaneConfig::idle_wait`).
    pub idle_wait: Option<Duration>,
}

impl EngineParams {
    /// Minimal wiring: one connection per cloud, default retries, no
    /// observability, no probe.
    pub fn new(label: impl Into<String>) -> Self {
        EngineParams {
            connections_per_cloud: 1,
            retry: RetryPolicy::new(),
            obs: Obs::noop(),
            label: label.into(),
            probe: None,
            idle_wait: None,
        }
    }
}

/// Counter names formatted once per engine, not once per block.
struct CounterNames {
    dispatched: String,
    extra_dispatched: String,
    completed: String,
    block_bytes: String,
    block_elapsed: String,
    failures: String,
}

impl CounterNames {
    fn new(label: &str) -> Self {
        CounterNames {
            dispatched: format!("{label}.blocks_dispatched"),
            extra_dispatched: format!("{label}.extra_blocks_dispatched"),
            completed: format!("{label}.blocks_completed"),
            block_bytes: format!("{label}.block_bytes"),
            block_elapsed: format!("{label}.block_elapsed_ns"),
            failures: format!("{label}.block_failures"),
        }
    }
}

/// A running worker pool driving one [`TransferPolicy`].
///
/// Workers spawn on [`TransferEngine::start`] and run until the policy
/// reports done; the caller then either [`join`](TransferEngine::join)s
/// (returning the policy with all its results) or
/// [`detach`](TransferEngine::detach)es after
/// [`wait_until`](TransferEngine::wait_until) some milestone (the
/// availability-first upload path).
pub struct TransferEngine<P: TransferPolicy> {
    policy: Arc<Mutex<P>>,
    signal: Arc<dyn Notifier>,
    workers: Vec<Task<()>>,
}

impl<P: TransferPolicy> std::fmt::Debug for TransferEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferEngine")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<P: TransferPolicy> TransferEngine<P> {
    /// Spawns `connections_per_cloud` workers per cloud, each pulling
    /// jobs from `policy` until it is done.
    pub fn start(
        rt: &Arc<dyn Runtime>,
        clouds: &CloudSet,
        params: EngineParams,
        policy: P,
    ) -> Self {
        let policy = Arc::new(Mutex::new(policy));
        let signal = rt.notifier();
        let names = Arc::new(CounterNames::new(&params.label));
        let mut workers = Vec::new();
        for (cloud_id, cloud) in clouds.iter() {
            for conn in 0..params.connections_per_cloud {
                let rt2 = Arc::clone(rt);
                let cloud = Arc::clone(cloud);
                let policy = Arc::clone(&policy);
                let signal = Arc::clone(&signal);
                let params = params.clone();
                let names = Arc::clone(&names);
                let retry_label = format!("{}:{}", params.label, cloud.name());
                let cloud_blocks = format!("{}.cloud.{}.blocks", params.label, cloud.name());
                workers.push(spawn(
                    rt,
                    &format!("{}-{}-{}", params.label, cloud.name(), conn),
                    move || {
                        worker_loop(
                            &rt2,
                            cloud_id,
                            &*cloud,
                            &policy,
                            &signal,
                            &params,
                            &names,
                            &retry_label,
                            &cloud_blocks,
                        );
                    },
                ));
            }
        }
        TransferEngine {
            policy,
            signal,
            workers,
        }
    }

    /// Runs `f` under the policy lock (snapshots, milestone stamps).
    pub fn with<R>(&self, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.policy.lock())
    }

    /// Blocks the calling actor until `cond` holds or the policy is
    /// done, re-checking on every completion broadcast.
    pub fn wait_until(&self, mut cond: impl FnMut(&mut P) -> bool) {
        loop {
            let seen = self.signal.generation();
            {
                let mut p = self.policy.lock();
                if cond(&mut p) || p.is_done() {
                    return;
                }
            }
            self.signal.wait(seen);
        }
    }

    /// Waits for every worker to exit and returns the policy.
    pub fn join(self) -> P {
        for w in self.workers {
            w.join();
        }
        Arc::try_unwrap(self.policy)
            .unwrap_or_else(|_| panic!("policy still shared after workers exited"))
            .into_inner()
    }

    /// Drops the worker handles; the pool keeps running on its own
    /// actors until the policy is done (reliability-second background
    /// work).
    pub fn detach(self) {
        drop(self.workers);
    }
}

/// The single dispatch loop every transfer in the workspace now runs.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P: TransferPolicy>(
    rt: &Arc<dyn Runtime>,
    cloud_id: CloudId,
    cloud: &dyn unidrive_cloud::CloudStore,
    policy: &Arc<Mutex<P>>,
    signal: &Arc<dyn Notifier>,
    params: &EngineParams,
    names: &CounterNames,
    retry_label: &str,
    cloud_blocks: &str,
) {
    let obs = &params.obs;
    loop {
        // Eventcount protocol: read the generation before polling the
        // policy so a completion landing between the poll and the wait
        // still wakes us (no lost wake-ups).
        let seen = signal.generation();
        let job = {
            let mut p = policy.lock();
            if p.is_done() {
                break;
            }
            p.next_job(cloud_id)
        };
        let Some(JobDesc {
            token,
            index,
            extra,
            op,
        }) = job
        else {
            match params.idle_wait {
                Some(bound) => {
                    signal.wait_timeout(seen, bound);
                }
                None => signal.wait(seen),
            }
            continue;
        };
        // Events stamp through the obs registry clock (which reads the
        // sim engine state), so everything below runs lock-free with
        // respect to the policy.
        let t0;
        let (result, bytes_len) = match op {
            WireOp::Upload { path, payload } => {
                let data = payload();
                let bytes_len = data.len() as u64;
                obs.inc(&names.dispatched);
                if extra {
                    obs.inc(&names.extra_dispatched);
                }
                obs.event(|| Event::BlockDispatched {
                    cloud: cloud_id.0,
                    index,
                    bytes: bytes_len,
                    extra,
                });
                t0 = rt.now();
                let r = retrying_observed(rt, &params.retry, obs, retry_label, || {
                    cloud.upload(&path, data.clone())
                });
                (r.map(|()| None), bytes_len)
            }
            WireOp::Download { path } => {
                obs.inc(&names.dispatched);
                obs.event(|| Event::BlockDispatched {
                    cloud: cloud_id.0,
                    index,
                    bytes: 0, // size unknown until the block arrives
                    extra: false,
                });
                t0 = rt.now();
                let r = retrying_observed(rt, &params.retry, obs, retry_label, || {
                    cloud.download(&path)
                });
                let len = r.as_ref().map_or(0, |d| d.len() as u64);
                (r.map(Some), len)
            }
        };
        let now = rt.now();
        let elapsed = now.saturating_duration_since(t0);
        match &result {
            Ok(_) => {
                if let Some(probe) = &params.probe {
                    probe.record(cloud_id, bytes_len, elapsed);
                }
                obs.inc(&names.completed);
                obs.add(&names.block_bytes, bytes_len);
                obs.inc(cloud_blocks);
                obs.observe(&names.block_elapsed, elapsed.as_nanos() as u64);
                obs.event(|| Event::BlockCompleted {
                    cloud: cloud_id.0,
                    index,
                    bytes: bytes_len,
                    elapsed_ns: elapsed.as_nanos() as u64,
                });
            }
            Err(_) => obs.inc(&names.failures),
        }
        {
            let mut p = policy.lock();
            match result {
                Ok(data) => p.on_success(cloud_id, token, data, now),
                Err(e) => p.on_failure(cloud_id, token, e, now),
            }
        }
        // The schedulable state changed: wake every parked connection
        // to re-poll (and to observe is_done on the final completion).
        signal.notify_all();
    }
}
