//! The quorum-based distributed mutual-exclusive lock (paper §5.2,
//! "Handling Concurrent Local Updates").
//!
//! Built purely from the five cloud file operations: the attempting
//! device uploads an empty `lock_<device>_<t>` file into a dedicated
//! lock directory on every cloud, then lists each directory — it holds a
//! cloud's lock iff its own lock file is the only one there. Holding a
//! **majority** of clouds wins; a loser withdraws its files and retries
//! after a random backoff.
//!
//! Fault tolerance needs no global clock: every client records the
//! *first time it saw* each foreign lock file; a lock file observed for
//! longer than ΔT without being refreshed is considered abandoned and
//! deleted (lock breaking). Holders therefore refresh their lock by
//! uploading a new lock file (new timestamp) and deleting the old one
//! well within ΔT.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::sync::Mutex;
use unidrive_cloud::{CloudError, CloudSet};
use unidrive_meta::{lock_file_name, parse_lock_name, LOCK_DIR};
use unidrive_obs::{Event, Obs, SpanId};
use unidrive_sim::{Runtime, SimRng, Time};

/// Tunables of the lock protocol.
#[derive(Debug, Clone)]
pub struct LockConfig {
    /// Give up after this many failed acquisition rounds.
    pub max_attempts: u32,
    /// Base of the random backoff between rounds.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// ΔT: a foreign lock seen unrefreshed for this long is broken.
    pub stale_after: Duration,
    /// Bounded-wait audit: once an acquire has waited this long across
    /// losing rounds it is flagged as starved (`lock.starved` counter,
    /// `starved` span attribute) — at fleet scale the randomized
    /// backoff is unfair, and a device spinning on a hot folder must
    /// not do so unobserved.
    pub starvation_audit: Duration,
}

impl Default for LockConfig {
    fn default() -> Self {
        LockConfig {
            max_attempts: 12,
            backoff_base: Duration::from_millis(500),
            backoff_max: Duration::from_secs(15),
            // The paper's example ΔT = 120 s.
            stale_after: Duration::from_secs(120),
            starvation_audit: Duration::from_secs(30),
        }
    }
}

/// Error from lock operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Could not win a majority within `max_attempts` rounds.
    Contended {
        /// Rounds attempted.
        attempts: u32,
    },
    /// Fewer than a quorum of clouds are reachable at all.
    QuorumUnreachable {
        /// Clouds that answered.
        reachable: usize,
        /// Quorum size needed.
        quorum: usize,
    },
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Contended { attempts } => {
                write!(f, "failed to acquire quorum lock after {attempts} attempts")
            }
            LockError::QuorumUnreachable { reachable, quorum } => write!(
                f,
                "only {reachable} clouds reachable, quorum of {quorum} required"
            ),
        }
    }
}

impl std::error::Error for LockError {}

/// The metadata lock over a user's multi-cloud.
pub struct QuorumLock {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    device: String,
    config: LockConfig,
    rng: Mutex<SimRng>,
    /// `(cloud index, lock file name)` → first time we saw it.
    first_seen: Mutex<HashMap<(usize, String), Time>>,
    obs: Obs,
}

impl std::fmt::Debug for QuorumLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumLock")
            .field("device", &self.device)
            .field("clouds", &self.clouds.len())
            .finish()
    }
}

/// Proof of lock ownership; release with [`LockGuard::release`] (Drop
/// releases best-effort too, but an explicit release reports errors).
#[derive(Debug)]
pub struct LockGuard<'a> {
    lock: &'a QuorumLock,
    lock_name: String,
    released: bool,
    /// The (ended) `lock.acquire` span: causal parent for the
    /// `lock.refresh` / `lock.release` spans of this hold.
    span: Option<SpanId>,
}

impl QuorumLock {
    /// Creates a lock handle for `device` over `clouds`.
    pub fn new(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        device: impl Into<String>,
        config: LockConfig,
        rng: SimRng,
    ) -> Self {
        QuorumLock {
            rt,
            clouds,
            device: device.into(),
            config,
            rng: Mutex::new(rng),
            first_seen: Mutex::new(HashMap::new()),
            obs: Obs::noop(),
        }
    }

    /// Builder-style: records acquisition latency, contention rounds,
    /// lock breaking, and releases on `obs` (see `unidrive-obs`).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The device name this lock identifies itself as.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Acquires the quorum lock, retrying with random backoff.
    ///
    /// # Errors
    ///
    /// [`LockError::Contended`] after `max_attempts` losing rounds;
    /// [`LockError::QuorumUnreachable`] if a majority of clouds cannot
    /// even be contacted.
    pub fn acquire(&self) -> Result<LockGuard<'_>, LockError> {
        self.acquire_in(None)
    }

    /// [`acquire`](QuorumLock::acquire) with span causality: the
    /// attempt is recorded as a `lock.acquire` span (device, rounds,
    /// outcome) parented to `parent`, and any `lock.break` performed
    /// along the way parents to that span.
    ///
    /// # Errors
    ///
    /// Same as [`acquire`](QuorumLock::acquire).
    pub fn acquire_in(&self, parent: Option<SpanId>) -> Result<LockGuard<'_>, LockError> {
        let quorum = self.clouds.quorum();
        let t0 = self.rt.now();
        let mut span = self.obs.span("lock.acquire", parent);
        span.attr_str("device", self.device.as_str());
        let span_id = span.id();
        let mut starved = false;
        for attempt in 0..self.config.max_attempts {
            let lock_name =
                lock_file_name(&self.device, self.rt.now().as_nanos() + attempt as u64);
            match self.try_round(&lock_name, span_id) {
                RoundOutcome::Won => {
                    let wait_ns =
                        self.rt.now().saturating_duration_since(t0).as_nanos() as u64;
                    self.obs.inc("lock.acquired");
                    self.obs.observe("lock.acquire_wait_ns", wait_ns);
                    self.obs.series_observe("lock.wait_ns", &self.device, wait_ns);
                    self.obs.event(|| Event::LockAcquired {
                        device: self.device.clone(),
                        rounds: attempt + 1,
                        wait_ns,
                    });
                    span.attr_u64("rounds", (attempt + 1) as u64);
                    span.attr_bool("ok", true);
                    span.end();
                    return Ok(LockGuard {
                        lock: self,
                        lock_name,
                        released: false,
                        span: span_id,
                    });
                }
                RoundOutcome::Lost { held } => {
                    self.obs.inc("lock.contended_rounds");
                    self.obs.series_add("lock.contended", &self.device, 1);
                    self.obs.event(|| Event::LockContended {
                        device: self.device.clone(),
                        held,
                        quorum,
                    });
                    self.withdraw(&lock_name);
                    let cap = self
                        .config
                        .backoff_max
                        .min(self.config.backoff_base * 2u32.saturating_pow(attempt));
                    let nanos = cap.as_nanos().max(1) as u64;
                    let wait = Duration::from_nanos(self.rng.lock().below(nanos));
                    self.rt.sleep(wait);
                    // Bounded-wait audit: flag (once) a device that has
                    // been losing rounds longer than the configured
                    // threshold, so starvation under hot-folder
                    // contention is visible in metrics and traces.
                    let waited = self.rt.now().saturating_duration_since(t0);
                    if !starved && waited >= self.config.starvation_audit {
                        starved = true;
                        self.obs.inc("lock.starved");
                        self.obs.series_add("lock.starved", &self.device, 1);
                        span.attr_bool("starved", true);
                    }
                }
                RoundOutcome::Unreachable { reachable } => {
                    self.obs.inc("lock.unreachable");
                    self.withdraw(&lock_name);
                    span.attr_u64("rounds", (attempt + 1) as u64);
                    span.attr_bool("ok", false);
                    return Err(LockError::QuorumUnreachable { reachable, quorum });
                }
            }
        }
        self.obs.inc("lock.exhausted");
        span.attr_u64("rounds", self.config.max_attempts as u64);
        span.attr_bool("ok", false);
        Err(LockError::Contended {
            attempts: self.config.max_attempts,
        })
    }

    /// One acquisition round: upload our lock file everywhere, then list
    /// and count clouds where ours is the only live lock. `parent` is
    /// the enclosing `lock.acquire` span (for `lock.break` spans).
    fn try_round(&self, lock_name: &str, parent: Option<SpanId>) -> RoundOutcome {
        let quorum = self.clouds.quorum();
        let path = format!("{LOCK_DIR}/{lock_name}");
        // Lock files go out to all clouds concurrently (the client opens
        // one HTTP request per cloud), then the listings come back
        // concurrently too.
        let upload_tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = std::sync::Arc::clone(cloud);
                let path = path.clone();
                unidrive_sim::spawn(&self.rt, "lock-up", move || {
                    cloud.upload(&path, unidrive_util::bytes::Bytes::new()).is_ok()
                })
            })
            .collect();
        for t in upload_tasks {
            let _ = t.join();
        }
        let list_tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(id, cloud)| {
                let cloud = std::sync::Arc::clone(cloud);
                unidrive_sim::spawn(&self.rt, "lock-list", move || {
                    (id, cloud.list(LOCK_DIR).ok())
                })
            })
            .collect();
        let listings: Vec<_> = list_tasks.into_iter().map(|t| t.join()).collect();
        let mut reachable = 0usize;
        let mut held = 0usize;
        for (id, entries) in listings {
            // `id` came from iterating this same set above, but stay
            // fallible anyway: an unknown id just skips the cloud.
            let Some(cloud) = self.clouds.try_get(id).map(std::sync::Arc::clone) else {
                continue;
            };
            let Some(entries) = entries else {
                continue;
            };
            reachable += 1;
            let mut ours_present = false;
            let mut foreign_live = false;
            for entry in &entries {
                let Some((device, _)) = parse_lock_name(&entry.name) else {
                    continue;
                };
                if entry.name == lock_name {
                    ours_present = true;
                    continue;
                }
                if device == self.device {
                    // A leftover of our own earlier attempt whose delete
                    // was lost to a transient failure: reclaim it
                    // immediately (no ΔT needed — it is certainly ours).
                    let _ = cloud.delete(&format!("{LOCK_DIR}/{}", entry.name));
                    continue;
                }
                if self.is_stale(id.0, &entry.name) {
                    // Lock breaking: delete the abandoned lock file.
                    let mut bspan = self.obs.span("lock.break", parent);
                    bspan.attr_str("device", self.device.as_str());
                    bspan.attr_str("victim", device);
                    let _ = cloud.delete(&format!("{LOCK_DIR}/{}", entry.name));
                    bspan.end();
                    self.obs.inc("lock.broken");
                    self.obs.event(|| Event::LockBroken {
                        device: self.device.clone(),
                        victim: device.to_owned(),
                    });
                } else {
                    foreign_live = true;
                }
            }
            if ours_present && !foreign_live {
                held += 1;
            }
        }
        if reachable < quorum {
            return RoundOutcome::Unreachable { reachable };
        }
        if held >= quorum {
            RoundOutcome::Won
        } else {
            RoundOutcome::Lost { held }
        }
    }

    /// Tracks first-seen times; returns whether the foreign lock has
    /// been visible for longer than ΔT. Entries much older than ΔT are
    /// pruned so long-lived clients don't accumulate dead lock names.
    fn is_stale(&self, cloud: usize, name: &str) -> bool {
        let now = self.rt.now();
        let horizon = self.config.stale_after * 4;
        let mut seen = self.first_seen.lock();
        if seen.len() > 256 {
            seen.retain(|_, first| now.saturating_duration_since(*first) < horizon);
        }
        let first = *seen.entry((cloud, name.to_owned())).or_insert(now);
        now.saturating_duration_since(first) > self.config.stale_after
    }

    /// Deletes our lock file from every cloud (concurrently).
    fn withdraw(&self, lock_name: &str) {
        let path = format!("{LOCK_DIR}/{lock_name}");
        let tasks: Vec<_> = self
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = std::sync::Arc::clone(cloud);
                let path = path.clone();
                unidrive_sim::spawn(&self.rt, "lock-del", move || {
                    match cloud.delete(&path) {
                        Ok(()) | Err(CloudError::NotFound { .. }) => {}
                        Err(_) => { /* best effort; self-reclaim handles it */ }
                    }
                })
            })
            .collect();
        for t in tasks {
            t.join();
        }
    }
}

enum RoundOutcome {
    Won,
    Lost { held: usize },
    Unreachable { reachable: usize },
}

impl LockGuard<'_> {
    /// Re-stamps the lock (upload new file, delete old) so other clients
    /// never see it older than ΔT. Call at most every ΔT/2 while holding
    /// the lock across long operations.
    pub fn refresh(&mut self) {
        let new_name = lock_file_name(&self.lock.device, self.lock.rt.now().as_nanos());
        if new_name == self.lock_name {
            return;
        }
        let mut span = self.lock.obs.span("lock.refresh", self.span);
        span.attr_str("device", self.lock.device.as_str());
        let new_path = format!("{LOCK_DIR}/{new_name}");
        let tasks: Vec<_> = self
            .lock
            .clouds
            .iter()
            .map(|(_, cloud)| {
                let cloud = std::sync::Arc::clone(cloud);
                let path = new_path.clone();
                unidrive_sim::spawn(&self.lock.rt, "lock-refresh", move || {
                    let _ = cloud.upload(&path, unidrive_util::bytes::Bytes::new());
                })
            })
            .collect();
        for t in tasks {
            t.join();
        }
        self.lock.withdraw(&self.lock_name);
        self.lock_name = new_name;
    }

    /// Releases the lock by deleting our lock files everywhere.
    pub fn release(mut self) {
        let mut span = self.lock.obs.span("lock.release", self.span);
        span.attr_str("device", self.lock.device.as_str());
        self.lock.withdraw(&self.lock_name);
        self.released = true;
        self.lock.obs.inc("lock.released");
        self.lock.obs.event(|| Event::LockReleased {
            device: self.lock.device.clone(),
        });
    }

    /// The `lock.acquire` span of this hold (causal parent for work
    /// done under the lock), if tracing is enabled.
    pub fn span(&self) -> Option<SpanId> {
        self.span
    }

    /// The current lock file name (diagnostics).
    pub fn lock_name(&self) -> &str {
        &self.lock_name
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        if !self.released {
            let mut span = self.lock.obs.span("lock.release", self.span);
            span.attr_str("device", self.lock.device.as_str());
            self.lock.withdraw(&self.lock_name);
            self.lock.obs.inc("lock.released");
            self.lock.obs.event(|| Event::LockReleased {
                device: self.lock.device.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, MemCloud};
    use unidrive_sim::{spawn, RealRuntime, SimRuntime};

    fn mem_clouds(n: usize) -> CloudSet {
        CloudSet::new(
            (0..n)
                .map(|i| Arc::new(MemCloud::new(format!("c{i}"))) as Arc<dyn CloudStore>)
                .collect(),
        )
    }

    fn lock_on(
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        device: &str,
        seed: u64,
    ) -> QuorumLock {
        QuorumLock::new(
            rt,
            clouds,
            device,
            LockConfig::default(),
            SimRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn uncontended_acquire_and_release() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let clouds = mem_clouds(5);
        let lock = lock_on(rt, clouds.clone(), "dev-a", 1);
        let guard = lock.acquire().unwrap();
        // Lock files visible on every cloud.
        for (_, c) in clouds.iter() {
            assert_eq!(c.list(LOCK_DIR).unwrap().len(), 1);
        }
        guard.release();
        for (_, c) in clouds.iter() {
            assert!(c.list(LOCK_DIR).unwrap().is_empty());
        }
    }

    #[test]
    fn second_client_blocks_until_release() {
        let sim = SimRuntime::new(2);
        let rt = sim.clone().as_runtime();
        let clouds = mem_clouds(5);
        let lock_a = lock_on(rt.clone(), clouds.clone(), "dev-a", 3);
        let guard = lock_a.acquire().unwrap();

        let rt2 = rt.clone();
        let clouds2 = clouds.clone();
        let contender = spawn(&rt, "dev-b", move || {
            let lock_b = lock_on(rt2.clone(), clouds2, "dev-b", 4);
            let acquired = lock_b.acquire().is_ok();
            acquired
        });
        // Hold the lock briefly, then release; B must eventually win.
        sim.sleep(Duration::from_secs(2));
        guard.release();
        assert!(contender.join());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let sim = SimRuntime::new(5);
        let rt = sim.clone().as_runtime();
        let clouds = mem_clouds(5);
        let in_cs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let max_seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                let rt2 = rt.clone();
                let clouds = clouds.clone();
                let in_cs = Arc::clone(&in_cs);
                let max_seen = Arc::clone(&max_seen);
                spawn(&rt, &format!("dev-{i}"), move || {
                    let lock = lock_on(rt2.clone(), clouds, &format!("dev-{i}"), 100 + i);
                    for _ in 0..3 {
                        let guard = lock.acquire().expect("acquire");
                        let n = in_cs.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                        max_seen.fetch_max(n, std::sync::atomic::Ordering::SeqCst);
                        rt2.sleep(Duration::from_millis(50));
                        in_cs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        guard.release();
                        rt2.sleep(Duration::from_millis(20));
                    }
                })
            })
            .collect();
        for t in tasks {
            t.join();
        }
        assert_eq!(
            max_seen.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "two devices were in the critical section simultaneously"
        );
    }

    #[test]
    fn abandoned_lock_is_broken_after_delta_t() {
        let sim = SimRuntime::new(6);
        let rt = sim.clone().as_runtime();
        let clouds = mem_clouds(5);
        // A crashed device left lock files behind.
        for (_, c) in clouds.iter() {
            c.upload(
                &format!("{LOCK_DIR}/{}", lock_file_name("crashed", 1)),
                unidrive_util::bytes::Bytes::new(),
            )
            .unwrap();
        }
        let config = LockConfig {
            stale_after: Duration::from_secs(120),
            max_attempts: 40,
            ..LockConfig::default()
        };
        let lock = QuorumLock::new(
            rt,
            clouds,
            "dev-a",
            config,
            SimRng::seed_from_u64(7),
        );
        let t0 = sim.now();
        let guard = lock.acquire().expect("should break the stale lock");
        let waited = sim.now() - t0;
        assert!(
            waited > Duration::from_secs(120),
            "acquired before ΔT elapsed: {waited:?}"
        );
        guard.release();
    }

    /// `n` MemClouds, the first `dead` of which fail every request
    /// (a `ChaosCloud` with certain transient failure).
    fn clouds_with_dead(rt: &Arc<dyn Runtime>, n: usize, dead: usize) -> CloudSet {
        let mut members: Vec<Arc<dyn CloudStore>> = Vec::new();
        for i in 0..n {
            let inner: Arc<dyn CloudStore> = Arc::new(MemCloud::new(format!("c{i}")));
            if i < dead {
                let chaos = unidrive_cloud::ChaosCloud::new(
                    inner,
                    Arc::clone(rt),
                    &unidrive_cloud::FaultPlan::new(i as u64),
                );
                chaos.set_flat_probability(1.0);
                members.push(Arc::new(chaos));
            } else {
                members.push(inner);
            }
        }
        CloudSet::new(members)
    }

    #[test]
    fn quorum_survives_minority_outage() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let clouds = clouds_with_dead(&rt, 5, 2);
        let lock = lock_on(rt, clouds, "dev-a", 8);
        let guard = lock.acquire().expect("3 of 5 clouds suffice");
        guard.release();
    }

    #[test]
    fn majority_outage_fails_fast() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let clouds = clouds_with_dead(&rt, 5, 3);
        let lock = lock_on(rt, clouds, "dev-a", 9);
        assert!(matches!(
            lock.acquire().unwrap_err(),
            LockError::QuorumUnreachable { reachable: 2, quorum: 3 }
        ));
    }

    #[test]
    fn refresh_replaces_lock_file() {
        let sim = SimRuntime::new(10);
        let rt = sim.clone().as_runtime();
        let clouds = mem_clouds(3);
        let lock = lock_on(rt, clouds.clone(), "dev-a", 11);
        let mut guard = lock.acquire().unwrap();
        let old = guard.lock_name().to_owned();
        sim.sleep(Duration::from_secs(30));
        guard.refresh();
        assert_ne!(guard.lock_name(), old);
        let (_, cloud) = clouds.iter().next().unwrap();
        let names: Vec<String> = cloud
            .list(LOCK_DIR)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0], guard.lock_name());
        guard.release();
    }

    #[test]
    fn starved_acquire_is_audited_once() {
        let sim = SimRuntime::new(14);
        let rt = sim.clone().as_runtime();
        let clouds = mem_clouds(5);
        // A live foreign holder that never goes stale: every round is a
        // losing round and the acquire eventually exhausts.
        for (_, c) in clouds.iter() {
            c.upload(
                &format!("{LOCK_DIR}/{}", lock_file_name("holder", 1)),
                unidrive_util::bytes::Bytes::new(),
            )
            .unwrap();
        }
        let config = LockConfig {
            max_attempts: 8,
            backoff_base: Duration::from_millis(400),
            backoff_max: Duration::from_millis(800),
            stale_after: Duration::from_secs(100_000),
            starvation_audit: Duration::from_millis(500),
        };
        let obs = unidrive_obs::Obs::with_registry(unidrive_obs::Registry::new());
        let lock = QuorumLock::new(rt, clouds, "dev-a", config, SimRng::seed_from_u64(15))
            .with_obs(obs.clone());
        assert!(matches!(
            lock.acquire().unwrap_err(),
            LockError::Contended { attempts: 8 }
        ));
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("lock.contended_rounds"), 8);
        // Flagged exactly once however many rounds starve past the
        // threshold.
        assert_eq!(snap.counter("lock.starved"), 1);
        let acquire = snap.spans.iter().find(|s| s.name == "lock.acquire").unwrap();
        assert_eq!(
            acquire.attr("starved"),
            Some(&unidrive_obs::FieldValue::B(true))
        );
    }

    #[test]
    fn drop_releases_best_effort() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let clouds = mem_clouds(3);
        let lock = lock_on(rt, clouds.clone(), "dev-a", 12);
        {
            let _guard = lock.acquire().unwrap();
        }
        for (_, c) in clouds.iter() {
            assert!(c.list(LOCK_DIR).unwrap().is_empty());
        }
    }
}
