//! # unidrive
//!
//! Facade crate for the UniDrive reproduction (Middleware 2015):
//! *UniDrive: Synergize Multiple Consumer Cloud Storage Services*.
//!
//! UniDrive is a server-less, client-centric consumer cloud storage (CCS)
//! app that synergizes multiple clouds using only five public RESTful file
//! APIs, achieving better sync performance, reliability and security than
//! any single CCS through erasure coding, quorum-locked metadata, block
//! over-provisioning and dynamic scheduling.
//!
//! This crate re-exports the whole workspace; see the individual crates
//! for details:
//!
//! * [`sim`] — deterministic virtual-time runtime and network model
//! * [`cloud`] — the five-op cloud storage abstraction and backends
//! * [`erasure`] — GF(2⁸) non-systematic Reed-Solomon coding
//! * [`chunker`] — content-defined segmentation (Rabin rolling hash)
//! * [`crypto`] — SHA-1 and DES-CBC (as named by the paper)
//! * [`meta`] — SyncFolderImage metadata model with delta-sync
//! * [`core`] — quorum lock, sync protocol, the over-provisioning
//!   scheduler, and [`core::UniDriveClient`]
//! * [`baseline`] — single-cloud and multi-cloud baselines from the paper
//! * [`workload`] — network profiles and evaluation workloads
//! * [`obs`] — virtual-time-aware metrics registry and event trace
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete two-device sync over five
//! simulated clouds.

pub use unidrive_baseline as baseline;
pub use unidrive_chunker as chunker;
pub use unidrive_cloud as cloud;
pub use unidrive_core as core;
pub use unidrive_crypto as crypto;
pub use unidrive_erasure as erasure;
pub use unidrive_meta as meta;
pub use unidrive_obs as obs;
pub use unidrive_sim as sim;
pub use unidrive_util as util;
pub use unidrive_workload as workload;
