//! In-memory [`CloudStore`]: instantaneous, always available, strongly
//! consistent. The storage backend behind [`SimCloud`](crate::SimCloud)
//! and the workhorse of unit tests.

use std::collections::BTreeMap;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::RwLock;

use crate::{split_path, validate_path, CloudError, CloudStore, ObjectInfo};

#[derive(Debug, Default)]
struct Tree {
    /// Object path -> contents.
    objects: BTreeMap<String, Bytes>,
    /// Explicitly or implicitly created directories.
    dirs: std::collections::BTreeSet<String>,
}

impl Tree {
    fn ensure_parents(&mut self, path: &str) {
        let mut acc = String::new();
        let (parent, _) = split_path(path);
        if parent.is_empty() {
            return;
        }
        for seg in parent.split('/') {
            if !acc.is_empty() {
                acc.push('/');
            }
            acc.push_str(seg);
            self.dirs.insert(acc.clone());
        }
    }

    fn dir_exists(&self, path: &str) -> bool {
        path.is_empty() || self.dirs.contains(path)
    }
}

/// An in-memory cloud with perfect availability and zero latency.
///
/// Useful directly in tests, and as the storage layer of simulated
/// clouds. All operations are thread-safe.
///
/// # Examples
///
/// ```
/// use unidrive_cloud::{CloudStore, MemCloud};
/// use unidrive_util::bytes::Bytes;
///
/// # fn main() -> Result<(), unidrive_cloud::CloudError> {
/// let c = MemCloud::new("test");
/// c.upload("x/y.bin", Bytes::from_static(&[1, 2, 3]))?;
/// assert!(c.exists("x/y.bin")?);
/// c.delete("x")?; // recursive
/// assert!(!c.exists("x/y.bin")?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemCloud {
    name: String,
    tree: RwLock<Tree>,
}

impl MemCloud {
    /// Creates an empty in-memory cloud.
    pub fn new(name: impl Into<String>) -> Self {
        MemCloud {
            name: name.into(),
            tree: RwLock::new(Tree::default()),
        }
    }

    /// Total bytes currently stored (object payloads only).
    pub fn used_bytes(&self) -> u64 {
        self.tree
            .read()
            .objects
            .values()
            .map(|b| b.len() as u64)
            .sum()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.tree.read().objects.len()
    }
}

impl CloudStore for MemCloud {
    fn name(&self) -> &str {
        &self.name
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        validate_path(path)?;
        let mut t = self.tree.write();
        t.ensure_parents(path);
        t.objects.insert(path.to_owned(), data);
        Ok(())
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        validate_path(path)?;
        self.tree
            .read()
            .objects
            .get(path)
            .cloned()
            .ok_or_else(|| CloudError::not_found(path))
    }

    fn caps(&self) -> crate::CloudCaps {
        crate::CloudCaps {
            // The override below extends in place under the write lock:
            // a true all-or-nothing append.
            native_append: true,
            read_after_write: true,
            max_object_bytes: None,
            supports_conditional_put: false,
            // Missing paths answer NotFound on delete and list alike.
            strict_not_found: true,
        }
    }

    fn append(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        // Native append: one atomic in-place extension under the write
        // lock (the default read-modify-write would be two ops).
        validate_path(path)?;
        let mut t = self.tree.write();
        t.ensure_parents(path);
        match t.objects.get_mut(path) {
            Some(existing) => {
                let mut out = Vec::with_capacity(existing.len() + data.len());
                out.extend_from_slice(existing);
                out.extend_from_slice(&data);
                *existing = Bytes::from(out);
            }
            None => {
                t.objects.insert(path.to_owned(), data);
            }
        }
        Ok(())
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        validate_path(path)?;
        let mut t = self.tree.write();
        let mut acc = String::new();
        for seg in path.split('/') {
            if !acc.is_empty() {
                acc.push('/');
            }
            acc.push_str(seg);
            t.dirs.insert(acc.clone());
        }
        Ok(())
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        if !path.is_empty() {
            validate_path(path)?;
        }
        let t = self.tree.read();
        if !t.dir_exists(path) {
            return Err(CloudError::not_found(path));
        }
        let prefix = if path.is_empty() {
            String::new()
        } else {
            format!("{path}/")
        };
        let mut out: Vec<ObjectInfo> = Vec::new();
        let mut seen_dirs = std::collections::BTreeSet::new();
        for (p, data) in t.objects.range(prefix.clone()..) {
            if !p.starts_with(&prefix) {
                break;
            }
            let rest = &p[prefix.len()..];
            match rest.find('/') {
                None => out.push(ObjectInfo {
                    name: rest.to_owned(),
                    size: data.len() as u64,
                    is_dir: false,
                }),
                Some(i) => {
                    seen_dirs.insert(rest[..i].to_owned());
                }
            }
        }
        for d in t.dirs.iter() {
            if let Some(rest) = d.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    seen_dirs.insert(rest.to_owned());
                }
            } else if prefix.is_empty() && !d.contains('/') {
                seen_dirs.insert(d.clone());
            }
        }
        for d in seen_dirs {
            out.push(ObjectInfo {
                name: d,
                size: 0,
                is_dir: true,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        validate_path(path)?;
        let mut t = self.tree.write();
        if t.objects.remove(path).is_some() {
            return Ok(());
        }
        if t.dirs.contains(path) {
            let prefix = format!("{path}/");
            t.objects.retain(|p, _| !p.starts_with(&prefix));
            t.dirs.retain(|d| d != path && !d.starts_with(&prefix));
            return Ok(());
        }
        Err(CloudError::not_found(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_round_trip() {
        let c = MemCloud::new("m");
        c.upload("a.bin", Bytes::from(vec![7u8; 100])).unwrap();
        assert_eq!(c.download("a.bin").unwrap().len(), 100);
    }

    #[test]
    fn download_missing_is_not_found() {
        let c = MemCloud::new("m");
        assert!(matches!(
            c.download("nope").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn append_creates_then_extends() {
        let c = MemCloud::new("m");
        c.append("log/ops_a", Bytes::from_static(b"one")).unwrap();
        c.append("log/ops_a", Bytes::from_static(b"two")).unwrap();
        assert_eq!(c.download("log/ops_a").unwrap(), Bytes::from_static(b"onetwo"));
        // Parents were auto-created like upload does.
        assert!(c.exists("log").unwrap());
    }

    /// A wrapper that delegates only the five primitive ops, so
    /// `append` runs the trait's default read-modify-write path.
    struct FiveOps(MemCloud);

    impl CloudStore for FiveOps {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn upload(&self, p: &str, d: Bytes) -> Result<(), CloudError> {
            self.0.upload(p, d)
        }
        fn download(&self, p: &str) -> Result<Bytes, CloudError> {
            self.0.download(p)
        }
        fn create_dir(&self, p: &str) -> Result<(), CloudError> {
            self.0.create_dir(p)
        }
        fn list(&self, p: &str) -> Result<Vec<ObjectInfo>, CloudError> {
            self.0.list(p)
        }
        fn delete(&self, p: &str) -> Result<(), CloudError> {
            self.0.delete(p)
        }
    }

    #[test]
    fn append_default_impl_matches_native() {
        let c = FiveOps(MemCloud::new("m"));
        c.append("log/ops_a", Bytes::from_static(b"one")).unwrap();
        c.append("log/ops_a", Bytes::from_static(b"two")).unwrap();
        assert_eq!(c.download("log/ops_a").unwrap(), Bytes::from_static(b"onetwo"));
    }

    #[test]
    fn upload_overwrites() {
        let c = MemCloud::new("m");
        c.upload("a", Bytes::from_static(b"old")).unwrap();
        c.upload("a", Bytes::from_static(b"new")).unwrap();
        assert_eq!(&c.download("a").unwrap()[..], b"new");
    }

    #[test]
    fn list_shows_files_and_dirs() {
        let c = MemCloud::new("m");
        c.upload("d/f1", Bytes::new()).unwrap();
        c.upload("d/sub/f2", Bytes::new()).unwrap();
        c.create_dir("d/empty").unwrap();
        let entries = c.list("d").unwrap();
        let names: Vec<_> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["empty", "f1", "sub"]);
        assert!(entries[0].is_dir && !entries[1].is_dir && entries[2].is_dir);
    }

    #[test]
    fn list_root_works() {
        let c = MemCloud::new("m");
        c.upload("top.txt", Bytes::new()).unwrap();
        c.create_dir("dir").unwrap();
        let names: Vec<_> = c
            .list("")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["dir", "top.txt"]);
    }

    #[test]
    fn list_missing_dir_is_not_found() {
        let c = MemCloud::new("m");
        assert!(matches!(
            c.list("ghost").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn delete_file_and_dir_recursively() {
        let c = MemCloud::new("m");
        c.upload("d/a", Bytes::new()).unwrap();
        c.upload("d/s/b", Bytes::new()).unwrap();
        c.delete("d/a").unwrap();
        assert!(!c.exists("d/a").unwrap());
        c.delete("d").unwrap();
        assert!(!c.exists("d/s/b").unwrap());
        assert!(matches!(
            c.delete("d").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn read_after_write_listing() {
        // The consistency contract UniDrive's lock protocol relies on.
        let c = MemCloud::new("m");
        c.upload("locks/lock_d1_5", Bytes::new()).unwrap();
        let names: Vec<_> = c
            .list("locks")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["lock_d1_5"]);
    }

    #[test]
    fn usage_accounting() {
        let c = MemCloud::new("m");
        c.upload("a", Bytes::from(vec![0u8; 10])).unwrap();
        c.upload("b", Bytes::from(vec![0u8; 20])).unwrap();
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(c.object_count(), 2);
    }

    #[test]
    fn invalid_paths_rejected_everywhere() {
        let c = MemCloud::new("m");
        assert!(c.upload("/abs", Bytes::new()).is_err());
        assert!(c.download("a//b").is_err());
        assert!(c.delete("../up").is_err());
    }
}
