//! Edge-case tests of the virtual-time engine: deadlock detection,
//! thread deregistration, flow conservation under churn, and timer/
//! semaphore races.

use std::sync::Arc;
use std::time::Duration;

use unidrive_sim::{spawn, LinkProfile, Runtime, SimRng, SimRuntime, Time};

#[test]
fn deadlock_is_detected_and_reported() {
    let result = std::panic::catch_unwind(|| {
        let sim = SimRuntime::new(1);
        let rt = sim.clone().as_runtime();
        // An actor waiting on a semaphore nobody will ever release, with
        // no timers and no flows: the engine must panic with a
        // diagnostic rather than hang.
        let sem = rt.semaphore(0);
        sem.acquire();
    });
    let payload = result.expect_err("deadlock must panic");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("virtual-time deadlock"),
        "diagnostic missing: {message}"
    );
}

#[test]
fn deregistered_thread_no_longer_blocks_time() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let sim = SimRuntime::new(2);
    let rt = sim.clone().as_runtime();
    let sim2 = sim.clone();
    let finished = Arc::new(AtomicBool::new(false));
    let finished2 = Arc::clone(&finished);
    // The spawned actor deregisters itself and then runs in real time;
    // the engine must advance virtual time without waiting for it. A
    // deregistered thread may no longer be awaited through engine
    // primitives, so completion is signalled via an atomic.
    spawn(&rt, "free-runner", move || {
        sim2.deregister_thread();
        std::thread::sleep(Duration::from_millis(20));
        finished2.store(true, Ordering::SeqCst);
    });
    sim.sleep(Duration::from_secs(10));
    assert_eq!(sim.now(), Time::from_secs(10));
    // Main is a *running* actor while it really-waits, which is allowed.
    while !finished.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn flows_conserve_bytes_under_churn() {
    // Many staggered flows on one link: total virtual time must equal
    // total bytes / capacity when the link is saturated throughout.
    let sim = SimRuntime::new(3);
    let link = sim.add_link(LinkProfile::steady(10e6, 2e6)); // agg-limited
    let rt = sim.clone().as_runtime();
    let tasks: Vec<_> = (0..10)
        .map(|i| {
            let sim2 = sim.clone();
            spawn(&rt, &format!("f{i}"), move || {
                sim2.transfer(link, 1_000_000).unwrap();
            })
        })
        .collect();
    for t in tasks {
        t.join();
    }
    // 10 MB over a 2 MB/s aggregate = 5 s exactly.
    assert!((sim.now().as_secs_f64() - 5.0).abs() < 0.01);
}

#[test]
fn timer_and_release_race_is_consistent() {
    // Release exactly at the timeout instant: the acquirer must observe
    // exactly one of the outcomes, and the permit must not be lost.
    let sim = SimRuntime::new(4);
    let rt = sim.clone().as_runtime();
    let sem = rt.semaphore(0);
    let sem2 = Arc::clone(&sem);
    let rt2 = rt.clone();
    let releaser = spawn(&rt, "releaser", move || {
        rt2.sleep(Duration::from_secs(5));
        sem2.release(1);
    });
    let got = sem.acquire_timeout(Duration::from_secs(5));
    releaser.join();
    if got {
        assert_eq!(sem.permits(), 0);
    } else {
        // The permit survived for the next acquirer.
        assert_eq!(sem.permits(), 1);
    }
}

#[test]
fn zero_duration_sleep_returns_immediately() {
    let sim = SimRuntime::new(5);
    let before = sim.now();
    sim.sleep(Duration::ZERO);
    assert_eq!(sim.now(), before);
}

#[test]
fn many_links_advance_independently() {
    let sim = SimRuntime::new(6);
    let fast = sim.add_link(LinkProfile::steady(8e6, 8e6));
    let slow = sim.add_link(LinkProfile::steady(1e6, 1e6));
    let rt = sim.clone().as_runtime();
    let sim_a = sim.clone();
    let a = spawn(&rt, "fast", move || {
        sim_a.transfer(fast, 8_000_000).unwrap();
        sim_a.now()
    });
    let sim_b = sim.clone();
    let b = spawn(&rt, "slow", move || {
        sim_b.transfer(slow, 8_000_000).unwrap();
        sim_b.now()
    });
    assert_eq!(a.join().as_secs_f64(), 1.0);
    assert_eq!(b.join().as_secs_f64(), 8.0);
}

#[test]
fn rng_forks_are_deterministic_per_seed() {
    let draws = |seed: u64| {
        let sim = SimRuntime::new(seed);
        let mut rng = sim.fork_rng();
        (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(draws(42), draws(42));
    assert_ne!(draws(42), draws(43));
    let _ = SimRng::seed_from_u64(1);
}

#[test]
fn try_acquire_never_blocks_the_clock() {
    let sim = SimRuntime::new(7);
    let rt = sim.clone().as_runtime();
    let sem = rt.semaphore(1);
    assert!(sem.try_acquire());
    assert!(!sem.try_acquire());
    // The failed try must not have advanced virtual time.
    assert_eq!(sim.now(), Time::ZERO);
}

#[test]
fn instantaneous_rate_reflects_contention() {
    let sim = SimRuntime::new(8);
    let link = sim.add_link(LinkProfile::steady(4e6, 4e6));
    let idle_rate = sim.instantaneous_rate(link);
    assert_eq!(idle_rate, 4e6);
    // Start a competing flow; a new connection now shares the aggregate.
    let rt = sim.clone().as_runtime();
    let sim2 = sim.clone();
    let t = spawn(&rt, "bg", move || {
        sim2.transfer(link, 4_000_000).unwrap();
    });
    // Give the flow a moment to register.
    sim.sleep(Duration::from_millis(10));
    let contended = sim.instantaneous_rate(link);
    assert!(contended <= 2e6 + 1.0, "rate {contended}");
    t.join();
}
