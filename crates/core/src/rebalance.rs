//! Adding and removing CCSs (paper §6.2, "Adding or Removing CCSs").
//!
//! Because every client holds the full metadata (and can fetch any
//! content), membership changes reduce to block rebalancing:
//!
//! * **Remove**: the departing cloud's fair share is re-uploaded to the
//!   remaining clouds (blocks are identifiable from the metadata), then
//!   its references are dropped.
//! * **Add**: the new cloud's fair share is computed and uploaded;
//!   other clouds keep their blocks (extra blocks become reclaimable
//!   over-provisioned copies that the next GC can trim).

use std::sync::Arc;

use unidrive_cloud::{CloudId, CloudSet};
use unidrive_erasure::{Codec, ConfigError, RedundancyConfig};
use unidrive_meta::{block_path, BlockRef, SegmentId, SyncFolderImage};
use unidrive_sim::Runtime;

use crate::download::SegmentFetch;
use crate::plan::DataPlaneConfig;
use crate::probe::BandwidthProbe;

/// Error during a membership change.
#[derive(Debug)]
pub enum RebalanceError {
    /// The resulting configuration is invalid (e.g. fewer clouds than
    /// K_r).
    Config(ConfigError),
    /// A segment could not be reconstructed to mint new blocks.
    Fetch(crate::DownloadError),
    /// A cloud id is not a member of the deployment being changed (or
    /// removing it would empty the deployment).
    Membership {
        /// The offending id.
        id: CloudId,
    },
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::Config(e) => write!(f, "invalid membership change: {e}"),
            RebalanceError::Fetch(e) => write!(f, "cannot rebuild segment: {e}"),
            RebalanceError::Membership { id } => {
                write!(f, "{id} is not a removable member of this deployment")
            }
        }
    }
}

impl std::error::Error for RebalanceError {}

/// Outcome of a rebalance: the updated image and the new cloud set /
/// redundancy config the client should switch to.
#[derive(Debug)]
pub struct RebalanceOutcome {
    /// Image with updated block locations.
    pub image: SyncFolderImage,
    /// New cloud membership.
    pub clouds: CloudSet,
    /// Re-validated redundancy config for the new N.
    pub redundancy: RedundancyConfig,
    /// Blocks uploaded during the change.
    pub blocks_moved: usize,
}

/// Removes the cloud at `victim` from the deployment: every segment's
/// blocks stored there are re-homed onto the remaining clouds (under
/// their security caps), then dropped from the metadata.
///
/// # Errors
///
/// [`RebalanceError::Config`] if removing would violate `K_r ≤ N`;
/// [`RebalanceError::Fetch`] if some segment cannot be reconstructed to
/// mint replacement blocks.
pub fn remove_cloud(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    config: &DataPlaneConfig,
    image: &SyncFolderImage,
    victim: CloudId,
) -> Result<RebalanceOutcome, RebalanceError> {
    // Fail fast on a bad victim id, before any block moves.
    let remaining = clouds
        .try_with_removed(victim)
        .ok_or(RebalanceError::Membership { id: victim })?;
    let new_redundancy = config
        .redundancy
        .with_clouds(clouds.len() - 1)
        .map_err(RebalanceError::Config)?;
    let codec = Arc::new(Codec::for_config(&config.redundancy).expect("validated"));
    let probe = Arc::new(BandwidthProbe::new(clouds.len(), 1e6));
    let cap = new_redundancy.per_cloud_cap();

    let mut out = image.clone();
    let mut blocks_moved = 0usize;

    // Map old cloud indices to new ones (victim removed, others shift).
    let remap = |old: u16| -> Option<u16> {
        match (old as usize).cmp(&victim.0) {
            std::cmp::Ordering::Less => Some(old),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(old - 1),
        }
    };

    let segments: Vec<(SegmentId, unidrive_meta::SegmentEntry)> = image
        .segments()
        .map(|(id, e)| (*id, e.clone()))
        .collect();
    for (id, entry) in segments {
        let lost: Vec<BlockRef> = entry
            .blocks
            .iter()
            .filter(|b| b.cloud as usize == victim.0)
            .copied()
            .collect();
        if lost.is_empty() {
            // Just remap indices.
            rewrite_locations(&mut out, &id, &entry.blocks, &remap);
            continue;
        }
        // Reconstruct the segment from surviving blocks, then mint
        // replacement blocks on the surviving clouds.
        let survivors: Vec<BlockRef> = entry
            .blocks
            .iter()
            .filter(|b| b.cloud as usize != victim.0)
            .copied()
            .collect();
        let report = crate::download::run_download(
            rt,
            clouds,
            &codec,
            config,
            &probe,
            vec![SegmentFetch {
                id,
                len: entry.len,
                blocks: survivors.clone(),
            }],
        );
        let plain = report
            .segments
            .get(&id)
            .cloned()
            .ok_or_else(|| {
                RebalanceError::Fetch(crate::DownloadError::NotEnoughBlocks {
                    segment: id,
                    got: 0,
                    need: codec.k(),
                })
            })?;
        // Place each lost block on the surviving cloud with the fewest
        // blocks of this segment (respecting the new cap). The block
        // index is reused: the data is identical wherever it lives.
        let mut counts: Vec<(usize, usize)> = clouds
            .iter()
            .filter(|(cid, _)| cid.0 != victim.0)
            .map(|(cid, _)| {
                (
                    cid.0,
                    survivors.iter().filter(|b| b.cloud as usize == cid.0).count(),
                )
            })
            .collect();
        let mut new_blocks = survivors.clone();
        for block in lost {
            counts.sort_by_key(|&(_, count)| count);
            let Some(slot) = counts.iter_mut().find(|(_, count)| *count < cap) else {
                break; // cap-saturated; reliability is degraded but valid
            };
            let data = codec.encode_block(&plain, block.index as usize);
            // Slots were built from this set's own ids, but stay
            // fallible: an unknown id cannot host the block.
            let Some(target) = clouds.try_get(CloudId(slot.0)) else {
                return Err(RebalanceError::Membership { id: CloudId(slot.0) });
            };
            if target.upload(&block_path(&id, block.index), data).is_ok() {
                slot.1 += 1;
                blocks_moved += 1;
                new_blocks.push(BlockRef {
                    index: block.index,
                    cloud: slot.0 as u16,
                });
            }
        }
        rewrite_locations(&mut out, &id, &new_blocks, &remap);
        // The departing cloud's objects die with the account; no
        // explicit cleanup is needed.
    }

    Ok(RebalanceOutcome {
        image: out,
        clouds: remaining,
        redundancy: new_redundancy,
        blocks_moved,
    })
}

/// Adds `cloud` to the deployment: computes its fair share for every
/// segment and uploads it (minting previously unused block indices).
///
/// # Errors
///
/// [`RebalanceError`] as for [`remove_cloud`].
pub fn add_cloud(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    config: &DataPlaneConfig,
    image: &SyncFolderImage,
    cloud: Arc<dyn unidrive_cloud::CloudStore>,
) -> Result<RebalanceOutcome, RebalanceError> {
    let new_clouds = clouds.with_added(cloud);
    let new_redundancy = config
        .redundancy
        .with_clouds(new_clouds.len())
        .map_err(RebalanceError::Config)?;
    // The codec must be able to mint indices for the grown deployment.
    let grown_codec =
        Arc::new(Codec::for_config(&new_redundancy).expect("validated config"));
    let old_codec = Arc::new(Codec::for_config(&config.redundancy).expect("validated"));
    let probe = Arc::new(BandwidthProbe::new(clouds.len(), 1e6));
    let fair = new_redundancy.fair_share();
    let newcomer = (new_clouds.len() - 1) as u16;

    let mut out = image.clone();
    let mut blocks_moved = 0usize;
    let segments: Vec<(SegmentId, unidrive_meta::SegmentEntry)> = image
        .segments()
        .map(|(id, e)| (*id, e.clone()))
        .collect();
    for (id, entry) in segments {
        let report = crate::download::run_download(
            rt,
            clouds,
            &old_codec,
            config,
            &probe,
            vec![SegmentFetch {
                id,
                len: entry.len,
                blocks: entry.blocks.clone(),
            }],
        );
        let plain = report.segments.get(&id).cloned().ok_or_else(|| {
            RebalanceError::Fetch(crate::DownloadError::NotEnoughBlocks {
                segment: id,
                got: 0,
                need: old_codec.k(),
            })
        })?;
        let used: std::collections::HashSet<u16> =
            entry.blocks.iter().map(|b| b.index).collect();
        let mut minted = 0usize;
        for index in 0..grown_codec.n() as u16 {
            if minted >= fair {
                break;
            }
            if used.contains(&index) {
                continue;
            }
            let data = grown_codec.encode_block(&plain, index as usize);
            // `newcomer` indexes the cloud just appended to
            // `new_clouds`, but stay fallible like every other lookup.
            let Some(target) = new_clouds.try_get(CloudId(newcomer as usize)) else {
                return Err(RebalanceError::Membership {
                    id: CloudId(newcomer as usize),
                });
            };
            if target.upload(&block_path(&id, index), data).is_ok() {
                out.record_block(
                    id,
                    BlockRef {
                        index,
                        cloud: newcomer,
                    },
                );
                minted += 1;
                blocks_moved += 1;
            }
        }
    }

    Ok(RebalanceOutcome {
        image: out,
        clouds: new_clouds,
        redundancy: new_redundancy,
        blocks_moved,
    })
}

fn rewrite_locations(
    image: &mut SyncFolderImage,
    id: &SegmentId,
    blocks: &[BlockRef],
    remap: &dyn Fn(u16) -> Option<u16>,
) {
    let old: Vec<BlockRef> = image
        .segment(id)
        .map(|e| e.blocks.clone())
        .unwrap_or_default();
    for b in old {
        image.remove_block(id, b);
    }
    for b in blocks {
        if let Some(new_cloud) = remap(b.cloud) {
            image.record_block(
                *id,
                BlockRef {
                    index: b.index,
                    cloud: new_cloud,
                },
            );
        }
    }
}
