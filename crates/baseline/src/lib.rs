//! # unidrive-baseline
//!
//! The three comparison systems of the UniDrive evaluation (paper §7.1):
//!
//! * [`SingleCloudClient`] — a native CCS app's transfer engine: chunked
//!   multi-connection transfer to one cloud.
//! * [`IntuitiveMultiCloud`] — file parts handed to N native apps; no
//!   redundancy, completion dominated by the slowest cloud.
//! * [`MultiCloudBenchmark`] — RACS/DepSky-style: erasure-coded, evenly
//!   distributed, statically scheduled (no over-provisioning, no dynamic
//!   scheduling).
//! * [`UniDriveTransfer`] — UniDrive's own data plane behind the same
//!   interface so the harness can compare all four uniformly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmark;
mod intuitive;
mod single;
mod unidrive_transfer;

pub use benchmark::MultiCloudBenchmark;
pub use intuitive::IntuitiveMultiCloud;
pub use single::SingleCloudClient;
pub use unidrive_transfer::UniDriveTransfer;
