//! Outage failover demo (the scenario behind the paper's Fig. 14):
//! upload a file with K_r = 3 of N = 5, then knock clouds out one by
//! one and watch downloads keep working until the security bound bites.
//!
//! ```sh
//! cargo run --example outage_failover
//! ```

use std::sync::Arc;

use unidrive::cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive::baseline::UniDriveTransfer;
use unidrive::core::DataPlaneConfig;
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::SimRuntime;
use unidrive::workload::random_bytes;

fn main() {
    let sim = SimRuntime::new(7);
    let mut handles = Vec::new();
    let clouds = CloudSet::new(
        (0..5)
            .map(|i| {
                let c = Arc::new(SimCloud::new(
                    &sim,
                    format!("cloud-{i}"),
                    // Uneven speeds so over-provisioning has something to
                    // exploit.
                    SimCloudConfig::steady(0.4e6 * (i as f64 + 1.0), 4e6),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect(),
    );

    let config = DataPlaneConfig::with_params(
        RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
        512 * 1024,
    );
    let client = UniDriveTransfer::new(sim.clone().as_runtime(), clouds, config);

    // Pre-upload a 4 MB file (as the Fig. 14 experiment pre-uploads
    // 32 MB before injecting outages).
    let data = random_bytes(4 * 1024 * 1024, 99);
    let up = client.upload("payload.bin", data.clone()).expect("upload");
    println!("uploaded 4 MB, available after {:.2}s (virtual)", up.as_secs_f64());

    // Kill clouds one at a time, slowest first, and retry the download.
    println!("\n n dead | outcome");
    println!("--------+------------------------------");
    for dead in 0..5 {
        if dead > 0 {
            handles[dead - 1].set_available(false);
        }
        match client.download("payload.bin") {
            Ok((took, restored)) => {
                assert_eq!(restored, data.to_vec());
                println!("   {dead}    | ok, {:.2}s", took.as_secs_f64());
            }
            Err(e) => {
                println!("   {dead}    | FAILED ({e})");
            }
        }
    }

    println!(
        "\nWith K_r = 3 the paper expects success through n = 2 outages; \
         over-provisioned blocks often stretch that to n = 3, and with \
         only one cloud left the K_s = 2 security bound makes \
         reconstruction impossible by design."
    );
}
