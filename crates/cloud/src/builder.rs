//! Builder-composed decorator stacks over any [`CloudStore`].
//!
//! Call sites used to hand-nest decorators (`SimCloud` →
//! `ChaosCloud` → `ObservedCloud` → ...), each picking its own order —
//! and order matters: retries *outside* the fault injector see (and
//! absorb) injected failures, observation *outside* everything times
//! what the caller actually experienced, and rate shaping belongs
//! *inside* chaos so throttle delays can themselves be disturbed.
//! [`CloudBuilder`] fixes the canonical order once:
//!
//! ```text
//! base → QpsShaper → ChaosCloud → RetryCloud → ObservedCloud
//! ```
//!
//! Every stage is optional; setters may be called in any order and the
//! stack still composes canonically. [`build`](CloudBuilder::build)
//! returns the composed store plus the [`ChaosCloud`] handle (when
//! configured) so harnesses keep access to fault accounting and the
//! availability switch.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use unidrive_cloud::{CloudBuilder, CloudStore, FaultPlan, MemCloud, RetryPolicy};
//! use unidrive_sim::{RealRuntime, Runtime};
//!
//! let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
//! let built = CloudBuilder::new(&rt, Arc::new(MemCloud::new("m")))
//!     .retry(RetryPolicy::no_retries())
//!     .chaos(&FaultPlan::new(7), "demo")
//!     .build();
//! assert_eq!(built.store.name(), "m");
//! assert!(built.chaos.is_some());
//! ```

use std::sync::Arc;

use unidrive_obs::Obs;
use unidrive_sim::Runtime;

use crate::health::CloudHealth;
use crate::qps::QpsShaper;
use crate::retry::{RetryCloud, RetryPolicy};
use crate::{ChaosCloud, CloudStore, FaultPlan, ObservedCloud};

/// The composed stack plus handles to stages that stay interactive.
pub struct BuiltCloud {
    /// The outermost store of the composed stack.
    pub store: Arc<dyn CloudStore>,
    /// The fault injector, when [`CloudBuilder::chaos`] was configured
    /// (harnesses need [`ChaosCloud::injected_faults`],
    /// [`ChaosCloud::set_available`], and the flat-probability knob).
    pub chaos: Option<Arc<ChaosCloud>>,
}

impl std::fmt::Debug for BuiltCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltCloud")
            .field("store", &self.store.name())
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

/// Composes decorators over a base store in the canonical order; see
/// the [module docs](self).
#[must_use = "CloudBuilder does nothing until .build() is called"]
pub struct CloudBuilder {
    rt: Arc<dyn Runtime>,
    base: Arc<dyn CloudStore>,
    qps: Option<(u64, u64)>,
    chaos: Option<(FaultPlan, String)>,
    retry: Option<RetryPolicy>,
    observed: Option<Arc<CloudHealth>>,
    obs: Option<Obs>,
}

impl std::fmt::Debug for CloudBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudBuilder")
            .field("base", &self.base.name())
            .field("qps", &self.qps.is_some())
            .field("chaos", &self.chaos.is_some())
            .field("retry", &self.retry.is_some())
            .field("observed", &self.observed.is_some())
            .finish()
    }
}

impl CloudBuilder {
    /// Starts a stack over `base`; with no stages configured,
    /// [`build`](CloudBuilder::build) returns `base` unchanged.
    pub fn new(rt: &Arc<dyn Runtime>, base: Arc<dyn CloudStore>) -> CloudBuilder {
        CloudBuilder {
            rt: Arc::clone(rt),
            base,
            qps: None,
            chaos: None,
            retry: None,
            observed: None,
            obs: None,
        }
    }

    /// Adds request-rate shaping: `rate_per_sec` requests sustained,
    /// `burst` of headroom (see [`QpsShaper`]).
    pub fn qps(mut self, rate_per_sec: u64, burst: u64) -> CloudBuilder {
        self.qps = Some((rate_per_sec, burst));
        self
    }

    /// Adds seeded fault injection. `salt` keeps RNG streams disjoint
    /// when several stacks share one plan (see
    /// [`ChaosCloud::with_label`]).
    pub fn chaos(mut self, plan: &FaultPlan, salt: &str) -> CloudBuilder {
        self.chaos = Some((plan.clone(), salt.to_owned()));
        self
    }

    /// Adds a store-level retry loop around everything below it.
    pub fn retry(mut self, policy: RetryPolicy) -> CloudBuilder {
        self.retry = Some(policy);
        self
    }

    /// Adds outermost latency/health observation feeding `health`.
    pub fn observed(mut self, health: Arc<CloudHealth>) -> CloudBuilder {
        self.observed = Some(health);
        self
    }

    /// Attaches observability to the stages that emit it: installed on
    /// the chaos stage, used by retry counters and the observed
    /// stage's series. Without it those stages run silent.
    pub fn obs(mut self, obs: &Obs) -> CloudBuilder {
        self.obs = Some(obs.clone());
        self
    }

    /// Composes the stack in canonical order and returns it with the
    /// interactive stage handles.
    pub fn build(self) -> BuiltCloud {
        let obs = self.obs.clone().unwrap_or_else(Obs::noop);
        let mut store = self.base;
        if let Some((rate, burst)) = self.qps {
            store = Arc::new(QpsShaper::new(store, Arc::clone(&self.rt), rate, burst));
        }
        let mut chaos_handle = None;
        if let Some((plan, salt)) = &self.chaos {
            let chaos = Arc::new(ChaosCloud::with_label(
                store,
                Arc::clone(&self.rt),
                plan,
                salt,
            ));
            if self.obs.is_some() {
                chaos.install_obs(obs.clone());
            }
            chaos_handle = Some(Arc::clone(&chaos));
            store = chaos;
        }
        if let Some(policy) = self.retry {
            store = Arc::new(RetryCloud::new(
                store,
                Arc::clone(&self.rt),
                policy,
                obs.clone(),
            ));
        }
        if let Some(health) = self.observed {
            store = Arc::new(ObservedCloud::new(store, Arc::clone(&self.rt), health, obs));
        }
        BuiltCloud {
            store,
            chaos: chaos_handle,
        }
    }
}

/// Free-function constructors predating [`CloudBuilder`], kept as thin
/// shims for one PR so downstream call sites migrate at their own
/// pace. Each composes exactly one builder stage.
pub mod shims {
    use super::*;

    /// Wrap `inner` in request-rate shaping.
    #[deprecated(note = "compose via CloudBuilder::qps")]
    pub fn shaped(
        inner: Arc<dyn CloudStore>,
        rt: &Arc<dyn Runtime>,
        rate_per_sec: u64,
        burst: u64,
    ) -> Arc<dyn CloudStore> {
        CloudBuilder::new(rt, inner).qps(rate_per_sec, burst).build().store
    }

    /// Wrap `inner` in seeded fault injection.
    #[deprecated(note = "compose via CloudBuilder::chaos")]
    pub fn chaotic(
        inner: Arc<dyn CloudStore>,
        rt: &Arc<dyn Runtime>,
        plan: &FaultPlan,
        salt: &str,
    ) -> Arc<ChaosCloud> {
        CloudBuilder::new(rt, inner)
            .chaos(plan, salt)
            .build()
            .chaos
            .expect("chaos stage was configured")
    }

    /// Wrap `inner` in a store-level retry loop.
    #[deprecated(note = "compose via CloudBuilder::retry")]
    pub fn retrying(
        inner: Arc<dyn CloudStore>,
        rt: &Arc<dyn Runtime>,
        policy: RetryPolicy,
    ) -> Arc<dyn CloudStore> {
        CloudBuilder::new(rt, inner).retry(policy).build().store
    }

    /// Wrap `inner` in outermost health observation.
    #[deprecated(note = "compose via CloudBuilder::observed")]
    pub fn observed(
        inner: Arc<dyn CloudStore>,
        rt: &Arc<dyn Runtime>,
        health: Arc<CloudHealth>,
        obs: &Obs,
    ) -> Arc<dyn CloudStore> {
        CloudBuilder::new(rt, inner)
            .observed(health)
            .obs(obs)
            .build()
            .store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::{CloudError, FaultEvent, FaultKind, MemCloud};
    use unidrive_sim::SimRuntime;
    use unidrive_util::bytes::Bytes;

    fn rt() -> Arc<dyn Runtime> {
        SimRuntime::new(0xb111d).as_runtime()
    }

    #[test]
    fn empty_builder_returns_base_unchanged() {
        let rt = rt();
        let base: Arc<dyn CloudStore> = Arc::new(MemCloud::new("m"));
        let built = CloudBuilder::new(&rt, Arc::clone(&base)).build();
        built.store.upload("f", Bytes::from_static(b"x")).unwrap();
        assert_eq!(base.download("f").unwrap(), Bytes::from_static(b"x"));
        assert!(built.chaos.is_none());
        // No wrapper masked the base's native append capability.
        assert!(built.store.caps().native_append);
    }

    #[test]
    fn canonical_order_is_independent_of_setter_order() {
        // Retry outside chaos: a retryable injected failure must be
        // absorbed even though .retry() was configured before .chaos().
        let rt = rt();
        let mut plan = FaultPlan::new(0x5eed);
        plan.push(FaultEvent::always(
            "m",
            FaultKind::TransientBurst { probability: 1.0 },
        ));
        let built = CloudBuilder::new(&rt, Arc::new(MemCloud::new("m")))
            .retry(RetryPolicy {
                max_attempts: 50,
                initial_backoff: std::time::Duration::from_millis(1),
                max_backoff: std::time::Duration::from_millis(1),
            })
            .chaos(&plan, "t")
            .build();
        // With p = 1.0 the op ultimately fails, but if (and only if)
        // the retry layer sits outside the injector, every one of the
        // 50 attempts reaches it and is counted as an injected fault.
        let chaos = built.chaos.as_ref().unwrap();
        let err = built.store.upload("f", Bytes::from_static(b"x")).unwrap_err();
        assert!(matches!(err, CloudError::Transient { .. }));
        assert!(chaos.injected_faults() >= 50, "retry sat outside chaos");
    }

    #[test]
    fn observed_stage_is_outermost_and_health_sees_failures() {
        let rt = rt();
        let mut plan = FaultPlan::new(9);
        plan.push(FaultEvent::always(
            "m",
            FaultKind::TransientBurst { probability: 1.0 },
        ));
        let health = CloudHealth::new("m", HealthConfig::default());
        let built = CloudBuilder::new(&rt, Arc::new(MemCloud::new("m")))
            .chaos(&plan, "t")
            .observed(Arc::clone(&health))
            .build();
        let _ = built.store.upload("f", Bytes::from_static(b"x"));
        let tracker = health.tracker();
        assert_eq!(tracker.name(), "m");
    }

    #[test]
    fn deprecated_shims_still_compose() {
        #![allow(deprecated)]
        let rt = rt();
        let shaped = shims::shaped(Arc::new(MemCloud::new("m")), &rt, 1000, 100);
        shaped.upload("f", Bytes::from_static(b"x")).unwrap();
        let retried = shims::retrying(shaped, &rt, RetryPolicy::no_retries());
        assert_eq!(retried.download("f").unwrap(), Bytes::from_static(b"x"));
        let chaos = shims::chaotic(
            Arc::new(MemCloud::new("m")),
            &rt,
            &FaultPlan::new(3),
            "s",
        );
        assert_eq!(chaos.injected_faults(), 0);
        let health = CloudHealth::new("m", HealthConfig::default());
        let obs = Obs::noop();
        let observed = shims::observed(Arc::new(MemCloud::new("m")), &rt, health, &obs);
        assert_eq!(observed.name(), "m");
    }
}
