//! An immutable, cheaply-cloneable byte buffer.
//!
//! API-compatible (for the subset this workspace uses) with the
//! `bytes` crate: `Bytes::new/from/from_static/copy_from_slice`,
//! zero-copy `slice(range)`, `Deref<Target = [u8]>`, and conversions
//! from `Vec<u8>` and iterators. Backed by an `Arc<[u8]>` — or a
//! borrowed `&'static [u8]` for [`Bytes::from_static`] — plus a
//! window, so clones and sub-slices are O(1) and never copy the
//! payload.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage: refcounted heap bytes, or a borrowed static
/// slice (no allocation, no refcount traffic).
#[derive(Clone)]
enum Data {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

impl Data {
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Shared(a) => a,
            Data::Static(s) => s,
        }
    }
}

/// Immutable shared byte buffer; clones and `slice()` are O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer (no allocation at all).
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wraps a static slice without copying: the buffer borrows the
    /// slice for the program's lifetime, so construction, clones, and
    /// sub-slices never allocate.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Data::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Data::Shared(v.into()),
            start: 0,
            end,
        }
    }

    /// Number of bytes in the (windowed) buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted, matching the
    /// `bytes` crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice range {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the contents out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_vec(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from_vec(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "…(+{} bytes)", self.len() - 32)?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_and_windowed() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let s2 = s.slice(1..=2);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s2.len(), 2);
        // Same allocation: s2's first byte is b's byte 3 in memory.
        assert!(std::ptr::eq(&b[3], &s2[0]));
        match (&b.data, &s2.data) {
            (Data::Shared(a), Data::Shared(c)) => assert!(Arc::ptr_eq(a, c)),
            _ => panic!("vec-backed Bytes must stay Shared"),
        }
    }

    #[test]
    fn from_static_borrows_without_copying() {
        static PAYLOAD: &[u8] = b"immutable static payload";
        let b = Bytes::from_static(PAYLOAD);
        // Genuinely zero-copy: the buffer points at the static itself.
        assert!(std::ptr::eq(PAYLOAD.as_ptr(), b.as_slice().as_ptr()));
        // And slicing it stays on the static — no allocation appears.
        let s = b.slice(10..16);
        assert_eq!(&s[..], b"static");
        assert!(std::ptr::eq(&PAYLOAD[10], &s[0]));
        assert!(matches!(s.data, Data::Static(_)));
        // The empty buffer rides the same path.
        assert!(matches!(Bytes::new().data, Data::Static(_)));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn equality_and_conversions() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(Bytes::new().is_empty());
        let collected: Bytes = (0u8..4).collect();
        assert_eq!(&collected[..], &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..9);
    }

    #[test]
    fn slice_edge_cases_match_native_slicing() {
        // Empty, full-range, and nested slices must agree with what the
        // same ranges produce on a plain &[u8], including at the ends.
        let raw: Vec<u8> = (0..=255u8).collect();
        let b = Bytes::from(raw.clone());
        assert_eq!(b.slice(..), raw[..]);
        assert_eq!(b.slice(0..0).len(), 0);
        assert_eq!(b.slice(256..256).len(), 0);
        assert_eq!(b.slice(..=255), raw[..]);
        assert_eq!(b.slice(100..100), raw[100..100][..]);
        // Nested re-slicing composes like nested range indexing.
        let outer = b.slice(16..240);
        let mid = outer.slice(10..200);
        let inner = mid.slice(5..=5);
        assert_eq!(mid, raw[26..216][..]);
        assert_eq!(inner, raw[31..32][..]);
        // A zero-length slice of a slice, at its very end.
        let empty = mid.slice(mid.len()..);
        assert!(empty.is_empty());
        assert_eq!(empty.to_vec(), Vec::<u8>::new());
        // Slicing an empty buffer by its full (empty) range works.
        assert!(Bytes::new().slice(..).is_empty());
        assert!(Bytes::new().slice(0..0).is_empty());
    }
}
