//! The [`Runtime`] abstraction: everything UniDrive needs from "the world"
//! so that identical client code runs under wall-clock time
//! ([`RealRuntime`](crate::RealRuntime)) or deterministic virtual time
//! ([`SimRuntime`](crate::SimRuntime)).
//!
//! The surface is deliberately tiny: a clock, a sleeper, thread spawning,
//! and a counting semaphore. Every blocking primitive used by the sync
//! client (work queues, completion counters, joins) is built on the
//! semaphore, so the virtual-time engine can always tell when all actors
//! are blocked and time may advance.

use std::sync::Arc;
use std::time::Duration;

use unidrive_util::sync::Mutex;

use crate::Time;

/// A counting semaphore usable under both runtimes.
///
/// Under a [`SimRuntime`](crate::SimRuntime) the blocked thread is parked
/// on the virtual clock; under a [`RealRuntime`](crate::RealRuntime) it is
/// an ordinary condvar wait.
pub trait Semaphore: Send + Sync {
    /// Blocks until a permit is available, then consumes it.
    fn acquire(&self);

    /// Like [`acquire`](Semaphore::acquire) but gives up after `timeout`.
    /// Returns `true` if a permit was obtained.
    fn acquire_timeout(&self, timeout: Duration) -> bool;

    /// Consumes a permit if one is immediately available.
    fn try_acquire(&self) -> bool;

    /// Adds `n` permits, waking blocked acquirers.
    fn release(&self, n: usize);

    /// Number of currently available permits (racy; diagnostics only).
    fn permits(&self) -> usize;
}

/// A broadcast wait/notify cell (an *eventcount*), the primitive behind
/// pull-based worker pools: an idle worker parks until state it polls
/// may have changed, without holding any lock across the wait and
/// without missing a wake-up.
///
/// The protocol prevents lost wake-ups by versioning notifications:
///
/// 1. read `seen = generation()`,
/// 2. check the predicate (under whatever lock guards it),
/// 3. if not satisfied, call `wait(seen)` — which returns immediately
///    if any `notify_all` landed after step 1.
///
/// Under a [`SimRuntime`](crate::SimRuntime) waiters wake in FIFO order
/// on the virtual clock (deterministic); under a
/// [`RealRuntime`](crate::RealRuntime) it is a condvar broadcast.
pub trait Notifier: Send + Sync {
    /// Current notification generation; bumped by every
    /// [`notify_all`](Notifier::notify_all).
    fn generation(&self) -> u64;

    /// Blocks until the generation advances past `seen`. Returns
    /// immediately if it already has.
    fn wait(&self, seen: u64);

    /// Like [`wait`](Notifier::wait) but gives up after `timeout`.
    /// Returns `true` if woken by a notification, `false` on timeout.
    fn wait_timeout(&self, seen: u64, timeout: Duration) -> bool;

    /// Advances the generation and wakes every current waiter.
    fn notify_all(&self);
}

/// The execution environment UniDrive runs in.
///
/// See the crate docs for the actor rules that apply under the simulated
/// runtime (most importantly: only block through this trait's primitives).
pub trait Runtime: Send + Sync {
    /// Current time since the runtime's epoch.
    fn now(&self) -> Time;

    /// Blocks the calling thread for `d`.
    fn sleep(&self, d: Duration);

    /// Spawns `f` on a new thread registered with the runtime.
    ///
    /// Prefer the typed [`spawn`] helper, which returns a joinable
    /// [`Task`].
    fn spawn_raw(&self, name: &str, f: Box<dyn FnOnce() + Send>);

    /// Creates a counting semaphore with `permits` initial permits.
    fn semaphore(&self, permits: usize) -> Arc<dyn Semaphore>;

    /// Creates a wait/notify cell; see [`Notifier`].
    fn notifier(&self) -> Arc<dyn Notifier>;
}

/// Shared handle to a runtime.
pub type RuntimeHandle = Arc<dyn Runtime>;

/// Handle to a value produced by a spawned thread; see [`spawn`].
pub struct Task<T> {
    result: Arc<Mutex<Option<T>>>,
    done: Arc<dyn Semaphore>,
}

impl<T> std::fmt::Debug for Task<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("finished", &(self.done.permits() > 0))
            .finish()
    }
}

impl<T: Send + 'static> Task<T> {
    /// Blocks until the task finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the task itself panicked (its result was never stored).
    pub fn join(self) -> T {
        self.done.acquire();
        self.result
            .lock()
            .take()
            .expect("task panicked before producing a result")
    }

    /// Returns `true` once the task has finished (without consuming it).
    pub fn is_finished(&self) -> bool {
        self.done.permits() > 0
    }
}

/// Spawns a closure on `rt`, returning a joinable [`Task`].
///
/// # Examples
///
/// ```
/// use unidrive_sim::{spawn, RealRuntime, Runtime};
/// use std::sync::Arc;
///
/// let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
/// let task = spawn(&rt, "worker", move || 2 + 2);
/// assert_eq!(task.join(), 4);
/// ```
pub fn spawn<T, F>(rt: &Arc<dyn Runtime>, name: &str, f: F) -> Task<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let done = rt.semaphore(0);
    let (res2, done2) = (Arc::clone(&result), Arc::clone(&done));
    rt.spawn_raw(
        name,
        Box::new(move || {
            let value = f();
            *res2.lock() = Some(value);
            done2.release(1);
        }),
    );
    Task { result, done }
}

/// A multi-producer multi-consumer FIFO queue built from a runtime
/// semaphore, safe to block on under virtual time.
///
/// # Examples
///
/// ```
/// use unidrive_sim::{RealRuntime, Runtime, SimQueue};
/// use std::sync::Arc;
///
/// let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
/// let q = SimQueue::new(&rt);
/// q.push(5);
/// assert_eq!(q.pop(), 5);
/// ```
#[derive(Clone)]
pub struct SimQueue<T> {
    items: Arc<Mutex<std::collections::VecDeque<T>>>,
    available: Arc<dyn Semaphore>,
}

impl<T: Send> SimQueue<T> {
    /// Creates an empty queue on `rt`.
    pub fn new(rt: &Arc<dyn Runtime>) -> Self {
        SimQueue {
            items: Arc::new(Mutex::new(std::collections::VecDeque::new())),
            available: rt.semaphore(0),
        }
    }

    /// Appends an item and wakes one blocked consumer.
    pub fn push(&self, item: T) {
        self.items.lock().push_back(item);
        self.available.release(1);
    }

    /// Blocks until an item is available and removes it.
    pub fn pop(&self) -> T {
        self.available.acquire();
        self.items
            .lock()
            .pop_front()
            .expect("semaphore permit without queued item")
    }

    /// Removes an item if one is immediately available.
    pub fn try_pop(&self) -> Option<T> {
        if self.available.try_acquire() {
            Some(
                self.items
                    .lock()
                    .pop_front()
                    .expect("semaphore permit without queued item"),
            )
        } else {
            None
        }
    }

    /// Blocks up to `timeout` for an item.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        if self.available.acquire_timeout(timeout) {
            Some(
                self.items
                    .lock()
                    .pop_front()
                    .expect("semaphore permit without queued item"),
            )
        } else {
            None
        }
    }

    /// Current queue length (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the queue is currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for SimQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimQueue")
            .field("len", &self.items.lock().len())
            .finish()
    }
}
