//! Rabin fingerprinting over GF(2): the rolling hash behind
//! content-based segmentation (paper §6.1, citing LBFS).
//!
//! A window of `w` bytes is interpreted as a polynomial over GF(2) and
//! reduced modulo an irreducible polynomial `P`; sliding the window by
//! one byte updates the fingerprint in O(1) with two table lookups.

/// The LBFS polynomial: irreducible of degree 53 over GF(2).
pub const DEFAULT_POLY: u64 = 0x3DA3358B4DC173;

/// Degree of a polynomial (position of the highest set bit).
fn degree(p: u64) -> u32 {
    63 - p.leading_zeros()
}

/// `(value · x^shift) mod p` where `value` is a polynomial over GF(2).
fn mod_shift(mut value: u64, shift: u32, p: u64) -> u64 {
    let deg = degree(p);
    for _ in 0..shift {
        value <<= 1;
        if value >> deg != 0 {
            value ^= p;
        }
    }
    value
}

/// Rolling Rabin hash over a fixed-size byte window.
///
/// # Examples
///
/// ```
/// use unidrive_chunker::RabinHash;
///
/// let mut h = RabinHash::new(16);
/// let data = b"abcdefghijklmnopqrstuvwxyz";
/// // Fill the window, then roll.
/// for &b in &data[..16] {
///     h.push(b);
/// }
/// let at_16 = h.fingerprint();
/// h.roll(data[0], data[16]);
/// assert_ne!(h.fingerprint(), at_16);
/// ```
#[derive(Debug, Clone)]
pub struct RabinHash {
    fingerprint: u64,
    deg: u32,
    poly: u64,
    low_mask: u64,
    /// `(top_byte << deg) mod P` for the append step.
    append_table: [u64; 256],
    /// `(byte · x^(8·window)) mod P` for removing the expired byte.
    remove_table: [u64; 256],
    window: usize,
}

impl RabinHash {
    /// Creates a rolling hash with the [`DEFAULT_POLY`] and the given
    /// window size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        Self::with_poly(window, DEFAULT_POLY)
    }

    /// Creates a rolling hash with a custom irreducible polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or the polynomial has degree < 9.
    pub fn with_poly(window: usize, poly: u64) -> Self {
        assert!(window > 0, "window must be non-empty");
        let deg = degree(poly);
        assert!(deg >= 9, "polynomial degree too small");
        let mut append_table = [0u64; 256];
        let mut remove_table = [0u64; 256];
        for b in 0..256u64 {
            // b's contribution once it is shifted past the top of the
            // fingerprint register.
            append_table[b as usize] = mod_shift(b, deg, poly);
            // b's contribution once it is the oldest byte of the window
            // *after* a new byte has been appended.
            remove_table[b as usize] = mod_shift(b, 8 * window as u32, poly);
        }
        RabinHash {
            fingerprint: 0,
            deg,
            poly,
            low_mask: (1u64 << (deg - 8)) - 1,
            append_table,
            remove_table,
            window,
        }
    }

    /// The window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Current fingerprint (valid once `window` bytes were pushed).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Appends a byte without expiring one (used to fill the window).
    #[inline]
    pub fn push(&mut self, byte: u8) {
        let top = self.fingerprint >> (self.deg - 8);
        self.fingerprint = (((self.fingerprint & self.low_mask) << 8) | byte as u64)
            ^ self.append_table[top as usize];
    }

    /// Slides the window: expires `oldest`, appends `newest`.
    #[inline]
    pub fn roll(&mut self, oldest: u8, newest: u8) {
        self.push(newest);
        self.fingerprint ^= self.remove_table[oldest as usize];
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        self.fingerprint = 0;
    }

    /// Convenience: fingerprint of the last `window` bytes of `data`
    /// computed from scratch (reference implementation for tests).
    pub fn fingerprint_of(&self, data: &[u8]) -> u64 {
        let mut f = 0u64;
        let start = data.len().saturating_sub(self.window);
        for &b in &data[start..] {
            let top = f >> (self.deg - 8);
            f = (((f & self.low_mask) << 8) | b as u64) ^ self.append_table[top as usize];
        }
        f
    }

    /// The polynomial in use.
    pub fn poly(&self) -> u64 {
        self.poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_from_scratch() {
        let data: Vec<u8> = (0..500).map(|i| ((i * 37 + 11) % 256) as u8).collect();
        let window = 48;
        let mut h = RabinHash::new(window);
        for &b in &data[..window] {
            h.push(b);
        }
        let reference = RabinHash::new(window);
        assert_eq!(h.fingerprint(), reference.fingerprint_of(&data[..window]));
        for i in window..data.len() {
            h.roll(data[i - window], data[i]);
            assert_eq!(
                h.fingerprint(),
                reference.fingerprint_of(&data[..=i]),
                "mismatch at {i}"
            );
        }
    }

    #[test]
    fn fingerprint_depends_only_on_window() {
        // Two different prefixes, same final window bytes -> same hash.
        let window = 32;
        let suffix: Vec<u8> = (0..window).map(|i| (i * 7) as u8).collect();
        let mut a: Vec<u8> = vec![1, 2, 3, 4, 5];
        let mut b: Vec<u8> = vec![200, 100, 50];
        a.extend_from_slice(&suffix);
        b.extend_from_slice(&suffix);
        let h = RabinHash::new(window);
        assert_eq!(h.fingerprint_of(&a), h.fingerprint_of(&b));
    }

    #[test]
    fn fingerprints_are_well_distributed() {
        let window = 48;
        let h = RabinHash::new(window);
        let mut data = vec![0u8; window];
        let mut low_bits = std::collections::HashSet::new();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..2000u32 {
            for b in data.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 32) as u8;
            }
            low_bits.insert(h.fingerprint_of(&data) & 0xFFF);
        }
        // With 4096 buckets and 2000 samples, expect most to be distinct.
        assert!(low_bits.len() > 1400, "got {} distinct", low_bits.len());
    }

    #[test]
    fn reset_clears_state() {
        let mut h = RabinHash::new(8);
        for b in 0..20u8 {
            h.push(b);
        }
        h.reset();
        assert_eq!(h.fingerprint(), 0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_rejected() {
        let _ = RabinHash::new(0);
    }
}
