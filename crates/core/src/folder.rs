//! The local sync folder interface (paper §4, "local interface layer").
//!
//! UniDrive monitors a local folder for changes and commits cloud
//! updates back into it. We use scan-based change detection (no
//! OS-specific watchers): [`scan_changes`] compares the folder against
//! the last-synced [`SyncFolderImage`] and produces the ChangedFileList.
//!
//! Two backends: [`MemFolder`] (simulation, virtual-time experiments)
//! and [`DirFolder`] (a real directory on disk for the examples).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::RwLock;
use unidrive_meta::SyncFolderImage;

/// Error from sync folder operations.
#[derive(Debug)]
pub enum FolderError {
    /// Underlying I/O failure (disk-backed folders).
    Io(std::io::Error),
    /// The path escapes the folder or is malformed.
    InvalidPath(String),
}

impl std::fmt::Display for FolderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FolderError::Io(e) => write!(f, "folder i/o error: {e}"),
            FolderError::InvalidPath(p) => write!(f, "invalid folder path: {p}"),
        }
    }
}

impl std::error::Error for FolderError {}

impl From<std::io::Error> for FolderError {
    fn from(e: std::io::Error) -> Self {
        FolderError::Io(e)
    }
}

/// Metadata of one local file, as seen by a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalStat {
    /// Size in bytes.
    pub size: u64,
    /// Modification stamp (backend-defined monotonic-ish value).
    pub mtime_ns: u64,
}

/// A user's local sync folder.
///
/// Paths are `/`-separated and relative, as in
/// [`CloudStore`](unidrive_cloud::CloudStore).
pub trait SyncFolder: Send + Sync {
    /// Lists every file with its stat, in path order.
    ///
    /// # Errors
    ///
    /// [`FolderError::Io`] on backend failures.
    fn scan(&self) -> Result<BTreeMap<String, LocalStat>, FolderError>;

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`FolderError`] if missing or unreadable.
    fn read(&self, path: &str) -> Result<Bytes, FolderError>;

    /// Writes a whole file (creating parents), stamping it with
    /// `mtime_ns`.
    ///
    /// # Errors
    ///
    /// [`FolderError`] on backend failures.
    fn write(&self, path: &str, data: &[u8], mtime_ns: u64) -> Result<(), FolderError>;

    /// Deletes a file. Missing files are fine (idempotent).
    ///
    /// # Errors
    ///
    /// [`FolderError::Io`] on backend failures other than not-found.
    fn remove(&self, path: &str) -> Result<(), FolderError>;
}

/// A local change detected by [`scan_changes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalChange {
    /// File is new or its (size, mtime) differs from the synced image.
    Changed {
        /// Folder-relative path.
        path: String,
        /// Current stat.
        stat: LocalStat,
    },
    /// File present in the image but gone locally.
    Deleted {
        /// Folder-relative path.
        path: String,
    },
}

impl LocalChange {
    /// The affected path.
    pub fn path(&self) -> &str {
        match self {
            LocalChange::Changed { path, .. } | LocalChange::Deleted { path } => path,
        }
    }
}

/// Compares the folder against the image, producing the paper's
/// ChangedFileList: everything added, edited or deleted since the last
/// successful sync. A file counts as edited when its size or mtime
/// differs from the snapshot (content hashing happens later, during
/// segmentation, and suppresses false positives via deduplication).
///
/// # Errors
///
/// Propagates scan failures.
pub fn scan_changes(
    folder: &dyn SyncFolder,
    image: &SyncFolderImage,
) -> Result<Vec<LocalChange>, FolderError> {
    let current = folder.scan()?;
    let mut changes = Vec::new();
    for (path, stat) in &current {
        let unchanged = image.file(path).is_some_and(|entry| {
            entry.snapshot.size == stat.size && entry.snapshot.mtime_ns == stat.mtime_ns
        });
        if !unchanged {
            changes.push(LocalChange::Changed {
                path: path.clone(),
                stat: *stat,
            });
        }
    }
    for (path, _) in image.files() {
        if !current.contains_key(path) {
            changes.push(LocalChange::Deleted {
                path: path.to_owned(),
            });
        }
    }
    Ok(changes)
}

/// In-memory sync folder for simulations and tests.
#[derive(Debug, Default)]
pub struct MemFolder {
    files: RwLock<BTreeMap<String, (Bytes, u64)>>,
}

impl MemFolder {
    /// Creates an empty folder.
    pub fn new() -> Arc<Self> {
        Arc::new(MemFolder::default())
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }
}

impl SyncFolder for MemFolder {
    fn scan(&self) -> Result<BTreeMap<String, LocalStat>, FolderError> {
        Ok(self
            .files
            .read()
            .iter()
            .map(|(p, (data, mtime))| {
                (
                    p.clone(),
                    LocalStat {
                        size: data.len() as u64,
                        mtime_ns: *mtime,
                    },
                )
            })
            .collect())
    }

    fn read(&self, path: &str) -> Result<Bytes, FolderError> {
        self.files
            .read()
            .get(path)
            .map(|(d, _)| d.clone())
            .ok_or_else(|| FolderError::InvalidPath(format!("{path}: not found")))
    }

    fn write(&self, path: &str, data: &[u8], mtime_ns: u64) -> Result<(), FolderError> {
        self.files
            .write()
            .insert(path.to_owned(), (Bytes::copy_from_slice(data), mtime_ns));
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), FolderError> {
        self.files.write().remove(path);
        Ok(())
    }
}

/// A sync folder backed by a real directory.
#[derive(Debug)]
pub struct DirFolder {
    root: PathBuf,
}

impl DirFolder {
    /// Opens (creating if needed) the directory.
    ///
    /// # Errors
    ///
    /// [`FolderError::Io`] if the directory cannot be created.
    pub fn create(root: impl AsRef<Path>) -> Result<Arc<Self>, FolderError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(Arc::new(DirFolder { root }))
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> Result<PathBuf, FolderError> {
        if path.is_empty()
            || path.starts_with('/')
            || path.split('/').any(|s| s.is_empty() || s == "." || s == "..")
        {
            return Err(FolderError::InvalidPath(path.to_owned()));
        }
        Ok(self.root.join(path))
    }

    fn walk(
        &self,
        dir: &Path,
        prefix: &str,
        out: &mut BTreeMap<String, LocalStat>,
    ) -> Result<(), FolderError> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel = if prefix.is_empty() {
                name
            } else {
                format!("{prefix}/{name}")
            };
            if meta.is_dir() {
                self.walk(&entry.path(), &rel, out)?;
            } else {
                let mtime_ns = meta
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                out.insert(
                    rel,
                    LocalStat {
                        size: meta.len(),
                        mtime_ns,
                    },
                );
            }
        }
        Ok(())
    }
}

impl SyncFolder for DirFolder {
    fn scan(&self) -> Result<BTreeMap<String, LocalStat>, FolderError> {
        let mut out = BTreeMap::new();
        self.walk(&self.root, "", &mut out)?;
        Ok(out)
    }

    fn read(&self, path: &str) -> Result<Bytes, FolderError> {
        Ok(Bytes::from(std::fs::read(self.resolve(path)?)?))
    }

    fn write(&self, path: &str, data: &[u8], _mtime_ns: u64) -> Result<(), FolderError> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(full, data)?;
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), FolderError> {
        match std::fs::remove_file(self.resolve(path)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_crypto::Sha1;
    use unidrive_meta::{SegmentId, Snapshot};

    fn image_with(path: &str, size: u64, mtime_ns: u64) -> SyncFolderImage {
        let mut img = SyncFolderImage::new();
        let seg = SegmentId(Sha1::digest(path.as_bytes()));
        img.ensure_segment(seg, size);
        img.upsert_file(
            path,
            Snapshot {
                mtime_ns,
                size,
                segments: vec![seg],
            },
        );
        img
    }

    #[test]
    fn scan_detects_new_edit_delete() {
        let folder = MemFolder::new();
        folder.write("kept.txt", b"12345", 100).unwrap();
        folder.write("edited.txt", b"new content", 200).unwrap();
        folder.write("added.txt", b"hi", 300).unwrap();

        let mut image = image_with("kept.txt", 5, 100);
        let other = image_with("edited.txt", 5, 100);
        for (p, e) in other.files() {
            for id in &e.snapshot.segments {
                image.ensure_segment(*id, 5);
            }
            image.upsert_file(p, e.snapshot.clone());
        }
        let ghost = image_with("ghost.txt", 1, 1);
        for (p, e) in ghost.files() {
            for id in &e.snapshot.segments {
                image.ensure_segment(*id, 1);
            }
            image.upsert_file(p, e.snapshot.clone());
        }

        let mut changes = scan_changes(folder.as_ref(), &image).unwrap();
        changes.sort_by(|a, b| a.path().cmp(b.path()));
        let paths: Vec<&str> = changes.iter().map(|c| c.path()).collect();
        assert_eq!(paths, vec!["added.txt", "edited.txt", "ghost.txt"]);
        assert!(matches!(changes[0], LocalChange::Changed { .. }));
        assert!(matches!(changes[1], LocalChange::Changed { .. }));
        assert!(matches!(changes[2], LocalChange::Deleted { .. }));
    }

    #[test]
    fn unchanged_files_produce_no_changes() {
        let folder = MemFolder::new();
        folder.write("same.txt", b"12345", 100).unwrap();
        let image = image_with("same.txt", 5, 100);
        assert!(scan_changes(folder.as_ref(), &image).unwrap().is_empty());
    }

    #[test]
    fn mem_folder_round_trip() {
        let f = MemFolder::new();
        f.write("a/b.txt", b"data", 1).unwrap();
        assert_eq!(&f.read("a/b.txt").unwrap()[..], b"data");
        f.remove("a/b.txt").unwrap();
        assert!(f.read("a/b.txt").is_err());
        f.remove("a/b.txt").unwrap(); // idempotent
    }

    #[test]
    fn dir_folder_scans_nested_files() {
        let root = std::env::temp_dir().join(format!("unidrive-dirfolder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let f = DirFolder::create(&root).unwrap();
        f.write("x.txt", b"1", 0).unwrap();
        f.write("sub/deep/y.txt", b"22", 0).unwrap();
        let scan = f.scan().unwrap();
        assert_eq!(scan.len(), 2);
        assert_eq!(scan["sub/deep/y.txt"].size, 2);
        f.remove("x.txt").unwrap();
        assert_eq!(f.scan().unwrap().len(), 1);
    }

    #[test]
    fn dir_folder_rejects_traversal() {
        let root = std::env::temp_dir().join(format!("unidrive-dirtrav-{}", std::process::id()));
        let f = DirFolder::create(&root).unwrap();
        assert!(f.read("../secret").is_err());
        assert!(f.write("/abs", b"", 0).is_err());
    }
}
