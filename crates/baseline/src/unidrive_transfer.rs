//! A micro-benchmark wrapper giving UniDrive's data plane the same
//! `upload`/`download` interface as the baselines, so the evaluation
//! harness can compare all four systems uniformly (paper Figs. 8-10).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_cloud::{CloudError, CloudSet};
use unidrive_core::{DataPlane, DataPlaneConfig, SegmentFetch, UploadRequest};
use unidrive_meta::{BlockRef, SegmentId};
use unidrive_sim::Runtime;

use crate::benchmark::SegmentManifest;

/// UniDrive's data plane behind the uniform transfer interface.
pub struct UniDriveTransfer {
    plane: DataPlane,
    /// name → ordered (segment, len) plus block locations.
    manifest: Mutex<HashMap<String, SegmentManifest>>,
}

impl std::fmt::Debug for UniDriveTransfer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UniDriveTransfer").finish()
    }
}

impl UniDriveTransfer {
    /// Creates the wrapper over `clouds`.
    pub fn new(rt: Arc<dyn Runtime>, clouds: CloudSet, config: DataPlaneConfig) -> Self {
        UniDriveTransfer {
            plane: DataPlane::new(rt, clouds, config),
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped data plane.
    pub fn plane(&self) -> &DataPlane {
        &self.plane
    }

    /// Uploads one file through the full UniDrive upload path, returning
    /// the *available time* (the paper's headline metric).
    ///
    /// # Errors
    ///
    /// [`CloudError::Transient`] if availability could not be reached.
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let (report, segmentations) = self.plane.upload_files(
            vec![UploadRequest {
                path: name.to_owned(),
                data,
            }],
            &HashSet::new(),
        );
        let Some(available) = report.available_duration() else {
            return Err(CloudError::transient("upload did not reach availability"));
        };
        let mut by_seg: HashMap<SegmentId, Vec<BlockRef>> = HashMap::new();
        for (id, b) in &report.blocks {
            by_seg.entry(*id).or_default().push(*b);
        }
        let manifest = segmentations[0]
            .segments
            .iter()
            .map(|(id, len)| (*id, *len, by_seg.get(id).cloned().unwrap_or_default()))
            .collect();
        self.manifest.lock().insert(name.to_owned(), manifest);
        Ok(available)
    }

    /// Downloads one file through the dynamic download scheduler.
    ///
    /// # Errors
    ///
    /// [`CloudError`] on unknown names or unreachable segments.
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        let manifest = self
            .manifest
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| CloudError::not_found(name))?;
        let fetches: Vec<SegmentFetch> = manifest
            .iter()
            .map(|(id, len, blocks)| SegmentFetch {
                id: *id,
                len: *len,
                blocks: blocks.clone(),
            })
            .collect();
        let report = self.plane.download_segments(fetches);
        if !report.is_complete() {
            return Err(CloudError::transient(format!(
                "download incomplete: {}",
                report.failed[0]
            )));
        }
        let mut out = Vec::new();
        for (id, _, _) in &manifest {
            out.extend_from_slice(&report.segments[id]);
        }
        Ok((report.total_duration(), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_erasure::RedundancyConfig;
    use unidrive_sim::SimRuntime;

    #[test]
    fn uniform_interface_round_trips() {
        let sim = SimRuntime::new(1);
        let clouds = CloudSet::new(
            (0..5)
                .map(|i| {
                    Arc::new(SimCloud::new(
                        &sim,
                        format!("c{i}"),
                        SimCloudConfig::steady(2e6, 10e6),
                    )) as Arc<dyn CloudStore>
                })
                .collect(),
        );
        let config = DataPlaneConfig::with_params(
            RedundancyConfig::paper_default(),
            128 * 1024,
        );
        let client = UniDriveTransfer::new(sim.clone().as_runtime(), clouds, config);
        let data = Bytes::from((0..400_000u32).map(|i| (i % 256) as u8).collect::<Vec<_>>());
        let up = client.upload("f", data.clone()).unwrap();
        assert!(up > Duration::ZERO);
        let (down, restored) = client.download("f").unwrap();
        assert!(down > Duration::ZERO);
        assert_eq!(restored, data.to_vec());
    }
}
