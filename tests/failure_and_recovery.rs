//! Integration tests of the failure paths: outages mid-sync, conflict
//! resolution, over-provisioned-block trimming, delta compaction over
//! long histories, and add/remove-cloud rebalancing driven through the
//! public API.

use std::sync::Arc;
use std::time::Duration;

use unidrive::cloud::{CloudId, CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive::core::{
    add_cloud, remove_cloud, trim_overprovisioned, ClientConfig, DataPlane, DataPlaneConfig,
    MemFolder, SyncFolder, UniDriveClient, UploadRequest,
};
use unidrive::erasure::RedundancyConfig;
use unidrive::meta::Snapshot;
use unidrive::sim::{Runtime, SimRng, SimRuntime};

struct Rig {
    sim: Arc<SimRuntime>,
    clouds: CloudSet,
    handles: Vec<Arc<SimCloud>>,
}

fn rig(seed: u64, rates: &[f64]) -> Rig {
    let sim = SimRuntime::new(seed);
    let mut handles = Vec::new();
    let members = rates
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let c = Arc::new(SimCloud::new(
                &sim,
                format!("cloud{i}"),
                SimCloudConfig::steady(r, r * 4.0),
            ));
            handles.push(Arc::clone(&c));
            c as Arc<dyn CloudStore>
        })
        .collect();
    Rig {
        sim,
        clouds: CloudSet::new(members),
        handles,
    }
}

fn client(rig: &Rig, device: &str, folder: &Arc<MemFolder>, seed: u64) -> UniDriveClient {
    let mut config = ClientConfig::paper_default(device);
    config.data = DataPlaneConfig::with_params(
        RedundancyConfig::new(rig.clouds.len(), 3, 3, 2).unwrap(),
        64 * 1024,
    );
    UniDriveClient::new(
        rig.sim.clone().as_runtime(),
        rig.clouds.clone(),
        Arc::clone(folder) as Arc<dyn SyncFolder>,
        config,
        SimRng::seed_from_u64(seed),
    )
}

fn content(len: usize, tag: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8) ^ tag.wrapping_mul(31)).collect()
}

#[test]
fn commit_survives_minority_outage_and_recovers_majority() {
    let r = rig(1, &[1e6; 5]);
    let folder_a = MemFolder::new();
    let mut a = client(&r, "a", &folder_a, 1);

    // Two clouds down: quorum (3 of 5) still reachable.
    r.handles[0].set_available(false);
    r.handles[1].set_available(false);
    folder_a.write("f.bin", &content(100_000, 1), 1).unwrap();
    let rep = a.sync_once().expect("commit with 3 of 5 clouds");
    assert_eq!(rep.uploaded, vec!["f.bin"]);

    // A fresh device can still read everything, even with the two clouds
    // still dark.
    let folder_b = MemFolder::new();
    let mut b = client(&r, "b", &folder_b, 2);
    let rep = b.sync_once().expect("B pulls");
    assert_eq!(rep.downloaded, vec!["f.bin"]);

    // When the dark clouds return, later commits re-replicate metadata
    // onto them.
    r.handles[0].set_available(true);
    r.handles[1].set_available(true);
    folder_a.write("g.bin", &content(50_000, 2), 2).unwrap();
    a.sync_once().expect("second commit");
    for h in &r.handles {
        assert!(
            h.backing().object_count() > 0,
            "all clouds hold objects again"
        );
    }
}

#[test]
fn majority_outage_blocks_commit_then_recovers() {
    let r = rig(2, &[1e6; 5]);
    let folder = MemFolder::new();
    let mut c = client(&r, "a", &folder, 3);
    for h in r.handles.iter().take(3) {
        h.set_available(false);
    }
    folder.write("f.bin", &content(50_000, 1), 1).unwrap();
    assert!(c.sync_once().is_err(), "no quorum, commit must fail");
    // Nothing half-committed: no metadata version anywhere readable.
    for h in &r.handles {
        h.set_available(true);
    }
    let rep = c.sync_once().expect("retry after recovery");
    assert_eq!(rep.uploaded, vec!["f.bin"]);
}

#[test]
fn conflict_resolution_keep_current_and_keep_copy() {
    let r = rig(3, &[2e6; 5]);
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&r, "a", &folder_a, 4);
    let mut b = client(&r, "b", &folder_b, 5);

    folder_a.write("doc", &content(40_000, 1), 1).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();

    let version_a = content(42_000, 2);
    let version_b = content(44_000, 3);
    folder_a.write("doc", &version_a, 2).unwrap();
    folder_b.write("doc", &version_b, 2).unwrap();
    a.sync_once().unwrap();
    b.sync_once().unwrap();
    assert_eq!(b.conflicts(), vec!["doc"]);

    // Resolve on B by restoring ITS version (the losing copy).
    assert!(b.resolve_conflict("doc", false).unwrap());
    assert!(b.conflicts().is_empty());
    assert_eq!(folder_b.read("doc").unwrap().to_vec(), version_b);
    // The restoration is an ordinary local change: committing it makes
    // B's version current everywhere.
    b.sync_once().unwrap();
    let rep = a.sync_once().unwrap();
    assert!(rep.downloaded.contains(&"doc".to_string()));
    assert_eq!(folder_a.read("doc").unwrap().to_vec(), version_b);

    // Resolving a non-conflicted file reports false.
    assert!(!a.resolve_conflict("doc", true).unwrap());
}

#[test]
fn trim_after_sync_reclaims_space_without_breaking_reads() {
    let r = rig(4, &[0.2e6, 0.4e6, 1e6, 2e6, 4e6]); // very uneven
    let folder = MemFolder::new();
    let mut c = client(&r, "a", &folder, 6);
    let data = content(300_000, 7);
    folder.write("big.bin", &data, 1).unwrap();
    c.sync_once().unwrap();
    // Let background reliability work drain, then settle the metadata.
    r.sim.sleep(Duration::from_secs(120));
    let _ = c.sync_once();

    let redundancy = RedundancyConfig::new(5, 3, 3, 2).unwrap();
    let mut image = c.image().clone();
    let used_before: u64 = r.handles.iter().map(|h| h.used_bytes()).sum();
    let trimmed = trim_overprovisioned(c.data_plane(), &mut image, &redundancy);
    let used_after: u64 = r.handles.iter().map(|h| h.used_bytes()).sum();
    assert!(trimmed > 0, "uneven clouds must over-provision");
    assert!(used_after < used_before, "trim reclaims quota");
    assert_eq!(
        c.data_plane().download_file(&image, "big.bin").unwrap(),
        data
    );
}

#[test]
fn delta_compaction_keeps_long_histories_readable() {
    let r = rig(5, &[4e6; 5]);
    let folder_a = MemFolder::new();
    let mut a = client(&r, "a", &folder_a, 7);
    // Enough sequential commits to force several λ compactions.
    for i in 0..60 {
        folder_a
            .write(&format!("log/f{i:03}"), &content(20_000, i as u8), i as u64)
            .unwrap();
        a.sync_once().expect("commit");
        r.sim.sleep(Duration::from_secs(5));
    }
    // A brand-new device reconstructs the full history.
    let folder_b = MemFolder::new();
    let mut b = client(&r, "b", &folder_b, 8);
    let rep = b.sync_once().expect("bootstrap");
    assert_eq!(rep.downloaded.len(), 60);
    assert_eq!(folder_b.file_count(), 60);
    assert_eq!(
        folder_b.read("log/f042").unwrap().to_vec(),
        content(20_000, 42)
    );
}

#[test]
fn remove_then_add_cloud_round_trip() {
    let r = rig(6, &[2e6; 5]);
    let rt = r.sim.clone().as_runtime();
    let config = DataPlaneConfig::with_params(
        RedundancyConfig::new(5, 3, 3, 2).unwrap(),
        64 * 1024,
    );
    let plane = DataPlane::new(rt.clone(), r.clouds.clone(), config.clone());
    let data: unidrive_util::bytes::Bytes = content(250_000, 9).into();
    let (report, segs) = plane.upload_files(
        vec![UploadRequest {
            path: "x".into(),
            data: data.clone(),
        }],
        &Default::default(),
    );
    assert!(report.all_available());
    let mut image = unidrive::meta::SyncFolderImage::new();
    for (id, len) in &segs[0].segments {
        image.ensure_segment(*id, *len);
    }
    for (id, b) in &report.blocks {
        image.record_block(*id, *b);
    }
    image.upsert_file(
        "x",
        Snapshot {
            mtime_ns: 0,
            size: segs[0].size,
            segments: segs[0].segments.iter().map(|(id, _)| *id).collect(),
        },
    );

    // Remove cloud 2; file must stay fully readable with 4 clouds.
    let removed = remove_cloud(&rt, &r.clouds, &config, &image, CloudId(2)).expect("remove");
    assert_eq!(removed.clouds.len(), 4);
    let mut cfg4 = config.clone();
    cfg4.redundancy = removed.redundancy;
    let plane4 = DataPlane::new(rt.clone(), removed.clouds.clone(), cfg4.clone());
    assert_eq!(
        plane4.download_file(&removed.image, "x").unwrap(),
        data.to_vec()
    );
    // No block references the removed cloud index range.
    for (_, entry) in removed.image.segments() {
        for b in &entry.blocks {
            assert!((b.cloud as usize) < 4);
        }
    }

    // Add a fresh cloud; the newcomer must receive its fair share.
    let newcomer = Arc::new(SimCloud::new(
        &r.sim,
        "fresh",
        SimCloudConfig::steady(2e6, 8e6),
    ));
    let grown = add_cloud(
        &rt,
        &removed.clouds,
        &cfg4,
        &removed.image,
        newcomer as Arc<dyn CloudStore>,
    )
    .expect("add");
    assert_eq!(grown.clouds.len(), 5);
    let fair = grown.redundancy.fair_share();
    for (_, entry) in grown.image.segments() {
        assert!(entry.blocks_on(4) >= fair, "newcomer holds its fair share");
    }
    let mut cfg5 = cfg4.clone();
    cfg5.redundancy = grown.redundancy;
    let plane5 = DataPlane::new(rt, grown.clouds.clone(), cfg5);
    assert_eq!(
        plane5.download_file(&grown.image, "x").unwrap(),
        data.to_vec()
    );
}

#[test]
fn removing_below_k_r_is_rejected() {
    let r = rig(7, &[1e6, 1e6, 1e6]);
    let rt = r.sim.clone().as_runtime();
    let config = DataPlaneConfig::with_params(
        RedundancyConfig::new(3, 3, 3, 2).unwrap(),
        64 * 1024,
    );
    let image = unidrive::meta::SyncFolderImage::new();
    assert!(remove_cloud(&rt, &r.clouds, &config, &image, CloudId(0)).is_err());
}

#[test]
fn quota_exhaustion_fails_over_to_other_clouds() {
    let sim = SimRuntime::new(8);
    let mut handles = Vec::new();
    let members: Vec<Arc<dyn CloudStore>> = (0..5)
        .map(|i| {
            let mut cfg = SimCloudConfig::steady(2e6, 8e6);
            if i == 0 {
                cfg.quota_bytes = Some(20_000); // tiny quota on cloud 0
            }
            let c = Arc::new(SimCloud::new(&sim, format!("c{i}"), cfg));
            handles.push(Arc::clone(&c));
            c as Arc<dyn CloudStore>
        })
        .collect();
    let clouds = CloudSet::new(members);
    let plane = DataPlane::new(
        sim.clone().as_runtime(),
        clouds,
        DataPlaneConfig::with_params(RedundancyConfig::new(5, 3, 3, 2).unwrap(), 64 * 1024),
    );
    let data: unidrive_util::bytes::Bytes = content(300_000, 5).into();
    let (report, _) = plane.upload_files(
        vec![UploadRequest {
            path: "f".into(),
            data,
        }],
        &Default::default(),
    );
    assert!(report.all_available(), "quota failure must not block availability");
    // Cloud 0 holds at most what its quota allowed; other clouds
    // adopted its share.
    assert!(handles[0].used_bytes() <= 20_000);
    let on_others = report.blocks.iter().filter(|(_, b)| b.cloud != 0).count();
    assert!(on_others >= 5, "orphaned blocks re-homed");
}
