//! **Figure 12** — cumulative number of synced files over time, Oregon
//! → Virginia (§7.2): UniDrive readies files at a fast, steady rate;
//! the other solutions' curves have varying slopes and may cross.

use std::sync::Arc;
use std::time::Duration;

use unidrive_util::sync::Mutex;
use unidrive_baseline::{IntuitiveMultiCloud, MultiCloudBenchmark, SingleCloudClient};
use unidrive_bench::{metrics_out, ExperimentScale};
use unidrive_cloud::CloudId;
use unidrive_core::{ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, UniDriveClient};
use unidrive_erasure::RedundancyConfig;
use unidrive_sim::{spawn, Runtime, SimRng, SimRuntime, Time};
use unidrive_workload::{batch, build_multicloud_shared, site_by_name, TextTable};

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = metrics_out::from_args();
    let (count, size) = scale.batch;
    let oregon = site_by_name("Oregon").expect("site");
    let virginia = site_by_name("Virginia").expect("site");
    println!(
        "Figure 12: cumulative synced files over time, Oregon -> Virginia, {count} x {} KB\n",
        size / 1024
    );

    // Per-system series of (seconds, cumulative files at sink).
    let mut series: Vec<(String, Vec<(f64, usize)>)> = Vec::new();

    // --- UniDrive, real protocol with progressive drops. ---
    {
        let sim = SimRuntime::new(1212);
        let (sets, handles) = build_multicloud_shared(&sim, &[oregon, virginia]);
        for handle in handles.iter().flatten() {
            handle.install_obs(metrics.obs.clone());
        }
        let rt = sim.clone().as_runtime();
        let files = batch(count, size, 1212);
        let obs = metrics.obs.clone();
        let config = move |device: &str| {
            let mut c = ClientConfig::paper_default(device);
            c.data = DataPlaneConfig {
                connections_per_cloud: 5,
                obs: obs.clone(),
                ..DataPlaneConfig::with_params(
                    RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
                    scale.theta,
                )
            };
            c
        };
        let t0 = sim.now();
        let downloader = {
            let set = sets[1].clone();
            let rt2 = rt.clone();
            let sim2 = sim.clone();
            let cfg = config("virginia");
            let target = count;
            spawn(&rt, "virginia", move || {
                let folder = MemFolder::new();
                let mut client = UniDriveClient::new(
                    rt2.clone(),
                    set,
                    folder as Arc<dyn SyncFolder>,
                    cfg,
                    SimRng::seed_from_u64(2),
                );
                let mut timeline = Vec::new();
                let mut total = 0usize;
                for _ in 0..200 {
                    if let Ok(rep) = client.sync_once() {
                        if !rep.downloaded.is_empty() {
                            total += rep.downloaded.len();
                            timeline.push(((sim2.now() - t0).as_secs_f64(), total));
                        }
                    }
                    if total >= target {
                        break;
                    }
                    rt2.sleep(Duration::from_secs(1));
                }
                timeline
            })
        };
        let folder = MemFolder::new();
        let mut uploader = UniDriveClient::new(
            rt.clone(),
            sets[0].clone(),
            Arc::clone(&folder) as Arc<dyn SyncFolder>,
            config("oregon"),
            SimRng::seed_from_u64(1),
        );
        for group in files.chunks(5) {
            for (path, data) in group {
                folder.write(path, data, 1).expect("write");
            }
            let _ = uploader.sync_once();
        }
        for _ in 0..5 {
            let _ = uploader.sync_once();
        }
        series.push(("UniDrive".into(), downloader.join()));
        // Drain the uploader's detached reliability work before the
        // world is dropped: an abandoned world leaks its parked
        // workers, and any engine.batch span still open in them would
        // never record (a dangling parent id in the trace).
        sim.sleep(Duration::from_secs(3600));
    }

    // --- Baselines: pipelined per-file, sink records completion times. ---
    let baseline = |label: &str, sys_idx: usize| -> (String, Vec<(f64, usize)>) {
        let sim = SimRuntime::new(1212);
        let (sets, _) = build_multicloud_shared(&sim, &[oregon, virginia]);
        let rt = sim.clone().as_runtime();
        let files = batch(count, size, 1212);
        let flags: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(vec![false; files.len()]));
        let t0 = sim.now();
        let redundancy = RedundancyConfig::new(5, 3, 3, 2).expect("valid");
        let src_bench = Arc::new(
            MultiCloudBenchmark::new(rt.clone(), sets[0].clone(), redundancy, 5)
                .with_chunk_size(scale.theta),
        );
        let dst_bench = Arc::new(
            MultiCloudBenchmark::new(rt.clone(), sets[1].clone(), redundancy, 5)
                .with_chunk_size(scale.theta),
        );
        let src_intuitive = Arc::new(IntuitiveMultiCloud::new(rt.clone(), &sets[0], 5));
        let dst_intuitive = Arc::new(IntuitiveMultiCloud::new(rt.clone(), &sets[1], 5));
        let src_native = Arc::new(SingleCloudClient::new(
            rt.clone(),
            Arc::clone(sets[0].get(CloudId(0))),
            5,
        ));
        let dst_native = Arc::new(SingleCloudClient::new(
            rt.clone(),
            Arc::clone(sets[1].get(CloudId(0))),
            5,
        ));
        let sink = {
            let files = files.clone();
            let flags = Arc::clone(&flags);
            let rt2 = rt.clone();
            let sim2 = sim.clone();
            let (src_b, dst_b) = (Arc::clone(&src_bench), Arc::clone(&dst_bench));
            let (dst_i, dst_n) = (Arc::clone(&dst_intuitive), Arc::clone(&dst_native));
            spawn(&rt, "sink", move || {
                let mut timeline = Vec::new();
                let mut total = 0;
                for (i, (path, data)) in files.iter().enumerate() {
                    while !flags.lock()[i] {
                        rt2.sleep(Duration::from_secs(1));
                    }
                    let ok = match sys_idx {
                        0 => src_b.manifest_of(path).is_some_and(|m| {
                            dst_b.adopt_manifest(path, m);
                            dst_b.download(path).is_ok()
                        }),
                        1 => {
                            dst_i.assume_uploaded(path, data.len() as u64);
                            dst_i.download(path).is_ok()
                        }
                        _ => {
                            dst_n.assume_uploaded(path, data.len() as u64);
                            dst_n.download(path).is_ok()
                        }
                    };
                    if ok {
                        total += 1;
                        timeline.push(((sim2.now() - t0).as_secs_f64(), total));
                    }
                }
                timeline
            })
        };
        for (i, (path, data)) in files.iter().enumerate() {
            let _ = match sys_idx {
                0 => src_bench.upload(path, data.clone()).is_ok(),
                1 => src_intuitive.upload(path, data.clone()).is_ok(),
                _ => src_native.upload(path, data.clone()).is_ok(),
            };
            flags.lock()[i] = true;
        }
        (label.to_owned(), sink.join())
    };
    series.push(baseline("Benchmark", 0));
    series.push(baseline("Intuitive", 1));
    series.push(baseline("Dropbox", 2));

    // Print the cumulative curves sampled at fixed fractions.
    let mut table = TextTable::new(&["files synced", "UniDrive", "Benchmark", "Intuitive", "Dropbox"]);
    let marks: Vec<usize> = (1..=10).map(|i| i * count / 10).collect();
    for &m in &marks {
        let mut cells = vec![format!("{m}")];
        for (_, timeline) in &series {
            let at = timeline
                .iter()
                .find(|(_, n)| *n >= m)
                .map(|(t, _)| format!("{t:.0}s"))
                .unwrap_or_else(|| "-".into());
            cells.push(at);
        }
        table.row(cells);
    }
    println!("{}", table.render());

    // Curve summary: total time (slope) and linearity (t50/t100 ≈ 0.5
    // for a constant slope).
    for (label, timeline) in &series {
        let at = |m: usize| {
            timeline
                .iter()
                .find(|(_, n)| *n >= m)
                .map(|(t, _)| *t)
        };
        if let (Some(half), Some(full)) = (at(count / 2), at(count)) {
            println!(
                "{label:10} full batch {full:6.0}s, t(50%)/t(100%) = {:.2} (0.50 = constant slope)",
                half / full
            );
        } else {
            println!("{label:10} did not complete the batch");
        }
    }
    println!("(paper: UniDrive readies files fastest with an almost constant slope)");
    if let Some(path) = metrics.write() {
        println!("metrics snapshot written to {path}");
    }
    let _ = Time::ZERO;
}
