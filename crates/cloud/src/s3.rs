//! `S3Cloud` — an S3-compatible HTTP object-store backend.
//!
//! Implements the five-op [`CloudStore`] contract over the subset of
//! the S3 REST dialect every S3-compatible store speaks (the paper's
//! §4 point: restrict the adapter to the operations *every* provider
//! offers, and one narrow trait covers them all):
//!
//! * `upload` → `PUT /{bucket}/{key}`
//! * `download` → `GET /{bucket}/{key}`
//! * `create_dir` → `PUT /{bucket}/{key}/` (trailing-slash marker)
//! * `list` → `GET /{bucket}?list-type=2&prefix={dir}/&delimiter=%2F`,
//!   following `NextContinuationToken` until `IsTruncated` is false
//!   (real S3 caps each page at 1000 keys)
//! * `delete` → `DELETE /{bucket}/{key}`
//!
//! Transport is the std-only pooled [`HttpClient`](crate::http): a
//! bounded keep-alive connection pool sized by the data plane's
//! `connections_per_cloud`, with waiters parked on the runtime's
//! notifier. Status mapping keeps the retry/health stack honest:
//! 500/503 and connection-level failures become
//! [`CloudError::Transient`] *with operation context attached*, 404
//! becomes `NotFound`, 400 `InvalidPath`, 507 `QuotaExceeded`, and
//! 401/403 the non-retryable [`CloudError::Unavailable`] (auth
//! rejections need failover or operator action, not retries) — so
//! `Retry`, `ChaosCloud`, and the health scoreboard wrap a real
//! network path exactly as they wrap `SimCloud`.
//!
//! # Limitations
//!
//! Requests are **unsigned**: there is no SigV4 (or any) credential
//! support, so the adapter only works against anonymous/unauthenticated
//! S3-compatible endpoints — the in-process [`MockS3`](crate::MockS3),
//! or a MinIO/ceph-rgw instance with a public bucket policy. A
//! credentialed endpoint answers 401/403, which surfaces as a terminal
//! `Unavailable` rather than a retry loop.
//!
//! The adapter also inherits the real S3 not-found dialect
//! ([`CloudCaps::strict_not_found`] = `false`): deleting a missing key
//! succeeds idempotently and listing an absent prefix yields an empty
//! listing, because the wire protocol cannot distinguish those from
//! their strict counterparts.

use std::sync::Arc;

use unidrive_sim::Runtime;
use unidrive_util::bytes::Bytes;

use crate::http::{
    percent_encode_path, percent_encode_query, HttpClient, HttpRequest, HttpResponse,
};
use crate::mock_s3::xml_unescape;
use crate::{validate_path, CloudCaps, CloudError, CloudOp, CloudStore, ObjectInfo};

/// Where an S3-compatible cloud lives: endpoint address and bucket.
///
/// Used by the core config plumbing to build endpoint-backed
/// `CloudSet`s without dragging HTTP details into `unidrive-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct S3Endpoint {
    /// Display name for metrics, health rows, and placement maps.
    pub name: String,
    /// `host:port` of the S3-compatible service.
    pub addr: String,
    /// Bucket all objects live under.
    pub bucket: String,
}

impl S3Endpoint {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        addr: impl Into<String>,
        bucket: impl Into<String>,
    ) -> S3Endpoint {
        S3Endpoint {
            name: name.into(),
            addr: addr.into(),
            bucket: bucket.into(),
        }
    }
}

/// An S3-compatible object store spoken to over pooled HTTP/1.1.
pub struct S3Cloud {
    name: String,
    bucket: String,
    client: HttpClient,
}

impl std::fmt::Debug for S3Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("S3Cloud")
            .field("name", &self.name)
            .field("bucket", &self.bucket)
            .field("client", &self.client)
            .finish()
    }
}

impl S3Cloud {
    /// A client for the S3-compatible service at `endpoint`, holding
    /// at most `connections` pooled connections (the data plane passes
    /// its `connections_per_cloud` here).
    pub fn connect(rt: &Arc<dyn Runtime>, endpoint: &S3Endpoint, connections: usize) -> S3Cloud {
        // Accept both bare `host:port` and `http://host:port` forms.
        let addr = endpoint
            .addr
            .strip_prefix("http://")
            .unwrap_or(&endpoint.addr)
            .trim_end_matches('/');
        S3Cloud {
            name: endpoint.name.clone(),
            bucket: endpoint.bucket.clone(),
            client: HttpClient::new(rt, addr, connections),
        }
    }

    /// The endpoint address this cloud talks to.
    pub fn addr(&self) -> &str {
        self.client.addr()
    }

    fn key_target(&self, path: &str) -> String {
        format!("/{}/{}", self.bucket, percent_encode_path(path))
    }

    /// Issues one request, mapping transport failures to retryable
    /// transients carrying the originating op and path.
    fn send(&self, req: &HttpRequest, op: CloudOp, path: &str) -> Result<HttpResponse, CloudError> {
        self.client
            .request(req)
            .map_err(|e| CloudError::transient_op(format!("http: {e}"), op, path))
    }

    /// Maps a non-success status onto the `CloudStore` error contract.
    fn status_error(&self, resp: &HttpResponse, op: CloudOp, path: &str) -> CloudError {
        match resp.status {
            404 => CloudError::not_found(path),
            400 => CloudError::InvalidPath {
                path: path.to_owned(),
                reason: "rejected by server (400)".to_owned(),
            },
            // Auth rejections are terminal, not transient: this adapter
            // sends unsigned requests (see the module docs), so a
            // credentialed endpoint will refuse every attempt — the
            // caller must fail over, not retry.
            401 | 403 => CloudError::Unavailable {
                cloud: format!("{} (auth rejected: {})", self.name, resp.status),
                op: Some(op),
                path: Some(path.to_owned()),
            },
            507 => CloudError::QuotaExceeded {
                needed: 0,
                available: 0,
            },
            500 | 502 | 503 | 504 => CloudError::transient_op(
                format!("server {} {}", resp.status, resp.reason),
                op,
                path,
            ),
            other => CloudError::transient_op(format!("unexpected status {other}"), op, path),
        }
    }
}

impl CloudStore for S3Cloud {
    fn name(&self) -> &str {
        &self.name
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        validate_path(path)?;
        let req = HttpRequest::new("PUT", &self.key_target(path))
            .header("Host", self.client.addr())
            .body(data.to_vec());
        let resp = self.send(&req, CloudOp::Upload, path)?;
        match resp.status {
            200 => Ok(()),
            _ => Err(self.status_error(&resp, CloudOp::Upload, path)),
        }
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        validate_path(path)?;
        let req = HttpRequest::new("GET", &self.key_target(path))
            .header("Host", self.client.addr());
        let resp = self.send(&req, CloudOp::Download, path)?;
        match resp.status {
            200 => Ok(Bytes::copy_from_slice(&resp.body)),
            _ => Err(self.status_error(&resp, CloudOp::Download, path)),
        }
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        validate_path(path)?;
        let target = format!("/{}/{}/", self.bucket, percent_encode_path(path));
        let req = HttpRequest::new("PUT", &target).header("Host", self.client.addr());
        let resp = self.send(&req, CloudOp::CreateDir, path)?;
        match resp.status {
            200 => Ok(()),
            _ => Err(self.status_error(&resp, CloudOp::CreateDir, path)),
        }
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        if !path.is_empty() {
            validate_path(path)?;
        }
        let prefix = if path.is_empty() {
            String::new()
        } else {
            format!("{path}/")
        };
        // Real S3 caps every page at 1000 keys; follow the continuation
        // chain so a large directory is never silently truncated (a
        // truncated listing would make the sync engine treat the tail
        // entries as remotely deleted).
        let mut out = Vec::new();
        let mut token: Option<String> = None;
        loop {
            let mut target = format!(
                "/{}?list-type=2&prefix={}&delimiter=%2F",
                self.bucket,
                percent_encode_query(&prefix)
            );
            if let Some(t) = &token {
                target.push_str("&continuation-token=");
                target.push_str(&percent_encode_query(t));
            }
            let req = HttpRequest::new("GET", &target).header("Host", self.client.addr());
            let resp = self.send(&req, CloudOp::List, path)?;
            if resp.status != 200 {
                return Err(self.status_error(&resp, CloudOp::List, path));
            }
            let xml = String::from_utf8_lossy(&resp.body);
            let page = parse_listing(&xml, &prefix, path)?;
            out.extend(page.entries);
            match page.next_token {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        validate_path(path)?;
        let req = HttpRequest::new("DELETE", &self.key_target(path))
            .header("Host", self.client.addr());
        let resp = self.send(&req, CloudOp::Delete, path)?;
        match resp.status {
            200 | 204 => Ok(()),
            _ => Err(self.status_error(&resp, CloudOp::Delete, path)),
        }
    }

    fn caps(&self) -> CloudCaps {
        CloudCaps {
            // The S3 dialect has no append; the default read-modify-
            // write (or the oplog plane's full-replace policy) applies.
            native_append: false,
            // MockS3 — like real S3 since 2020 — is read-after-write
            // consistent for puts and lists.
            read_after_write: true,
            // S3's single-PUT limit.
            max_object_bytes: Some(5 * 1024 * 1024 * 1024),
            supports_conditional_put: false,
            // Real S3: delete of a missing key answers 204 and an
            // absent prefix lists as empty — the wire cannot express
            // the strict dialect.
            strict_not_found: false,
        }
    }
}

/// One parsed page of a `ListBucketResult` response.
#[derive(Debug)]
struct ListingPage {
    /// Entries on this page, relative to the requested prefix.
    entries: Vec<ObjectInfo>,
    /// Continuation token for the next page when the response was
    /// truncated; `None` on the final page.
    next_token: Option<String>,
}

/// Parses one page of `ListBucketResult` XML into `ObjectInfo` rows
/// relative to `prefix`, plus the continuation token if truncated.
fn parse_listing(xml: &str, prefix: &str, dir: &str) -> Result<ListingPage, CloudError> {
    // Tolerate attributes on the root element: real S3/MinIO emit
    // `<ListBucketResult xmlns="http://s3.amazonaws.com/doc/2006-03-01/">`.
    if !xml.contains("<ListBucketResult") {
        return Err(CloudError::transient_op(
            "malformed listing response",
            CloudOp::List,
            dir,
        ));
    }
    let mut out = Vec::new();
    for block in scan_blocks(xml, "<Contents>", "</Contents>") {
        let key = tag_text(block, "Key").unwrap_or_default();
        let size: u64 = tag_text(block, "Size")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let name = key.strip_prefix(prefix).unwrap_or(&key);
        if name.is_empty() || name.contains('/') {
            continue; // outside this level (defensive; the server filters)
        }
        out.push(ObjectInfo {
            name: name.to_owned(),
            size,
            is_dir: false,
        });
    }
    for block in scan_blocks(xml, "<CommonPrefixes>", "</CommonPrefixes>") {
        let full = tag_text(block, "Prefix").unwrap_or_default();
        let rel = full.strip_prefix(prefix).unwrap_or(&full);
        let name = rel.trim_end_matches('/');
        if name.is_empty() || name.contains('/') {
            continue;
        }
        out.push(ObjectInfo {
            name: name.to_owned(),
            size: 0,
            is_dir: true,
        });
    }
    let truncated = tag_text(xml, "IsTruncated").is_some_and(|t| t == "true");
    let next_token = if truncated {
        match tag_text(xml, "NextContinuationToken") {
            Some(t) if !t.is_empty() => Some(t),
            // Truncated with no token would loop or drop entries —
            // treat as a malformed (retryable) response.
            _ => {
                return Err(CloudError::transient_op(
                    "truncated listing without continuation token",
                    CloudOp::List,
                    dir,
                ))
            }
        }
    } else {
        None
    };
    Ok(ListingPage {
        entries: out,
        next_token,
    })
}

/// Yields the inner text of each `open`..`close` block in order.
fn scan_blocks<'a>(xml: &'a str, open: &'a str, close: &'a str) -> impl Iterator<Item = &'a str> {
    let mut rest = xml;
    std::iter::from_fn(move || {
        let start = rest.find(open)? + open.len();
        let len = rest[start..].find(close)?;
        let block = &rest[start..start + len];
        rest = &rest[start + len + close.len()..];
        Some(block)
    })
}

/// Extracts and XML-unescapes `<tag>text</tag>` from a block.
fn tag_text(block: &str, tag: &str) -> Option<String> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = block.find(&open)? + open.len();
    let len = block[start..].find(&close)?;
    Some(xml_unescape(&block[start..start + len]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MockS3;
    use unidrive_sim::RealRuntime;

    #[test]
    fn listing_parser_extracts_files_and_dirs() {
        let xml = "<?xml version=\"1.0\"?>\n<ListBucketResult><Prefix>d/</Prefix>\
                   <KeyCount>3</KeyCount>\
                   <Contents><Key>d/b.txt</Key><Size>12</Size></Contents>\
                   <Contents><Key>d/a &amp; b</Key><Size>0</Size></Contents>\
                   <CommonPrefixes><Prefix>d/sub/</Prefix></CommonPrefixes>\
                   </ListBucketResult>";
        let page = parse_listing(xml, "d/", "d").unwrap();
        assert!(page.next_token.is_none());
        let mut rows = page.entries;
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        let names: Vec<_> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a & b", "b.txt", "sub"]);
        assert!(rows[2].is_dir);
        assert_eq!(rows[1].size, 12);
    }

    #[test]
    fn listing_parser_tolerates_root_element_attributes() {
        // Real S3 and MinIO stamp the 2006-03-01 namespace on the root.
        let xml = "<?xml version=\"1.0\"?>\n\
                   <ListBucketResult xmlns=\"http://s3.amazonaws.com/doc/2006-03-01/\">\
                   <Contents><Key>f</Key><Size>1</Size></Contents>\
                   <IsTruncated>false</IsTruncated>\
                   </ListBucketResult>";
        let page = parse_listing(xml, "", "").unwrap();
        assert_eq!(page.entries.len(), 1);
        assert_eq!(page.entries[0].name, "f");
    }

    #[test]
    fn listing_parser_surfaces_continuation_token() {
        let xml = "<ListBucketResult xmlns=\"x\">\
                   <Contents><Key>a</Key><Size>1</Size></Contents>\
                   <IsTruncated>true</IsTruncated>\
                   <NextContinuationToken>tok-42</NextContinuationToken>\
                   </ListBucketResult>";
        let page = parse_listing(xml, "", "").unwrap();
        assert_eq!(page.next_token.as_deref(), Some("tok-42"));
        // Truncated without a token must not silently end the chain.
        let bad = "<ListBucketResult><IsTruncated>true</IsTruncated></ListBucketResult>";
        assert!(parse_listing(bad, "", "").is_err());
    }

    #[test]
    fn listing_parser_rejects_garbage() {
        assert!(parse_listing("<html>nope</html>", "", "").is_err());
    }

    #[test]
    fn auth_rejections_map_to_terminal_unavailable() {
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let endpoint = S3Endpoint::new("s3", "127.0.0.1:1", "b");
        let cloud = S3Cloud::connect(&rt, &endpoint, 1);
        for status in [401u16, 403] {
            let resp = HttpResponse::new(status, "Forbidden");
            let err = cloud.status_error(&resp, CloudOp::Upload, "p");
            assert!(
                matches!(err, CloudError::Unavailable { .. }),
                "{status} mapped to {err:?}"
            );
            assert!(!err.is_retryable(), "{status} must not retry");
            assert_eq!(err.op(), Some(CloudOp::Upload));
        }
        // 5xx stays retryable.
        let resp = HttpResponse::new(503, "Service Unavailable");
        assert!(cloud.status_error(&resp, CloudOp::Upload, "p").is_retryable());
    }

    /// End-to-end pagination: a directory larger than the server page
    /// size lists completely, via multiple continuation-chained
    /// requests.
    #[test]
    fn large_listing_follows_continuation_tokens() {
        let server = MockS3::start().expect("bind mock server");
        server.set_page_size(3);
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let endpoint = S3Endpoint::new("s3", server.addr(), "b");
        let cloud = S3Cloud::connect(&rt, &endpoint, 2);
        for i in 0..10 {
            cloud
                .upload(&format!("dir/f{i:02}"), Bytes::from(vec![0u8; i]))
                .expect("upload");
        }
        let before = server.requests();
        let rows = cloud.list("dir").expect("list");
        let names: Vec<_> = rows.iter().map(|r| r.name.as_str()).collect();
        let want: Vec<String> = (0..10).map(|i| format!("f{i:02}")).collect();
        assert_eq!(names, want.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(
            server.requests() - before,
            4,
            "10 entries at page size 3 must take 4 list requests"
        );
    }
}
