//! Single-cloud client: a stand-in for a native CCS app's transfer
//! engine (paper §7.1 "official native apps").
//!
//! Real native apps use private APIs, but their transfer behaviour —
//! chunked, multi-connection upload/download to one cloud — is what the
//! paper's comparison measures. `SingleCloudClient` reproduces that:
//! files are split into fixed-size chunks pushed over up to
//! `connections` parallel streams to a single cloud, driven by the
//! shared [`TransferEngine`] with a one-cloud static plan.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use unidrive_cloud::{CloudError, CloudSet, CloudStore, RetryPolicy};
use unidrive_core::{EngineParams, TransferEngine};
use unidrive_obs::{Obs, SpanId};
use unidrive_sim::Runtime;
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;

use crate::planned::{PlannedJob, PlannedPolicy};

/// Chunked parallel transfer client bound to one cloud.
pub struct SingleCloudClient {
    rt: Arc<dyn Runtime>,
    cloud: Arc<dyn CloudStore>,
    connections: usize,
    chunk_size: usize,
    retry: RetryPolicy,
    obs: Obs,
    /// name → (total length, chunk count).
    manifest: Mutex<HashMap<String, (u64, usize)>>,
}

impl std::fmt::Debug for SingleCloudClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleCloudClient")
            .field("cloud", &self.cloud.name())
            .field("connections", &self.connections)
            .finish()
    }
}

impl SingleCloudClient {
    /// Creates a client with the given parallelism and 1 MB chunks.
    pub fn new(
        rt: Arc<dyn Runtime>,
        cloud: Arc<dyn CloudStore>,
        connections: usize,
    ) -> Self {
        SingleCloudClient {
            rt,
            cloud,
            connections: connections.max(1),
            chunk_size: 1024 * 1024,
            retry: RetryPolicy::new(),
            obs: Obs::noop(),
            manifest: Mutex::new(HashMap::new()),
        }
    }

    /// Observability for transfer counters and retry traces
    /// (`single.upload.*`, `single.download.*`).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The cloud this client talks to.
    pub fn cloud_name(&self) -> &str {
        self.cloud.name()
    }

    fn engine_params(&self, label: &str, batch_span: Option<SpanId>) -> EngineParams {
        EngineParams {
            connections_per_cloud: self.connections,
            retry: self.retry.clone(),
            obs: self.obs.clone(),
            label: label.to_owned(),
            probe: None,
            idle_wait: None,
            batch_span,
            watchdog: None,
        }
    }

    /// Uploads `data` as chunked objects under `name`.
    ///
    /// # Errors
    ///
    /// The first chunk error after retries.
    pub fn upload(&self, name: &str, data: Bytes) -> Result<Duration, CloudError> {
        let t0 = self.rt.now();
        let queue: VecDeque<PlannedJob> = data
            .chunks(self.chunk_size)
            .map(Bytes::copy_from_slice)
            .enumerate()
            .map(|(i, chunk)| PlannedJob {
                path: format!("native/{name}.{i}"),
                data: Some(chunk),
                slot: i,
                index: i as u16,
            })
            .collect();
        let chunk_count = queue.len();
        let clouds = CloudSet::new(vec![Arc::clone(&self.cloud)]);
        let policy = PlannedPolicy::new(vec![queue], 0);
        let mut batch = self.obs.span("engine.batch", None);
        batch.attr_str("label", "single.upload");
        batch.attr_u64("files", 1);
        let done = TransferEngine::start(
            &self.rt,
            &clouds,
            self.engine_params("single.upload", batch.id()),
            policy,
        )
        .join();
        batch.end();
        if let Some(e) = done.error {
            return Err(e);
        }
        self.manifest
            .lock()
            .insert(name.to_owned(), (data.len() as u64, chunk_count));
        Ok(self.rt.now().saturating_duration_since(t0))
    }

    /// Registers `name` as already uploaded (len bytes) without moving
    /// traffic — the sink side of a native app's change notification.
    pub fn assume_uploaded(&self, name: &str, len: u64) {
        let chunk_count = (len as usize).div_ceil(self.chunk_size).max(1);
        self.manifest
            .lock()
            .insert(name.to_owned(), (len, chunk_count));
    }

    /// Downloads the chunks of `name` and reassembles them.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] for unknown names, or the first chunk
    /// error after retries.
    pub fn download(&self, name: &str) -> Result<(Duration, Vec<u8>), CloudError> {
        let (len, chunk_count) = self
            .manifest
            .lock()
            .get(name)
            .copied()
            .ok_or_else(|| CloudError::not_found(name))?;
        let t0 = self.rt.now();
        let queue: VecDeque<PlannedJob> = (0..chunk_count)
            .map(|i| PlannedJob {
                path: format!("native/{name}.{i}"),
                data: None,
                slot: i,
                index: i as u16,
            })
            .collect();
        let clouds = CloudSet::new(vec![Arc::clone(&self.cloud)]);
        let policy = PlannedPolicy::new(vec![queue], chunk_count);
        let mut batch = self.obs.span("engine.batch", None);
        batch.attr_str("label", "single.download");
        batch.attr_u64("segments", chunk_count as u64);
        let done = TransferEngine::start(
            &self.rt,
            &clouds,
            self.engine_params("single.download", batch.id()),
            policy,
        )
        .join();
        batch.end();
        if let Some(e) = done.error {
            return Err(e);
        }
        let mut out = Vec::with_capacity(len as usize);
        for chunk in &done.results {
            out.extend_from_slice(chunk.as_ref().expect("no error implies all chunks"));
        }
        Ok((self.rt.now().saturating_duration_since(t0), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{SimCloud, SimCloudConfig};
    use unidrive_sim::SimRuntime;

    #[test]
    fn round_trip_and_parallel_speedup() {
        let sim = SimRuntime::new(1);
        // per-conn 1 MB/s, aggregate 4 MB/s: 4 connections help 4x.
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 4e6),
        ));
        let rt = sim.clone().as_runtime();
        let data = Bytes::from(vec![7u8; 8 * 1024 * 1024]);

        let serial = SingleCloudClient::new(rt.clone(), cloud.clone(), 1);
        let t_serial = serial.upload("a", data.clone()).unwrap();
        let parallel = SingleCloudClient::new(rt.clone(), cloud.clone(), 4);
        let t_parallel = parallel.upload("b", data.clone()).unwrap();
        assert!(
            t_serial.as_secs_f64() > 3.0 * t_parallel.as_secs_f64(),
            "serial {t_serial:?} vs parallel {t_parallel:?}"
        );

        let (_, restored) = parallel.download("b").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn unknown_name_is_not_found() {
        let sim = SimRuntime::new(2);
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 1e6),
        ));
        let client = SingleCloudClient::new(sim.clone().as_runtime(), cloud, 2);
        assert!(matches!(
            client.download("ghost").unwrap_err(),
            CloudError::NotFound { .. }
        ));
    }

    #[test]
    fn outage_surfaces_as_error() {
        let sim = SimRuntime::new(3);
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 1e6),
        ));
        cloud.set_available(false);
        let client = SingleCloudClient::new(sim.clone().as_runtime(), cloud, 2);
        assert!(client
            .upload("f", Bytes::from(vec![0u8; 1024]))
            .is_err());
    }

    #[test]
    fn transfer_counters_flow_through_obs() {
        let sim = SimRuntime::new(4);
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(1e6, 4e6),
        ));
        let registry = unidrive_obs::Registry::new();
        let client = SingleCloudClient::new(sim.clone().as_runtime(), cloud, 2)
            .with_obs(Obs::with_registry(Arc::clone(&registry)));
        client
            .upload("f", Bytes::from(vec![1u8; 3 * 1024 * 1024]))
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("single.upload.blocks_dispatched"), 3);
        assert_eq!(snap.counter("single.upload.blocks_completed"), 3);
        assert_eq!(snap.counter("single.upload.cloud.c.blocks"), 3);
    }
}
