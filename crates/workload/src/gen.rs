//! Workload generators: random file content, batch workloads, and the
//! synthetic 272-user trial population of §7.3.

use unidrive_sim::SimRng;
use unidrive_util::bytes::Bytes;

use crate::{Provider, Region, Site, EC2_SITES, PLANETLAB_SITES};

/// Deterministic pseudo-random file content ("randomly generated
/// contents to avoid deduplication and transfer suppression", §7.2).
pub fn random_bytes(len: usize, seed: u64) -> Bytes {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() + 8 <= len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rest = len - out.len();
    out.extend_from_slice(&rng.next_u64().to_le_bytes()[..rest]);
    Bytes::from(out)
}

/// A batch of `count` files of `size` bytes each with distinct random
/// content (the Fig. 11 workload is `100 × 1 MB`).
pub fn batch(count: usize, size: usize, seed: u64) -> Vec<(String, Bytes)> {
    (0..count)
        .map(|i| {
            (
                format!("batch/file-{i:04}.bin"),
                random_bytes(size, seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            )
        })
        .collect()
}

/// File-content categories of the trial (§7.3: 28.3 % documents,
/// 30.5 % multimedia, rest mixed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Office documents, PDFs: tens of KB to a few MB.
    Document,
    /// Photos, audio, video: hundreds of KB to tens of MB.
    Multimedia,
    /// Archives, binaries, code, misc.
    Other,
}

/// The paper's size buckets used in Figs. 15-16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeBucket {
    /// `< 100 KB`.
    Tiny,
    /// `100 KB – 1 MB` ("medium sized files", Fig. 16).
    Medium,
    /// `1 MB – 10 MB`.
    Large,
    /// `> 10 MB`.
    Huge,
}

impl SizeBucket {
    /// Bucket of a file size in bytes.
    pub fn of(bytes: u64) -> SizeBucket {
        match bytes {
            0..=102_399 => SizeBucket::Tiny,
            102_400..=1_048_575 => SizeBucket::Medium,
            1_048_576..=10_485_759 => SizeBucket::Large,
            _ => SizeBucket::Huge,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBucket::Tiny => "<100KB",
            SizeBucket::Medium => "100KB-1MB",
            SizeBucket::Large => "1MB-10MB",
            SizeBucket::Huge => ">10MB",
        }
    }

    /// All buckets in ascending order.
    pub const ALL: [SizeBucket; 4] = [
        SizeBucket::Tiny,
        SizeBucket::Medium,
        SizeBucket::Large,
        SizeBucket::Huge,
    ];
}

/// One synthetic trial user.
#[derive(Debug, Clone)]
pub struct TrialUser {
    /// User index (0..272).
    pub id: usize,
    /// Site the user's device sits at.
    pub site: Site,
    /// Providers the user enrolled (3 to 5; §7.3: "not every user is
    /// using all the 5 clouds").
    pub providers: Vec<Provider>,
    /// Files the user will upload: `(kind, size in bytes)`.
    pub files: Vec<(FileKind, u64)>,
}

/// Generates the 272-user trial population (§7.3): devices spread over
/// 21 sites across four continents, ~97 k files, >500 GB total scaled by
/// `scale` (use a small `scale` to keep simulations fast while
/// preserving the distributions).
pub fn trial_population(seed: u64, users: usize, files_per_user: usize) -> Vec<TrialUser> {
    let mut rng = SimRng::seed_from_u64(seed);
    // Trial sites: every PlanetLab + EC2 site bar one duplicate ≈ 21
    // sites excluding mainland China (the trial had none there).
    let sites: Vec<Site> = PLANETLAB_SITES
        .iter()
        .chain(EC2_SITES.iter())
        .filter(|s| s.region != Region::China)
        .copied()
        .collect();
    (0..users)
        .map(|id| {
            let site = sites[rng.below(sites.len() as u64) as usize];
            let n_providers = 3 + rng.below(3) as usize;
            let mut providers = Provider::ALL.to_vec();
            // Fisher-Yates prefix shuffle.
            for i in 0..n_providers {
                let j = i + rng.below((providers.len() - i) as u64) as usize;
                providers.swap(i, j);
            }
            providers.truncate(n_providers);
            let files = (0..files_per_user)
                .map(|_| {
                    let roll: f64 = rng.next_f64();
                    let kind = if roll < 0.283 {
                        FileKind::Document
                    } else if roll < 0.283 + 0.305 {
                        FileKind::Multimedia
                    } else {
                        FileKind::Other
                    };
                    (kind, sample_size(kind, &mut rng))
                })
                .collect();
            TrialUser {
                id,
                site,
                providers,
                files,
            }
        })
        .collect()
}

/// Samples a file size for `kind` (lognormal-ish per-category).
fn sample_size(kind: FileKind, rng: &mut SimRng) -> u64 {
    let (median, sigma) = match kind {
        FileKind::Document => (80.0 * 1024.0, 1.3),
        FileKind::Multimedia => (2.5 * 1024.0 * 1024.0, 1.5),
        FileKind::Other => (300.0 * 1024.0, 1.8),
    };
    let normal = rng.standard_normal();
    let size = median * (sigma * normal).exp();
    (size.clamp(1024.0, 256.0 * 1024.0 * 1024.0)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bytes_deterministic_and_distinct() {
        assert_eq!(random_bytes(1000, 1), random_bytes(1000, 1));
        assert_ne!(random_bytes(1000, 1), random_bytes(1000, 2));
    }

    #[test]
    fn batch_shapes() {
        let b = batch(100, 1024 * 1024, 7);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|(_, d)| d.len() == 1024 * 1024));
        // Distinct contents (no accidental dedup).
        let first_bytes: std::collections::HashSet<&[u8]> =
            b.iter().map(|(_, d)| &d[..32]).collect();
        assert_eq!(first_bytes.len(), 100);
    }

    #[test]
    fn size_buckets_partition() {
        assert_eq!(SizeBucket::of(50_000), SizeBucket::Tiny);
        assert_eq!(SizeBucket::of(500_000), SizeBucket::Medium);
        assert_eq!(SizeBucket::of(5_000_000), SizeBucket::Large);
        assert_eq!(SizeBucket::of(50_000_000), SizeBucket::Huge);
    }

    #[test]
    fn trial_population_matches_study_statistics() {
        let users = trial_population(42, 272, 30);
        assert_eq!(users.len(), 272);
        // Provider counts within 3..=5.
        assert!(users.iter().all(|u| (3..=5).contains(&u.providers.len())));
        // No duplicate providers per user.
        for u in &users {
            let set: std::collections::HashSet<_> = u.providers.iter().collect();
            assert_eq!(set.len(), u.providers.len());
        }
        // Document share ≈ 28.3 %, multimedia ≈ 30.5 % (±5 points).
        let all_files: Vec<&(FileKind, u64)> =
            users.iter().flat_map(|u| u.files.iter()).collect();
        let frac = |k: FileKind| {
            all_files.iter().filter(|(kind, _)| *kind == k).count() as f64
                / all_files.len() as f64
        };
        assert!((frac(FileKind::Document) - 0.283).abs() < 0.05);
        assert!((frac(FileKind::Multimedia) - 0.305).abs() < 0.05);
        // No user in mainland China.
        assert!(users.iter().all(|u| u.site.region != Region::China));
        // Multiple sites covered.
        let sites: std::collections::HashSet<_> =
            users.iter().map(|u| u.site.name).collect();
        assert!(sites.len() >= 12, "sites {}", sites.len());
    }

    #[test]
    fn multimedia_files_are_bigger_than_documents() {
        let users = trial_population(7, 100, 50);
        let mean = |k: FileKind| {
            let sizes: Vec<f64> = users
                .iter()
                .flat_map(|u| u.files.iter())
                .filter(|(kind, _)| *kind == k)
                .map(|(_, s)| *s as f64)
                .collect();
            sizes.iter().sum::<f64>() / sizes.len() as f64
        };
        assert!(mean(FileKind::Multimedia) > 3.0 * mean(FileKind::Document));
    }
}
