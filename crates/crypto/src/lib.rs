//! # unidrive-crypto
//!
//! From-scratch implementations of the two primitives the UniDrive paper
//! names: **SHA-1** (content addressing of segments, §6.1) and **DES**
//! (metadata encryption, §4), plus a DES-CBC + PKCS#5 [`MetadataCipher`]
//! with passphrase key derivation.
//!
//! Both algorithms are reproduced for fidelity to the 2015 paper; see
//! the module docs for security caveats.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cbc;
mod des;
mod sha1;

pub use cbc::{DecryptError, MetadataCipher};
pub use des::Des;
pub use sha1::{Digest, Sha1};
