#!/usr/bin/env sh
# Offline CI for the UniDrive reproduction. No network access is
# assumed anywhere: the workspace has zero external dependencies and
# every cargo invocation passes --offline.
#
#   ./ci.sh         tier-1 gate + full workspace tests + obs lint
#   ./ci.sh quick   tier-1 gate only
set -eu
cd "$(dirname "$0")"

echo "==> tier-1: release build + root package tests"
cargo build --offline --release
cargo test --offline -q

if [ "${1:-}" = "quick" ]; then
    echo "==> quick mode: parallel-chunker determinism + gear-vs-rabin ingest shape"
    # The tentpole contracts, cheap enough for the quick gate: (a) the
    # parallel cut-point driver must emit byte-identical cuts at any
    # thread count (dumped for both hash kinds over a fixed buffer and
    # cmp'd), and (b) gear-kind ingest must beat rabin-kind ingest at
    # every pool width — the whole point of shipping a second hash.
    cargo build --offline --release -p unidrive-bench --bin bench_kernels
    qout="$(mktemp -d)"
    trap 'rm -rf "$qout"' EXIT
    ./target/release/bench_kernels --cuts-out "$qout/cuts1.txt" --cuts-threads 1
    ./target/release/bench_kernels --cuts-out "$qout/cuts2.txt" --cuts-threads 2
    ./target/release/bench_kernels --cuts-out "$qout/cuts8.txt" --cuts-threads 8
    cmp "$qout/cuts1.txt" "$qout/cuts2.txt"
    cmp "$qout/cuts1.txt" "$qout/cuts8.txt"
    ./target/release/bench_kernels --quick --out "$qout/bench_kernels.json" >/dev/null
    python3 - "$qout/bench_kernels.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rabin = {r["threads"]: r["mb_per_s"] for r in doc["rows"] if r["kernel"] == "ingest"}
gear = {r["threads"]: r["mb_per_s"] for r in doc["rows"] if r["kernel"] == "ingest_gear"}
assert rabin and set(rabin) == set(gear), (sorted(rabin), sorted(gear))
for t in sorted(rabin):
    assert gear[t] >= rabin[t], f"gear ingest slower than rabin at {t} threads: {gear[t]:.0f} < {rabin[t]:.0f} MiB/s"
print("    gear >= rabin ingest at threads " + ", ".join(f"{t} ({gear[t]:.0f} vs {rabin[t]:.0f} MiB/s)" for t in sorted(rabin)))
EOF
    echo "==> quick mode: skipping workspace tests and lints"
    exit 0
fi

echo "==> workspace tests (all crates)"
cargo test --offline --workspace -q

echo "==> bench binaries compile (debug) and build (release)"
cargo build --offline -p unidrive-bench --all-targets
# The determinism and microbench steps below run the release binaries;
# the root release build alone does not produce them.
cargo build --offline --release -p unidrive-bench

echo "==> clippy on the whole workspace (deny warnings)"
# rustup-managed toolchains ship clippy; if this toolchain has none,
# report and continue rather than failing an otherwise green run.
if cargo clippy --offline --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace -- -D warnings
else
    echo "    clippy not installed; skipped"
fi

echo "==> metrics export determinism (same seed => byte-identical)"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
./target/release/fig08_micro quick --metrics-out "$out/a.json" >/dev/null
./target/release/fig08_micro quick --metrics-out "$out/b.json" >/dev/null
cmp "$out/a.json" "$out/b.json"

echo "==> transfer-engine scheduling determinism (same seed => byte-identical)"
# fig11 drives the full sync protocol plus all three baselines through
# the shared notifier-parked transfer engine; identical metrics across
# two runs means worker wake order is reproducible, not just timers.
./target/release/fig11_batch_sync quick --metrics-out "$out/c.json" >/dev/null
./target/release/fig11_batch_sync quick --metrics-out "$out/d.json" >/dev/null
cmp "$out/c.json" "$out/d.json"

echo "==> kernel microbenchmarks (quick) + deterministic export shape"
# Throughput numbers vary with the machine; what CI pins down is that
# every kernel runs to completion and the JSON schema stays stable
# (fixed key set, rows in fixed order). The checked-in
# BENCH_kernels.json at the repo root is a full-mode snapshot.
./target/release/bench_kernels --quick --out "$out/bench_kernels.json"
python3 - "$out/bench_kernels.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench_kernels"] == "unidrive/v1", doc
kernels = [r["kernel"] for r in doc["rows"]]
for expected in ["sha1", "rabin_roll", "gear_roll", "chunker_cut_points", "gear_cut_points",
                 "cut_points_parallel", "rs_encode", "rs_decode", "ingest", "ingest_gear"]:
    assert expected in kernels, f"missing kernel row: {expected}"
for r in doc["rows"]:
    assert set(r) == {"kernel", "bytes", "threads", "iters", "mb_per_s", "mean_ns", "p50_ns", "p95_ns"}, r
    assert r["iters"] > 0 and r["mb_per_s"] > 0, r
EOF

echo "==> span trace determinism + Chrome trace-event shape"
# Two same-seed runs must export byte-identical Chrome traces, and the
# trace must be well-formed: non-negative ts/dur, unique span ids, and
# every parent id present (trace_report --validate exits non-zero
# otherwise).
./target/release/fig11_batch_sync quick --trace-out "$out/t1.json" >/dev/null
./target/release/fig11_batch_sync quick --trace-out "$out/t2.json" >/dev/null
cmp "$out/t1.json" "$out/t2.json"
./target/release/trace_report --validate "$out/t1.json"

echo "==> windowed series export: determinism + schema validation (fig11)"
# The obs series layer (--series-out) must be a pure function of the
# seed and pass its own validator: schema tag, strictly increasing
# window indices, and quantile monotonicity (p50 <= p95 <= p99) in
# every sample window.
./target/release/fig11_batch_sync quick --series-out "$out/s1.json" >/dev/null
./target/release/fig11_batch_sync quick --series-out "$out/s2.json" >/dev/null
cmp "$out/s1.json" "$out/s2.json"
./target/release/obs_report --validate "$out/s1.json"

echo "==> chaos soak: invariants hold, lethal plan minimizes, same seed => byte-identical"
# Randomized (but seeded) fault schedules must never violate an
# invariant; the deliberately lethal schedule must, and must shrink to
# a minimal still-failing plan. The verdict, minimized plan, and
# flight record are all derived from virtual time only, so two
# same-seed runs must be byte-identical — the fig11 gate's analogue
# for the fault-injection layer.
./target/release/chaos_soak quick --out "$out/cs1.json" --series-out "$out/csh1.json" >/dev/null
./target/release/chaos_soak quick --out "$out/cs2.json" --series-out "$out/csh2.json" >/dev/null
cmp "$out/cs1.json" "$out/cs2.json"
cmp "$out/cs1.minplan.json" "$out/cs2.minplan.json"
cmp "$out/cs1.flight.json" "$out/cs2.flight.json"
grep -q '"verdict": "PASS"' "$out/cs1.json"

echo "==> chaos health round: targeted outage visibly degrades, then recovers"
# The health-round acceptance gate: the scoreboard fed by ObservedCloud
# wrappers must show the targeted cloud leaving healthy during its
# outage window and back to healthy once the window closes, while no
# untargeted cloud ever goes down. The same scoreboard is embedded in
# the series export, which must also validate.
cmp "$out/csh1.json" "$out/csh2.json"
./target/release/obs_report --validate "$out/csh1.json"
grep -q '"dipped": true' "$out/cs1.json"
grep -q '"recovered": true' "$out/cs1.json"
python3 - "$out/csh1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = {h["cloud"]: h for h in doc["health"]}
target = rows["c2"]
dipped = {w["state"] for w in target["timeline"]} & {"degraded", "down"}
assert dipped, [w["state"] for w in target["timeline"]]
assert target["state"] == "healthy", target["state"]
assert any(t["to"] in ("degraded", "down") for t in target["transitions"]), target["transitions"]
for name, row in rows.items():
    if name != "c2":
        assert all(t["to"] != "down" for t in row["transitions"]), (name, row["transitions"])
EOF
# The default run soaks both metadata planes; the oplog-restricted run
# additionally proves the --meta-mode flag itself is honored and that
# the oplog plane passes in isolation (op files absorbing torn uploads
# without the lock plane's rounds masking anything).
grep -q '"meta_modes": \["lock","oplog"\]' "$out/cs1.json"
./target/release/chaos_soak quick --meta-mode oplog --out "$out/cso.json" >/dev/null
grep -q '"meta_modes": \["oplog"\]' "$out/cso.json"
grep -q '"verdict": "PASS"' "$out/cso.json"

echo "==> fleet bench: 10k-device quick run, invariants + schema + byte-identical"
# The fleet simulator must converge with every chaos-soak invariant
# green, emit a schema-stable report, and be a pure function of the
# seed: two quick runs (the second with a different shard and thread
# count) must produce byte-identical BENCH_fleet.json.
./target/release/bench_fleet quick --out "$out/f1.json" --series-out "$out/fs1.json" >/dev/null
./target/release/bench_fleet quick --shards 3 --threads 2 --out "$out/f2.json" --series-out "$out/fs2.json" >/dev/null
cmp "$out/f1.json" "$out/f2.json"
python3 - "$out/f1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench_fleet"] == "unidrive/v1", doc
assert set(doc) == {"bench_fleet", "config", "counters", "clouds", "hist", "invariants", "run"}, sorted(doc)
assert doc["config"]["devices"] == 10000, doc["config"]
for inv in doc["invariants"]:
    assert inv["pass"] is True, inv
for name in ["lock_rounds", "lock_wait_ns", "sync_latency_ns"]:
    h = doc["hist"][name]
    assert h["count"] > 0 and h["p50"] <= h["p95"] <= h["p99"], (name, h)
assert len(doc["clouds"]) == 5, doc["clouds"]
for c in doc["clouds"]:
    assert c["ops"] == c["lock_ops"] + c["transfer_ops"], c
started = doc["counters"]["sessions.started"]
assert started == doc["counters"]["sessions.completed"] > 0, doc["counters"]
# Contention and compaction-pressure counters must be first-class
# schema members even when zero (lock mode leaves the oplog ones at 0).
for name in ["lock.starved", "oplog.compact_forced", "oplog.compact_overdue"]:
    assert name in doc["counters"], sorted(doc["counters"])
EOF

echo "==> fleet series: byte-identical across shard/thread layouts + health schema"
# The per-shard series banks must merge to the same document no matter
# how the event set is partitioned — the windowed-telemetry analogue
# of the BENCH_fleet.json determinism gate — and the embedded health
# scoreboard must carry one valid row per cloud.
cmp "$out/fs1.json" "$out/fs2.json"
./target/release/obs_report --validate "$out/fs1.json"
python3 - "$out/fs1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["series"] == "unidrive-obs-series/v1", doc.get("series")
assert doc["window_ns"] > 0
for metric in ["fleet.arrivals", "fleet.sessions", "cloud.ops", "fleet.sync_latency_ns"]:
    assert metric in doc["metrics"], sorted(doc["metrics"])
health = doc["health"]
assert len(health) == 5, [h["cloud"] for h in health]
for row in health:
    assert row["state"] in ("healthy", "degraded", "down"), row
    assert row["ops"] > 0, row
    indices = [w["i"] for w in row["timeline"]]
    assert indices == sorted(set(indices)), row["cloud"]
EOF

echo "==> oplog bench: N-writer scaling shape + schema + byte-identical"
# The metadata-plane headline: on a hot shared folder, oplog commits
# must scale with writer count while lock commits serialize. Two quick
# same-seed runs must be byte-identical (virtual-time determinism
# through the real client protocol), the report schema must stay
# stable, and the shape claim itself is asserted: at the top writer
# count, oplog aggregate throughput must beat lock.
./target/release/bench_oplog quick --out "$out/o1.json" --series-out "$out/os1.json" >/dev/null
./target/release/bench_oplog quick --out "$out/o2.json" --series-out "$out/os2.json" >/dev/null
cmp "$out/o1.json" "$out/o2.json"
cmp "$out/os1.json" "$out/os2.json"
./target/release/obs_report --validate "$out/os1.json"
python3 - "$out/o1.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench_oplog"] == "unidrive/v1", doc
assert set(doc) == {"bench_oplog", "config", "rows"}, sorted(doc)
rows = doc["rows"]
assert len(rows) == 2 * len(doc["config"]["writer_counts"]), rows
by = {}
for r in rows:
    assert set(r) == {"commits", "commits_per_min", "compact_forced", "compact_overdue",
                      "failed", "lock_starved", "mode", "retries", "rounds",
                      "virtual_secs", "writers"}, r
    assert r["commits"] == r["writers"] * r["rounds"] and r["failed"] == 0, r
    # The metadata plane's own counters: an uncontended oplog run must
    # never leave a compaction overdue, and starvation audits belong to
    # the lock plane.
    assert r["compact_overdue"] == 0, r
    if r["mode"] == "oplog":
        assert r["lock_starved"] == 0, r
    by[(r["mode"], r["writers"])] = r["commits_per_min"]
top = max(doc["config"]["writer_counts"])
assert by[("oplog", top)] > by[("lock", top)], (by[("oplog", top)], by[("lock", top)])
EOF

echo "==> bench_compare: identical runs are regression-free; drift is advisory"
# Same-input comparison must report zero regressions across every
# tracked metric and doc type (throughput, failure counts, latency
# percentiles, headline counters) — the tool's own no-false-positive
# gate. Comparing a quick run against the checked-in full-mode
# baseline is informational only: different rounds, expected drift.
./target/release/bench_compare "$out/o1.json" "$out/o2.json" --md "$out/cmp_oplog.md"
grep -q "0 regression" "$out/cmp_oplog.md"
./target/release/bench_compare "$out/f1.json" "$out/f1.json" >/dev/null
./target/release/bench_compare "$out/bench_kernels.json" "$out/bench_kernels.json" >/dev/null
./target/release/bench_compare BENCH_oplog.json "$out/o1.json" --md "$out/cmp_baseline.md" \
    || echo "    advisory: quick run drifts from the full-mode baseline (expected, not a gate)"

echo "==> s3 backend: real-socket sync gate + HTTP bench schema"
# The HTTP backend's acceptance bar: the two-device workload must
# converge through in-process S3 servers over real TCP, and the chaos
# phase (torn uploads + 503 bursts) must end byte-identical to the
# clean phase — asserted inside the test. Release build keeps the
# wall-clock runs snappy. s3_bench throughput varies with the machine;
# CI pins the JSON schema and the fixed row ordering.
cargo test --offline --release --test s3_sync -q
./target/release/s3_bench --quick --out "$out/s3_bench.json" >/dev/null
python3 - "$out/s3_bench.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["s3_bench"] == "unidrive/v1", doc
assert set(doc) == {"s3_bench", "mode", "rows"}, sorted(doc)
ops = [r["op"] for r in doc["rows"]]
assert ops == ["upload"] * 3 + ["download"] * 3 + ["append", "list", "upload_delete"], ops
for r in doc["rows"]:
    assert set(r) == {"op", "bytes", "iters", "mb_per_s", "mean_ns", "p50_ns", "p95_ns"}, r
    assert r["iters"] >= 3 and r["mean_ns"] > 0, r
    assert r["p50_ns"] <= r["p95_ns"], r
    if r["op"] != "list":
        assert r["mb_per_s"] > 0, r
EOF

echo "CI OK"
