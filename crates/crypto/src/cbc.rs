//! DES-CBC with PKCS#5 padding: the metadata encryption UniDrive applies
//! before replicating SyncFolderImage to the clouds (paper §4).

use crate::{Des, Sha1};

/// Error from [`MetadataCipher::decrypt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecryptError {
    /// Ciphertext length is not a positive multiple of the block size.
    BadLength {
        /// Observed ciphertext length.
        len: usize,
    },
    /// The PKCS#5 padding is malformed (wrong key or corrupted data).
    BadPadding,
}

impl std::fmt::Display for DecryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecryptError::BadLength { len } => {
                write!(f, "ciphertext length {len} is not a positive multiple of 8")
            }
            DecryptError::BadPadding => write!(f, "bad padding (wrong key or corrupt data)"),
        }
    }
}

impl std::error::Error for DecryptError {}

/// DES-CBC cipher with a key and IV derived from a passphrase.
///
/// Key derivation: `SHA-1(passphrase)` supplies the 8-byte DES key
/// (bytes 0..8) and the 8-byte IV seed (bytes 8..16). Every encryption
/// whitens the IV with a caller-supplied nonce so equal plaintexts do
/// not produce equal ciphertexts across metadata versions.
///
/// # Examples
///
/// ```
/// use unidrive_crypto::MetadataCipher;
///
/// let cipher = MetadataCipher::from_passphrase("correct horse");
/// let ct = cipher.encrypt(b"sync folder image v1", 42);
/// assert_eq!(cipher.decrypt(&ct).unwrap(), b"sync folder image v1");
/// assert!(MetadataCipher::from_passphrase("wrong").decrypt(&ct).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCipher {
    des: Des,
    iv_seed: [u8; 8],
}

impl MetadataCipher {
    /// Derives the cipher from a passphrase.
    pub fn from_passphrase(passphrase: &str) -> Self {
        let digest = Sha1::digest(passphrase.as_bytes());
        let mut key = [0u8; 8];
        key.copy_from_slice(&digest.as_bytes()[..8]);
        let mut iv_seed = [0u8; 8];
        iv_seed.copy_from_slice(&digest.as_bytes()[8..16]);
        MetadataCipher {
            des: Des::new(key),
            iv_seed,
        }
    }

    /// Creates the cipher from raw key material.
    pub fn from_key(key: [u8; 8], iv_seed: [u8; 8]) -> Self {
        MetadataCipher {
            des: Des::new(key),
            iv_seed,
        }
    }

    fn iv_for(&self, nonce: u64) -> [u8; 8] {
        // Encrypt the nonce-whitened seed so the IV is unpredictable.
        let mut iv = self.iv_seed;
        let n = nonce.to_be_bytes();
        for i in 0..8 {
            iv[i] ^= n[i];
        }
        self.des.encrypt_block(iv)
    }

    /// Encrypts `plaintext` with PKCS#5 padding; the IV (derived from
    /// `nonce`) is prepended to the returned ciphertext.
    pub fn encrypt(&self, plaintext: &[u8], nonce: u64) -> Vec<u8> {
        let iv = self.iv_for(nonce);
        let pad = 8 - plaintext.len() % 8;
        let mut out = Vec::with_capacity(8 + plaintext.len() + pad);
        out.extend_from_slice(&iv);
        let mut prev = iv;
        let mut block = [0u8; 8];
        let mut chunks = plaintext.chunks_exact(8);
        for chunk in &mut chunks {
            block.copy_from_slice(chunk);
            for i in 0..8 {
                block[i] ^= prev[i];
            }
            prev = self.des.encrypt_block(block);
            out.extend_from_slice(&prev);
        }
        // Final (padded) block.
        let rest = chunks.remainder();
        block[..rest.len()].copy_from_slice(rest);
        for b in block.iter_mut().skip(rest.len()) {
            *b = pad as u8;
        }
        for i in 0..8 {
            block[i] ^= prev[i];
        }
        out.extend_from_slice(&self.des.encrypt_block(block));
        out
    }

    /// Decrypts ciphertext produced by [`encrypt`](MetadataCipher::encrypt).
    ///
    /// # Errors
    ///
    /// [`DecryptError`] on malformed length or padding (typically a wrong
    /// passphrase).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, DecryptError> {
        if ciphertext.len() < 16 || !ciphertext.len().is_multiple_of(8) {
            return Err(DecryptError::BadLength {
                len: ciphertext.len(),
            });
        }
        let mut prev: [u8; 8] = ciphertext[..8].try_into().expect("8-byte IV");
        let mut out = Vec::with_capacity(ciphertext.len() - 8);
        for chunk in ciphertext[8..].chunks_exact(8) {
            let block: [u8; 8] = chunk.try_into().expect("8-byte block");
            let mut plain = self.des.decrypt_block(block);
            for i in 0..8 {
                plain[i] ^= prev[i];
            }
            out.extend_from_slice(&plain);
            prev = block;
        }
        let pad = *out.last().expect("non-empty plaintext") as usize;
        if pad == 0 || pad > 8 || out.len() < pad {
            return Err(DecryptError::BadPadding);
        }
        if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err(DecryptError::BadPadding);
        }
        out.truncate(out.len() - pad);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_lengths() {
        let c = MetadataCipher::from_passphrase("pw");
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let ct = c.encrypt(&pt, len as u64);
            assert_eq!(c.decrypt(&ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn nonce_randomizes_ciphertext() {
        let c = MetadataCipher::from_passphrase("pw");
        let a = c.encrypt(b"same plaintext", 1);
        let b = c.encrypt(b"same plaintext", 2);
        assert_ne!(a, b);
        assert_eq!(c.decrypt(&a).unwrap(), c.decrypt(&b).unwrap());
    }

    #[test]
    fn wrong_passphrase_fails() {
        let good = MetadataCipher::from_passphrase("right");
        let bad = MetadataCipher::from_passphrase("wrong");
        let ct = good.encrypt(b"secret metadata", 7);
        // Either bad padding, or (with probability 1/256 per try) padding
        // that happens to validate but yields different plaintext; this
        // fixed vector is known to fail padding.
        match bad.decrypt(&ct) {
            Err(DecryptError::BadPadding) => {}
            Ok(pt) => assert_ne!(pt, b"secret metadata"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn truncated_ciphertext_rejected() {
        let c = MetadataCipher::from_passphrase("pw");
        let ct = c.encrypt(b"0123456789", 1);
        assert!(matches!(
            c.decrypt(&ct[..ct.len() - 3]).unwrap_err(),
            DecryptError::BadLength { .. }
        ));
        assert!(matches!(
            c.decrypt(&ct[..8]).unwrap_err(),
            DecryptError::BadLength { .. }
        ));
    }

    #[test]
    fn ciphertext_hides_plaintext_structure() {
        let c = MetadataCipher::from_passphrase("pw");
        let pt = vec![0u8; 64]; // highly regular plaintext
        let ct = c.encrypt(&pt, 9);
        // CBC chaining: no two ciphertext blocks equal.
        let blocks: Vec<&[u8]> = ct.chunks(8).collect();
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                assert_ne!(blocks[i], blocks[j], "blocks {i} and {j} repeat");
            }
        }
    }

    #[test]
    fn from_key_round_trip() {
        let c = MetadataCipher::from_key([1, 2, 3, 4, 5, 6, 7, 8], [9; 8]);
        let ct = c.encrypt(b"x", 0);
        assert_eq!(c.decrypt(&ct).unwrap(), b"x");
    }
}
