//! Tree comparison and three-way merge of metadata images
//! (paper §5.2, "Conflicting Local and Cloud Updates").
//!
//! To commit a local update when a cloud update also exists, UniDrive
//! computes ΔL = diff(original, local) and ΔC = diff(original, cloud),
//! merges entries touched by only one side directly, and for entries
//! touched by both retains *both* versions — the cloud's wins the main
//! slot, the local snapshot is attached as a conflict copy for the user
//! to resolve later.

use std::collections::BTreeMap;

use crate::{Snapshot, SyncFolderImage};

/// Per-path change between two images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryChange {
    /// The path was created or its snapshot replaced.
    Upsert(Snapshot),
    /// The path was removed.
    Delete,
}

/// The result of a tree comparison: path → change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeDelta {
    changes: BTreeMap<String, EntryChange>,
}

impl TreeDelta {
    /// Number of changed paths.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Change for one path, if any.
    pub fn get(&self, path: &str) -> Option<&EntryChange> {
        self.changes.get(path)
    }

    /// Iterates over `(path, change)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &EntryChange)> {
        self.changes.iter().map(|(p, c)| (p.as_str(), c))
    }
}

/// Compares two images, returning the changes that turn `from` into
/// `to`. Only the *current* snapshots are compared (conflict copies are
/// bookkeeping, not content).
pub fn diff(from: &SyncFolderImage, to: &SyncFolderImage) -> TreeDelta {
    let mut changes = BTreeMap::new();
    for (path, entry) in to.files() {
        match from.file(path) {
            Some(old) if old.snapshot == entry.snapshot => {}
            _ => {
                changes.insert(path.to_owned(), EntryChange::Upsert(entry.snapshot.clone()));
            }
        }
    }
    for (path, _) in from.files() {
        if to.file(path).is_none() {
            changes.insert(path.to_owned(), EntryChange::Delete);
        }
    }
    TreeDelta { changes }
}

/// One unresolved conflict produced by [`merge3`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The contested path.
    pub path: String,
    /// What the local side wanted.
    pub local: EntryChange,
    /// What the cloud side committed.
    pub cloud: EntryChange,
}

/// Result of a three-way merge.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// The merged image (cloud version wins contested entries; local
    /// snapshots are retained as conflict copies).
    pub image: SyncFolderImage,
    /// Entries needing user attention.
    pub conflicts: Vec<Conflict>,
}

/// Merges a local image and a cloud image against their common original
/// (Algorithm 1, line 7). `local_device` labels retained conflict
/// copies.
///
/// Outcome properties:
///
/// * paths changed on only one side take that side's change;
/// * identical changes on both sides merge silently;
/// * divergent changes keep the cloud snapshot as current and attach the
///   local one as a conflict copy (with its content segments retained);
/// * the segment pool is the union of both pools (block locations are
///   additive because blocks are immutable), with refcounts recomputed.
pub fn merge3(
    original: &SyncFolderImage,
    local: &SyncFolderImage,
    cloud: &SyncFolderImage,
    local_device: &str,
) -> MergeOutcome {
    let delta_local = diff(original, local);
    let delta_cloud = diff(original, cloud);

    // Start from the cloud image: it is the committed truth.
    let mut image = cloud.clone();

    // Union the segment pools so every snapshot either side references
    // stays resolvable.
    for (id, entry) in local.segments() {
        let pooled = image.ensure_segment(*id, entry.len);
        let blocks = entry.blocks.clone();
        let _ = pooled;
        for b in blocks {
            image.record_block(*id, b);
        }
    }

    let mut conflicts = Vec::new();
    for (path, local_change) in delta_local.iter() {
        match delta_cloud.get(path) {
            None => {
                // Only we touched it: apply our change.
                match local_change {
                    EntryChange::Upsert(snapshot) => {
                        image.upsert_file(path, snapshot.clone());
                    }
                    EntryChange::Delete => {
                        image.delete_file(path);
                    }
                }
            }
            Some(cloud_change) if cloud_change == local_change => {
                // Coincidental identical change: nothing to do.
            }
            Some(cloud_change) => {
                // Divergent: cloud wins the main slot; retain ours.
                conflicts.push(Conflict {
                    path: path.to_owned(),
                    local: local_change.clone(),
                    cloud: cloud_change.clone(),
                });
                match (local_change, cloud_change) {
                    (EntryChange::Upsert(ours), EntryChange::Upsert(_)) => {
                        image.attach_conflict(path, local_device, ours.clone());
                    }
                    (EntryChange::Upsert(ours), EntryChange::Delete) => {
                        // Cloud deleted, we edited: resurrect our version
                        // as the current snapshot (nothing to conflict
                        // against) — matching SVN/Git "modify beats
                        // delete" practice.
                        image.upsert_file(path, ours.clone());
                    }
                    (EntryChange::Delete, EntryChange::Upsert(_)) => {
                        // We deleted, cloud edited: keep the cloud file.
                    }
                    (EntryChange::Delete, EntryChange::Delete) => unreachable!("equal changes"),
                }
            }
        }
    }
    image.recompute_refcounts();
    MergeOutcome { image, conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentId;
    use unidrive_crypto::Sha1;

    fn seg(tag: &str) -> SegmentId {
        SegmentId(Sha1::digest(tag.as_bytes()))
    }

    fn snap(tag: &str) -> Snapshot {
        Snapshot {
            mtime_ns: 0,
            size: 10,
            segments: vec![seg(tag)],
        }
    }

    fn put(img: &mut SyncFolderImage, path: &str, tag: &str) {
        img.ensure_segment(seg(tag), 10);
        img.upsert_file(path, snap(tag));
    }

    fn base() -> SyncFolderImage {
        let mut img = SyncFolderImage::new();
        put(&mut img, "common.txt", "common");
        put(&mut img, "doomed.txt", "doomed");
        img
    }

    #[test]
    fn diff_detects_adds_edits_deletes() {
        let original = base();
        let mut changed = original.clone();
        put(&mut changed, "new.txt", "new");
        put(&mut changed, "common.txt", "edited");
        changed.delete_file("doomed.txt");
        let d = diff(&original, &changed);
        assert_eq!(d.len(), 3);
        assert!(matches!(d.get("new.txt"), Some(EntryChange::Upsert(_))));
        assert!(matches!(d.get("common.txt"), Some(EntryChange::Upsert(_))));
        assert_eq!(d.get("doomed.txt"), Some(&EntryChange::Delete));
    }

    #[test]
    fn diff_of_identical_images_is_empty() {
        let img = base();
        assert!(diff(&img, &img.clone()).is_empty());
    }

    #[test]
    fn disjoint_changes_merge_cleanly() {
        let original = base();
        let mut local = original.clone();
        put(&mut local, "mine.txt", "mine");
        let mut cloud = original.clone();
        put(&mut cloud, "theirs.txt", "theirs");
        cloud.delete_file("doomed.txt");

        let out = merge3(&original, &local, &cloud, "laptop");
        assert!(out.conflicts.is_empty());
        assert!(out.image.file("mine.txt").is_some());
        assert!(out.image.file("theirs.txt").is_some());
        assert!(out.image.file("doomed.txt").is_none());
        assert!(out.image.file("common.txt").is_some());
    }

    #[test]
    fn identical_changes_do_not_conflict() {
        let original = base();
        let mut local = original.clone();
        put(&mut local, "same.txt", "samecontent");
        let mut cloud = original.clone();
        put(&mut cloud, "same.txt", "samecontent");
        let out = merge3(&original, &local, &cloud, "laptop");
        assert!(out.conflicts.is_empty());
        assert!(out.image.file("same.txt").unwrap().conflict.is_none());
    }

    #[test]
    fn divergent_edits_retain_both_versions() {
        let original = base();
        let mut local = original.clone();
        put(&mut local, "common.txt", "local-edit");
        let mut cloud = original.clone();
        put(&mut cloud, "common.txt", "cloud-edit");

        let out = merge3(&original, &local, &cloud, "laptop");
        assert_eq!(out.conflicts.len(), 1);
        assert_eq!(out.conflicts[0].path, "common.txt");
        let entry = out.image.file("common.txt").unwrap();
        // Cloud wins the main slot.
        assert_eq!(entry.snapshot.segments, vec![seg("cloud-edit")]);
        // Local copy retained, attributed to the device.
        let (device, retained) = entry.conflict.as_ref().unwrap();
        assert_eq!(device, "laptop");
        assert_eq!(retained.segments, vec![seg("local-edit")]);
        // Both contents stay referenced so neither is garbage-collected.
        assert!(out.image.segment(&seg("cloud-edit")).unwrap().refcount >= 1);
        assert!(out.image.segment(&seg("local-edit")).unwrap().refcount >= 1);
    }

    #[test]
    fn local_edit_beats_cloud_delete() {
        let original = base();
        let mut local = original.clone();
        put(&mut local, "doomed.txt", "rescued");
        let mut cloud = original.clone();
        cloud.delete_file("doomed.txt");
        let out = merge3(&original, &local, &cloud, "laptop");
        assert_eq!(out.conflicts.len(), 1);
        assert_eq!(
            out.image.file("doomed.txt").unwrap().snapshot.segments,
            vec![seg("rescued")]
        );
    }

    #[test]
    fn cloud_edit_beats_local_delete() {
        let original = base();
        let mut local = original.clone();
        local.delete_file("common.txt");
        let mut cloud = original.clone();
        put(&mut cloud, "common.txt", "cloud-edit");
        let out = merge3(&original, &local, &cloud, "laptop");
        assert_eq!(out.conflicts.len(), 1);
        assert_eq!(
            out.image.file("common.txt").unwrap().snapshot.segments,
            vec![seg("cloud-edit")]
        );
    }

    #[test]
    fn merged_pool_contains_both_sides_block_locations() {
        use crate::BlockRef;
        let original = base();
        let mut local = original.clone();
        put(&mut local, "mine.txt", "mine");
        local.record_block(seg("mine"), BlockRef { index: 0, cloud: 1 });
        let mut cloud = original.clone();
        cloud.record_block(seg("common"), BlockRef { index: 2, cloud: 3 });

        let out = merge3(&original, &local, &cloud, "laptop");
        assert_eq!(
            out.image.segment(&seg("mine")).unwrap().blocks,
            vec![BlockRef { index: 0, cloud: 1 }]
        );
        assert_eq!(
            out.image.segment(&seg("common")).unwrap().blocks,
            vec![BlockRef { index: 2, cloud: 3 }]
        );
    }
}
