//! **Fleet bench** — drives the `unidrive-fleet` population simulator
//! at scale and reports fleet-wide sync behavior:
//!
//! * p50/p95/p99 end-to-end sync latency and quorum-lock wait across
//!   every completed session,
//! * per-cloud request accounting (ops, peak/mean QPS, shaper delay),
//! * lock contention (rounds histogram, starvation audits, deferrals),
//! * chaos-soak invariants checked at population scale: single lock
//!   holder, no lost acks, session conservation, convergence.
//!
//! The run is virtual-time deterministic: same seed ⇒ byte-identical
//! `BENCH_fleet.json`, regardless of shard or thread count (CI runs
//! the quick mode twice and byte-compares). Wall-clock time and peak
//! RSS are printed to stdout only — they are host facts, not run
//! facts, and would break the byte-identical gate.
//!
//! Usage: `bench_fleet [quick] [--seed N] [--shards N] [--threads N]
//! [--out BENCH_fleet.json] [--series-out SERIES.json]`.
//! `--metrics-out`/`--trace-out` mirror the counters into a standard
//! obs snapshot for `run_all` integration; `--series-out` writes the
//! windowed per-cloud/workload series with the health scoreboard
//! embedded (byte-identical across shard and thread counts — CI runs
//! two layouts and byte-compares).

use std::time::Instant;

use unidrive_bench::{meta_mode_from_args, metrics_out};
use unidrive_fleet::{FleetConfig, FleetSim};
use unidrive_workload::TextTable;

/// `VmHWM` (peak resident set) of this process, in KiB, from
/// `/proc/self/status`; `None` off Linux or on parse failure.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

fn flag_u64(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick" || a == "--quick");
    let seed = flag_u64(&args, "--seed").unwrap_or(42);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut cfg = if quick {
        FleetConfig::quick(seed)
    } else {
        FleetConfig::full(seed)
    };
    if let Some(s) = flag_u64(&args, "--shards") {
        cfg.shards = s as usize;
    }
    if let Some(t) = flag_u64(&args, "--threads") {
        cfg.threads = t as usize;
    }
    cfg.meta_mode = meta_mode_from_args();
    let mut metrics = metrics_out::from_args();
    // The fleet's series are merged per-shard banks, not registry
    // cells: claim the path and write the fleet's own document.
    let series_out = metrics.take_series_path();

    println!(
        "Fleet bench ({}): {} devices, {} hot folders, {}s horizon, {} shards, seed {}, meta-mode {}",
        if quick { "quick" } else { "full" },
        cfg.devices,
        cfg.hot_folders,
        cfg.horizon.as_secs(),
        cfg.shards,
        seed,
        cfg.meta_mode
    );

    let wall = Instant::now();
    let m = FleetSim::new(cfg).run();
    let elapsed = wall.elapsed();

    // Headline: scale, wall-clock, memory. Peak RSS staying far below
    // devices × full-state is the lazy-materialization claim.
    println!(
        "\n{} events in {} windows, {:.0}s virtual time, {} drain rounds",
        m.events_processed,
        m.windows,
        m.virtual_end_ns as f64 / 1e9,
        m.drain_rounds
    );
    print!(
        "wall-clock {:.2}s ({:.2}M events/s)",
        elapsed.as_secs_f64(),
        m.events_processed as f64 / 1e6 / elapsed.as_secs_f64().max(1e-9)
    );
    match peak_rss_kib() {
        Some(kib) => println!(
            ", peak RSS {:.1} MiB ({:.0} bytes/device)",
            kib as f64 / 1024.0,
            kib as f64 * 1024.0 / m.devices as f64
        ),
        None => println!(),
    }

    println!(
        "\nsessions: {} started, {} completed, {} deferred, {} devices churned",
        m.counter("sessions.started"),
        m.counter("sessions.completed"),
        m.counter("sessions.deferred"),
        m.counter("devices.churned")
    );
    println!(
        "locks: {} acquired, {} contended rounds, {} starved, {} exhausted, {} unreachable rounds",
        m.counter("lock.acquired"),
        m.counter("lock.contended_rounds"),
        m.counter("lock.starved"),
        m.counter("lock.exhausted"),
        m.counter("lock.unreachable_rounds")
    );
    if m.counter("oplog.appends") > 0 {
        println!(
            "oplog: {} appends, {} compactions ({} forced, {} overdue), {} compaction skips",
            m.counter("oplog.appends"),
            m.counter("oplog.compactions"),
            m.counter("oplog.compact_forced"),
            m.counter("oplog.compact_overdue"),
            m.counter("oplog.compact_skipped")
        );
    }
    println!(
        "chaos: {} burst slowdowns, {} torn repairs, {} delayed acks; drain pulled {} sessions' worth of lag",
        m.counter("fault.burst_slowdowns"),
        m.counter("fault.torn_repairs"),
        m.counter("fault.delayed_acks"),
        m.counter("drain.pulls")
    );
    println!(
        "sync latency:  {}",
        metrics_out::fmt_quantiles_ms(&m.sync_latency)
    );
    println!(
        "lock wait:     {}",
        metrics_out::fmt_quantiles_ms(&m.lock_wait)
    );
    println!(
        "lock rounds:   p50={} p99={} max={}",
        m.lock_rounds.p50(),
        m.lock_rounds.p99(),
        m.lock_rounds.max
    );

    let mut table = TextTable::new(&[
        "cloud",
        "ops",
        "lock_ops",
        "xfer_ops",
        "up_MiB",
        "down_MiB",
        "qps_peak",
        "qps_mean",
        "throttle_s",
    ]);
    for c in &m.clouds {
        table.row(vec![
            c.name.clone(),
            c.ops.to_string(),
            c.lock_ops.to_string(),
            c.transfer_ops.to_string(),
            format!("{:.1}", c.bytes_up as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", c.bytes_down as f64 / (1024.0 * 1024.0)),
            c.qps_peak.to_string(),
            format!("{:.1}", c.qps_mean),
            format!("{:.1}", c.throttle_delay_ns as f64 / 1e9),
        ]);
    }
    println!("\n{}", table.render());

    // Health scoreboard summary: final state per cloud (full timelines
    // are in the --series-out export).
    let state_of = |row: &str| {
        row.split("\"state\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("?")
            .to_owned()
    };
    let cloud_of = |row: &str| {
        row.split("\"cloud\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or("?")
            .to_owned()
    };
    println!(
        "health: {}",
        m.health_rows
            .iter()
            .map(|r| format!("{}={}", cloud_of(r), state_of(r)))
            .collect::<Vec<_>>()
            .join(" ")
    );

    println!("invariants:");
    for inv in &m.invariants {
        println!(
            "  {} {} — {}",
            if inv.pass { "PASS" } else { "FAIL" },
            inv.name,
            inv.detail
        );
    }

    // Mirror the counters into the obs registry so run_all's derived
    // --metrics-out/--trace-out paths get a standard snapshot.
    for (name, v) in &m.counters {
        metrics.obs.add(&format!("fleet.{name}"), *v);
    }
    metrics.obs.set_gauge("fleet.virtual_end_secs", m.virtual_end_ns as f64 / 1e9);
    if let Some(path) = metrics.write() {
        println!("metrics written to {path}");
    }

    if let Some(path) = &series_out {
        match std::fs::write(path, m.series_json()) {
            Ok(()) => println!("series written to {path}"),
            Err(e) => eprintln!("failed to write --series-out {path}: {e}"),
        }
    }

    let json = m.to_json();
    match &out {
        Some(path) => match std::fs::write(path, &json) {
            Ok(()) => println!("\nfleet report written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        },
        None => println!("\n{json}"),
    }

    println!(
        "\nbench_fleet verdict: {}",
        if m.all_pass() { "PASS" } else { "FAIL" }
    );
    if !m.all_pass() {
        std::process::exit(1);
    }
}
