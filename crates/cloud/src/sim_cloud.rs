//! [`SimCloud`]: a consumer cloud service behind a simulated network.
//!
//! Wraps an in-memory object store with the behaviours the UniDrive
//! measurement study (paper §3.2) found to matter for real CCS Web APIs:
//!
//! * every request crosses a [`LinkProfile`]-modeled path (latency,
//!   fluctuating processor-shared bandwidth),
//! * requests fail transiently with a probability that grows with
//!   transfer size (Fig. 4), optionally elevated during *degraded
//!   windows* — disjoint per-cloud bad periods that produce the negative
//!   failure correlation of Table 1,
//! * accounts have quotas,
//! * the whole service can be switched unavailable (outages, regional
//!   blocks — Fig. 14),
//! * per-request protocol overhead bytes are charged, so sync overhead
//!   accounting (Table 3) is meaningful.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use unidrive_obs::{Event, Obs};
use unidrive_util::bytes::Bytes;
use unidrive_util::sync::Mutex;
use unidrive_sim::{LinkId, LinkProfile, Runtime, SimRng, SimRuntime, Time, TransferError};

use crate::{CloudCaps, CloudError, CloudOp, CloudStore, MemCloud, ObjectInfo};

/// Transient-failure model of one cloud's Web API.
///
/// The per-request failure probability is
/// `min(base + per_mb × MB, max)`, replaced by `degraded` inside a
/// degraded window.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProfile {
    /// Baseline failure probability of any request.
    pub base: f64,
    /// Additional probability per megabyte transferred.
    pub per_mb: f64,
    /// Upper clamp for the size-dependent probability.
    pub max: f64,
    /// Failure probability while the cloud is in a degraded window.
    pub degraded: f64,
}

impl FailureProfile {
    /// A cloud that never fails (unit-test default).
    pub fn none() -> Self {
        FailureProfile {
            base: 0.0,
            per_mb: 0.0,
            max: 0.0,
            degraded: 0.0,
        }
    }

    /// Typical healthy profile: ~1 % base, +0.4 %/MB, capped at 15 %.
    pub fn typical() -> Self {
        FailureProfile {
            base: 0.01,
            per_mb: 0.004,
            max: 0.15,
            degraded: 0.5,
        }
    }

    /// Failure probability for a request moving `bytes` payload bytes.
    pub fn probability(&self, bytes: u64, in_degraded_window: bool) -> f64 {
        if in_degraded_window {
            return self.degraded;
        }
        (self.base + self.per_mb * (bytes as f64 / 1e6)).min(self.max)
    }
}

/// Configuration of a [`SimCloud`].
#[derive(Debug, Clone)]
pub struct SimCloudConfig {
    /// Upstream (client → cloud) path.
    pub up: LinkProfile,
    /// Downstream (cloud → client) path.
    pub down: LinkProfile,
    /// Transient failure model.
    pub failure: FailureProfile,
    /// Storage quota in bytes (`None` = unlimited).
    pub quota_bytes: Option<u64>,
    /// Fixed protocol bytes charged per request (headers, handshakes).
    pub request_overhead_bytes: u64,
}

impl SimCloudConfig {
    /// A stable, failure-free cloud with the given per-connection and
    /// aggregate rates (bytes/second) in both directions.
    pub fn steady(per_conn: f64, agg: f64) -> Self {
        SimCloudConfig {
            up: LinkProfile::steady(per_conn, agg),
            down: LinkProfile::steady(per_conn, agg),
            failure: FailureProfile::none(),
            quota_bytes: None,
            request_overhead_bytes: 0,
        }
    }
}

/// Cumulative traffic counters of a [`SimCloud`] (monotonic).
#[derive(Debug, Default)]
pub struct TrafficCounters {
    /// Payload + overhead bytes sent client → cloud.
    pub uploaded_bytes: AtomicU64,
    /// Payload + overhead bytes sent cloud → client.
    pub downloaded_bytes: AtomicU64,
    /// Successful API requests.
    pub ok_requests: AtomicU64,
    /// Failed API requests (transient failures and unavailability).
    pub failed_requests: AtomicU64,
}

/// Point-in-time snapshot of [`TrafficCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Payload + overhead bytes sent client → cloud.
    pub uploaded_bytes: u64,
    /// Payload + overhead bytes sent cloud → client.
    pub downloaded_bytes: u64,
    /// Successful API requests.
    pub ok_requests: u64,
    /// Failed API requests.
    pub failed_requests: u64,
}

impl TrafficSnapshot {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.uploaded_bytes + self.downloaded_bytes
    }

    /// Success rate of API requests (1.0 when no requests were made).
    pub fn success_rate(&self) -> f64 {
        let total = self.ok_requests + self.failed_requests;
        if total == 0 {
            1.0
        } else {
            self.ok_requests as f64 / total as f64
        }
    }
}

/// A simulated consumer cloud storage service.
///
/// # Examples
///
/// ```
/// use unidrive_util::bytes::Bytes;
/// use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
/// use unidrive_sim::SimRuntime;
///
/// # fn main() -> Result<(), unidrive_cloud::CloudError> {
/// let sim = SimRuntime::new(1);
/// let cloud = SimCloud::new(&sim, "dropbox", SimCloudConfig::steady(1e6, 5e6));
/// cloud.upload("f.bin", Bytes::from(vec![0u8; 1_000_000]))?; // takes 1 virtual second
/// assert_eq!(cloud.download("f.bin")?.len(), 1_000_000);
/// # Ok(())
/// # }
/// ```
pub struct SimCloud {
    name: String,
    sim: Arc<SimRuntime>,
    up: LinkId,
    down: LinkId,
    storage: Arc<MemCloud>,
    failure: FailureProfile,
    quota: Option<u64>,
    overhead: u64,
    rng: Mutex<SimRng>,
    available: AtomicBool,
    counters: Arc<TrafficCounters>,
    /// Disjoint (start, end) degraded windows, sorted by start.
    degraded_windows: Mutex<Vec<(Time, Time)>>,
    obs: Mutex<Obs>,
}

impl std::fmt::Debug for SimCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCloud")
            .field("name", &self.name)
            .field("available", &self.available.load(Ordering::Relaxed))
            .field("used_bytes", &self.storage.used_bytes())
            .finish()
    }
}

impl SimCloud {
    /// Creates a simulated cloud on `sim`, registering its two links.
    pub fn new(sim: &Arc<SimRuntime>, name: impl Into<String>, config: SimCloudConfig) -> Self {
        Self::with_backing(sim, name, config, Arc::new(MemCloud::new("backing")))
    }

    /// Creates a *site frontend* to an existing backing store: the same
    /// objects seen through this site's network path. Build one frontend
    /// per site over a shared backing to model one provider serving
    /// clients at multiple locations (the multi-device experiments).
    pub fn with_backing(
        sim: &Arc<SimRuntime>,
        name: impl Into<String>,
        config: SimCloudConfig,
        backing: Arc<MemCloud>,
    ) -> Self {
        let up = sim.add_link(config.up);
        let down = sim.add_link(config.down);
        let rng = sim.fork_rng();
        SimCloud {
            name: name.into(),
            sim: Arc::clone(sim),
            up,
            down,
            storage: backing,
            failure: config.failure,
            quota: config.quota_bytes,
            overhead: config.request_overhead_bytes,
            rng: Mutex::new(rng),
            available: AtomicBool::new(true),
            counters: Arc::new(TrafficCounters::default()),
            degraded_windows: Mutex::new(Vec::new()),
            obs: Mutex::new(Obs::noop()),
        }
    }

    /// Installs an observability handle. Requests are then counted per
    /// cloud (`cloud.{name}.requests_ok`/`requests_failed`/`bytes`, a
    /// `request_bytes` size histogram) and failures traced as
    /// [`Event::CloudOpFailed`]. The handle is also installed on the
    /// engine (see [`SimRuntime::install_obs`]), which points the
    /// registry clock at virtual time so stamps are deterministic.
    pub fn install_obs(&self, obs: Obs) {
        self.sim.install_obs(obs.clone());
        *self.obs.lock() = obs;
    }

    fn obs(&self) -> Obs {
        self.obs.lock().clone()
    }

    fn count_failure(&self, op: &'static str, bytes: u64, transient: bool) {
        self.counters.failed_requests.fetch_add(1, Ordering::Relaxed);
        let obs = self.obs();
        obs.inc(&format!("cloud.{}.requests_failed", self.name));
        obs.event(|| Event::CloudOpFailed {
            cloud: self.name.clone(),
            op,
            bytes,
            transient,
        });
    }

    /// Switches the whole service up or down (outage emulation).
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// Whether the service currently accepts requests.
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    /// Installs the degraded windows during which requests fail with the
    /// profile's `degraded` probability. Windows should be sorted and
    /// disjoint.
    pub fn set_degraded_windows(&self, windows: Vec<(Time, Time)>) {
        *self.degraded_windows.lock() = windows;
    }

    /// Shared handle to this cloud's traffic counters.
    pub fn counters(&self) -> Arc<TrafficCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            uploaded_bytes: self.counters.uploaded_bytes.load(Ordering::Relaxed),
            downloaded_bytes: self.counters.downloaded_bytes.load(Ordering::Relaxed),
            ok_requests: self.counters.ok_requests.load(Ordering::Relaxed),
            failed_requests: self.counters.failed_requests.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.storage.used_bytes()
    }

    /// The backing object store (share it with another site's frontend
    /// via [`SimCloud::with_backing`]).
    pub fn backing(&self) -> Arc<MemCloud> {
        Arc::clone(&self.storage)
    }

    /// The upstream link id (for tests that inspect the network).
    pub fn up_link(&self) -> LinkId {
        self.up
    }

    /// The downstream link id.
    pub fn down_link(&self) -> LinkId {
        self.down
    }

    fn in_degraded_window(&self) -> bool {
        let now = self.sim.now();
        self.degraded_windows
            .lock()
            .iter()
            .any(|&(s, e)| s <= now && now < e)
    }

    fn check_available(&self, op: &'static str) -> Result<(), CloudError> {
        if self.is_available() {
            Ok(())
        } else {
            self.count_failure(op, 0, false);
            Err(CloudError::unavailable(self.name.clone()))
        }
    }

    /// Runs one request: decides failure, moves the right number of bytes
    /// over `link`, updates counters.
    fn request(
        &self,
        link: LinkId,
        op: &'static str,
        payload: u64,
        counter: &AtomicU64,
    ) -> Result<(), CloudError> {
        let total = payload + self.overhead;
        let p = self
            .failure
            .probability(payload, self.in_degraded_window());
        let fail = { self.rng.lock().chance(p) };
        if fail {
            // A failed request still wastes some of the bytes before the
            // connection drops.
            let fraction = { self.rng.lock().uniform(0.05, 0.9) };
            let wasted = (total as f64 * fraction) as u64;
            let _ = self.do_transfer(link, wasted);
            counter.fetch_add(wasted, Ordering::Relaxed);
            self.count_failure(op, payload, true);
            return Err(CloudError::transient(format!(
                "request to {} dropped mid-transfer",
                self.name
            )));
        }
        self.do_transfer(link, total).inspect_err(|_e| {
            self.count_failure(op, payload, false);
        })?;
        counter.fetch_add(total, Ordering::Relaxed);
        self.counters.ok_requests.fetch_add(1, Ordering::Relaxed);
        let obs = self.obs();
        if obs.is_enabled() {
            obs.inc(&format!("cloud.{}.requests_ok", self.name));
            obs.add(&format!("cloud.{}.bytes", self.name), total);
            obs.observe(&format!("cloud.{}.request_bytes", self.name), payload);
        }
        Ok(())
    }

    fn do_transfer(&self, link: LinkId, bytes: u64) -> Result<(), CloudError> {
        self.sim.transfer(link, bytes).map_err(|e| match e {
            TransferError::LinkDisabled => CloudError::unavailable(self.name.clone()),
        })
    }
}

impl CloudStore for SimCloud {
    fn name(&self) -> &str {
        &self.name
    }

    fn upload(&self, path: &str, data: Bytes) -> Result<(), CloudError> {
        let run = || {
            self.check_available("upload")?;
            if let Some(quota) = self.quota {
                let used = self.storage.used_bytes();
                let needed = data.len() as u64;
                if used + needed > quota {
                    self.count_failure("upload", needed, false);
                    return Err(CloudError::QuotaExceeded {
                        needed,
                        available: quota.saturating_sub(used),
                    });
                }
            }
            self.request(
                self.up,
                "upload",
                data.len() as u64,
                &self.counters.uploaded_bytes,
            )?;
            self.storage.upload(path, data.clone())
        };
        run().map_err(|e| e.with_op_context(CloudOp::Upload, path))
    }

    fn download(&self, path: &str) -> Result<Bytes, CloudError> {
        let run = || {
            self.check_available("download")?;
            // The request has to reach the cloud before NotFound can be known.
            let data = match self.storage.download(path) {
                Ok(d) => d,
                Err(e) => {
                    self.request(self.down, "download", 0, &self.counters.downloaded_bytes)?;
                    return Err(e);
                }
            };
            self.request(
                self.down,
                "download",
                data.len() as u64,
                &self.counters.downloaded_bytes,
            )?;
            Ok(data)
        };
        run().map_err(|e| e.with_op_context(CloudOp::Download, path))
    }

    fn create_dir(&self, path: &str) -> Result<(), CloudError> {
        let run = || {
            self.check_available("create_dir")?;
            self.request(self.up, "create_dir", 0, &self.counters.uploaded_bytes)?;
            self.storage.create_dir(path)
        };
        run().map_err(|e| e.with_op_context(CloudOp::CreateDir, path))
    }

    fn list(&self, path: &str) -> Result<Vec<ObjectInfo>, CloudError> {
        let run = || {
            self.check_available("list")?;
            let entries = match self.storage.list(path) {
                Ok(e) => e,
                Err(e) => {
                    self.request(self.down, "list", 0, &self.counters.downloaded_bytes)?;
                    return Err(e);
                }
            };
            // Listings cost roughly 64 bytes of response per entry.
            self.request(
                self.down,
                "list",
                entries.len() as u64 * 64,
                &self.counters.downloaded_bytes,
            )?;
            Ok(entries)
        };
        run().map_err(|e| e.with_op_context(CloudOp::List, path))
    }

    fn delete(&self, path: &str) -> Result<(), CloudError> {
        let run = || {
            self.check_available("delete")?;
            self.request(self.up, "delete", 0, &self.counters.uploaded_bytes)?;
            self.storage.delete(path)
        };
        run().map_err(|e| e.with_op_context(CloudOp::Delete, path))
    }

    fn caps(&self) -> CloudCaps {
        CloudCaps {
            // Appends go through the default read-modify-write over the
            // simulated links (no atomic server-side append), exactly
            // like the consumer clouds being modeled.
            native_append: false,
            read_after_write: true,
            max_object_bytes: None,
            supports_conditional_put: false,
            // The simulated namespace mirrors MemCloud's strict edges.
            strict_not_found: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sim_cloud(seed: u64, config: SimCloudConfig) -> (Arc<SimRuntime>, SimCloud) {
        let sim = SimRuntime::new(seed);
        let cloud = SimCloud::new(&sim, "c", config);
        (sim, cloud)
    }

    #[test]
    fn transfer_takes_simulated_time() {
        let (sim, cloud) = sim_cloud(1, SimCloudConfig::steady(1e6, 1e6));
        let t0 = sim.now();
        cloud.upload("f", Bytes::from(vec![0u8; 2_000_000])).unwrap();
        assert_eq!((sim.now() - t0).as_secs_f64(), 2.0);
    }

    #[test]
    fn unavailable_cloud_refuses_everything() {
        let (_sim, cloud) = sim_cloud(2, SimCloudConfig::steady(1e6, 1e6));
        cloud.set_available(false);
        assert!(matches!(
            cloud.upload("f", Bytes::new()).unwrap_err(),
            CloudError::Unavailable { .. }
        ));
        assert!(matches!(
            cloud.list("").unwrap_err(),
            CloudError::Unavailable { .. }
        ));
        cloud.set_available(true);
        assert!(cloud.list("").is_ok());
    }

    #[test]
    fn quota_is_enforced_before_transfer() {
        let mut cfg = SimCloudConfig::steady(1e6, 1e6);
        cfg.quota_bytes = Some(1000);
        let (sim, cloud) = sim_cloud(3, cfg);
        cloud.upload("a", Bytes::from(vec![0u8; 800])).unwrap();
        let t_before = sim.now();
        let err = cloud.upload("b", Bytes::from(vec![0u8; 400])).unwrap_err();
        assert!(matches!(err, CloudError::QuotaExceeded { available: 200, .. }));
        // Rejection is immediate: no bytes were transferred.
        assert_eq!(sim.now(), t_before);
    }

    #[test]
    fn failures_follow_size_dependence() {
        let mut cfg = SimCloudConfig::steady(1e8, 1e9);
        cfg.failure = FailureProfile {
            base: 0.02,
            per_mb: 0.02,
            max: 0.5,
            degraded: 0.5,
        };
        let (_sim, cloud) = sim_cloud(4, cfg);
        let mut fails = [0u32; 2];
        let sizes = [100_000u64, 8_000_000];
        for (i, &size) in sizes.iter().enumerate() {
            for _ in 0..300 {
                if cloud
                    .upload("f", Bytes::from(vec![0u8; size as usize]))
                    .is_err()
                {
                    fails[i] += 1;
                }
            }
        }
        assert!(
            fails[1] > fails[0] * 2,
            "large files should fail more: {fails:?}"
        );
    }

    #[test]
    fn degraded_windows_elevate_failures() {
        let mut cfg = SimCloudConfig::steady(1e7, 1e7);
        cfg.failure = FailureProfile {
            base: 0.0,
            per_mb: 0.0,
            max: 0.0,
            degraded: 1.0,
        };
        let (sim, cloud) = sim_cloud(5, cfg);
        cloud.set_degraded_windows(vec![(Time::from_secs(100), Time::from_secs(200))]);
        assert!(cloud.upload("a", Bytes::from(vec![1u8; 10])).is_ok());
        sim.sleep(Duration::from_secs(150));
        assert!(cloud.upload("b", Bytes::from(vec![1u8; 10])).is_err());
        sim.sleep(Duration::from_secs(100));
        assert!(cloud.upload("c", Bytes::from(vec![1u8; 10])).is_ok());
    }

    #[test]
    fn counters_track_traffic_and_outcomes() {
        let mut cfg = SimCloudConfig::steady(1e6, 1e6);
        cfg.request_overhead_bytes = 100;
        let (_sim, cloud) = sim_cloud(6, cfg);
        cloud.upload("f", Bytes::from(vec![0u8; 1000])).unwrap();
        let _ = cloud.download("f").unwrap();
        let t = cloud.traffic();
        assert_eq!(t.uploaded_bytes, 1100);
        assert_eq!(t.downloaded_bytes, 1100);
        assert_eq!(t.ok_requests, 2);
        assert_eq!(t.success_rate(), 1.0);
    }

    #[test]
    fn not_found_download_still_costs_a_round_trip() {
        let mut cfg = SimCloudConfig::steady(1e6, 1e6);
        cfg.down = cfg
            .down
            .with_latency(Duration::from_millis(50), Duration::ZERO);
        let (sim, cloud) = sim_cloud(7, cfg);
        let t0 = sim.now();
        assert!(matches!(
            cloud.download("ghost").unwrap_err(),
            CloudError::NotFound { .. }
        ));
        assert_eq!(sim.now() - t0, Duration::from_millis(50));
    }

    #[test]
    fn concurrent_uploads_share_bandwidth() {
        let sim = SimRuntime::new(8);
        let cloud = Arc::new(SimCloud::new(
            &sim,
            "c",
            SimCloudConfig::steady(2e6, 2e6),
        ));
        let rt = sim.clone().as_runtime();
        let tasks: Vec<_> = (0..2)
            .map(|i| {
                let cloud = Arc::clone(&cloud);
                let sim = sim.clone();
                unidrive_sim::spawn(&rt, &format!("u{i}"), move || {
                    cloud
                        .upload(&format!("f{i}"), Bytes::from(vec![0u8; 2_000_000]))
                        .unwrap();
                    sim.now()
                })
            })
            .collect();
        for t in tasks {
            assert_eq!(t.join().as_secs_f64(), 2.0);
        }
    }
}
