//! # unidrive-chunker
//!
//! Content-based file segmentation for UniDrive (paper §6.1): a
//! rolling hash finds content-defined cut points, and
//! [`segment_bytes`] produces SHA-1-addressed segments whose sizes
//! honour the paper's `(0.5 θ, 1.5 θ)` constraint. Stable boundaries
//! mean a local edit re-uploads only the touched segments, and
//! identical content dedups across files.
//!
//! Two interchangeable rolling hashes (selected by [`ChunkerKind`]):
//! the paper-faithful LBFS-style [`RabinHash`], and the FastCDC-style
//! [`GearHash`] whose single shift+add update, wide unrolled scan, and
//! skip-ahead over the minimum-size region make it several times
//! faster on the same core. Cut-point *discovery* also parallelizes:
//! [`cut_points_parallel`] scans disjoint slices on a worker pool and
//! produces byte-identical output to the serial scan at any thread
//! count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chunker;
mod gear;
mod parallel;
mod rabin;

pub use chunker::{cut_points, segment_bytes, ChunkerConfig, ChunkerKind, Segment};
pub use gear::{GearHash, GEAR_TABLE, GEAR_WINDOW};
pub use parallel::{cut_points_parallel, cut_points_parallel_stats, ChunkStats};
pub use rabin::{RabinHash, DEFAULT_POLY};
