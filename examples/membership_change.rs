//! Add/remove-cloud demo (paper §6.2, "Adding or Removing CCSs"):
//! upload through five clouds, drop one provider (its fair share is
//! re-homed onto the survivors), then enroll a new one (its fair share
//! is minted and uploaded).
//!
//! ```sh
//! cargo run --example membership_change
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use unidrive::cloud::{CloudId, CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive::core::{add_cloud, remove_cloud, DataPlane, DataPlaneConfig, UploadRequest};
use unidrive::erasure::RedundancyConfig;
use unidrive::meta::{Snapshot, SyncFolderImage};
use unidrive::sim::SimRuntime;
use unidrive::workload::random_bytes;

fn placement(image: &SyncFolderImage, clouds: usize) -> Vec<usize> {
    let mut per_cloud = vec![0usize; clouds];
    for (_, entry) in image.segments() {
        for b in &entry.blocks {
            per_cloud[b.cloud as usize] += 1;
        }
    }
    per_cloud
}

fn main() {
    let sim = SimRuntime::new(3);
    let rt = sim.clone().as_runtime();
    let mk_cloud = |name: &str| {
        Arc::new(SimCloud::new(&sim, name, SimCloudConfig::steady(1.5e6, 6e6)))
            as Arc<dyn CloudStore>
    };
    let clouds = CloudSet::new(
        ["dropbox", "onedrive", "gdrive", "baidu", "dbank"]
            .iter()
            .map(|n| mk_cloud(n))
            .collect(),
    );

    let config = DataPlaneConfig::with_params(
        RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
        256 * 1024,
    );
    let plane = DataPlane::new(rt.clone(), clouds.clone(), config.clone());

    // Upload a file and build its metadata image.
    let data = random_bytes(1_500_000, 5);
    let (report, segs) = plane.upload_files(
        vec![UploadRequest {
            path: "album.zip".into(),
            data: data.clone(),
        }],
        &HashSet::new(),
    );
    assert!(report.all_available());
    let mut image = SyncFolderImage::new();
    for (id, len) in &segs[0].segments {
        image.ensure_segment(*id, *len);
    }
    for (id, b) in &report.blocks {
        image.record_block(*id, *b);
    }
    image.upsert_file(
        "album.zip",
        Snapshot {
            mtime_ns: 0,
            size: segs[0].size,
            segments: segs[0].segments.iter().map(|(id, _)| *id).collect(),
        },
    );
    println!("initial block placement: {:?}", placement(&image, 5));

    // The user cancels their Baidu account (cloud index 3).
    let removed = remove_cloud(&rt, &clouds, &config, &image, CloudId(3))
        .expect("rebalance on removal");
    println!(
        "after removing baidu ({} blocks moved): {:?}",
        removed.blocks_moved,
        placement(&removed.image, 4)
    );
    // Still fully downloadable from the survivors.
    let mut config4 = config.clone();
    config4.redundancy = removed.redundancy;
    let plane4 = DataPlane::new(rt.clone(), removed.clouds.clone(), config4.clone());
    let restored = plane4
        .download_file(&removed.image, "album.zip")
        .expect("post-removal download");
    assert_eq!(restored, data.to_vec());
    println!("post-removal download verified");

    // The user enrolls a new provider.
    let grown = add_cloud(
        &rt,
        &removed.clouds,
        &config4,
        &removed.image,
        mk_cloud("mega"),
    )
    .expect("rebalance on addition");
    println!(
        "after adding mega ({} blocks moved): {:?}",
        grown.blocks_moved,
        placement(&grown.image, 5)
    );
    let mut config5 = config4.clone();
    config5.redundancy = grown.redundancy;
    let plane5 = DataPlane::new(rt, grown.clouds.clone(), config5);
    let restored = plane5
        .download_file(&grown.image, "album.zip")
        .expect("post-addition download");
    assert_eq!(restored, data.to_vec());
    println!("post-addition download verified; the newcomer holds a fair share");
}
