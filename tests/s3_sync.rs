//! End-to-end integration over real sockets: two UniDrive devices
//! synchronizing through five in-process S3-compatible HTTP servers
//! ([`MockS3`]) via the pooled [`S3Cloud`] backend — the same engine
//! and protocol as the simulated tests, but with every Web API call
//! serialized onto the wire and parsed back.
//!
//! The acceptance bar for the HTTP backend is behavioural equivalence:
//! the same workload, run once against healthy servers and once under
//! seeded chaos (torn uploads at the client edge, 503 bursts and
//! throttling injected by the servers), must converge to byte-identical
//! folder contents on both devices.

use std::sync::Arc;
use std::time::Duration;

use unidrive::cloud::{
    CloudBuilder, CloudSet, CloudStore, FaultEvent, FaultKind, FaultPlan, MockS3, RetryPolicy,
    S3Cloud, S3Endpoint,
};
use unidrive::core::{
    s3_cloud_set, ClientConfig, DataPlaneConfig, MemFolder, SyncFolder, SyncReport, UniDriveClient,
};
use unidrive::erasure::RedundancyConfig;
use unidrive::sim::{RealRuntime, Runtime, SimRng};

const CLOUDS: usize = 5;

/// The files the workload touches, in digest order.
const FILES: [&str; 2] = ["docs/big.bin", "notes/readme.txt"];

fn content(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(tag).wrapping_add(tag))
        .collect()
}

/// Client configuration tuned for wall-clock tests: the protocol and
/// redundancy are the paper's, but every backoff that would be virtual
/// time in the simulator is shrunk to keep retries cheap on a real
/// clock.
fn config(device: &str) -> ClientConfig {
    let mut config = ClientConfig::paper_default(device);
    config.data = DataPlaneConfig::with_params(
        RedundancyConfig::new(5, 3, 3, 2).unwrap(),
        64 * 1024, // small θ: several segments per file
    );
    config.data.retry = RetryPolicy {
        max_attempts: 6,
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
    };
    config.lock.backoff_base = Duration::from_millis(10);
    config.lock.backoff_max = Duration::from_millis(80);
    config.lock.stale_after = Duration::from_secs(2);
    config.poll_interval = Duration::from_millis(50);
    config
}

fn client(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    folder: &Arc<MemFolder>,
    device: &str,
    seed: u64,
) -> UniDriveClient {
    UniDriveClient::new(
        Arc::clone(rt),
        clouds.clone(),
        Arc::clone(folder) as Arc<dyn SyncFolder>,
        config(device),
        SimRng::seed_from_u64(seed),
    )
}

/// Under chaos a whole sync round can fail (e.g. the lock quorum looks
/// unreachable); retry like the daemon would. Wall clock, so the pause
/// between rounds is short.
fn sync_until(c: &mut UniDriveClient, what: &str) -> SyncReport {
    for _ in 0..10 {
        match c.sync_once() {
            Ok(rep) => return rep,
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("{what} failed 10 sync rounds in a row");
}

fn endpoints(servers: &[MockS3]) -> Vec<S3Endpoint> {
    servers
        .iter()
        .enumerate()
        .map(|(i, s)| S3Endpoint::new(format!("s3-{i}"), s.addr(), "unidrive"))
        .collect()
}

/// Runs the full two-device workload against fresh servers and returns
/// the converged folder digest: for each file of the workload, the
/// bytes both devices ended up with (`None` = deleted everywhere).
fn run_workload(servers: &[MockS3], clouds: CloudSet, rt: &Arc<dyn Runtime>) -> Vec<Option<Vec<u8>>> {
    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(rt, &clouds, &folder_a, "device-a", 11);
    let mut b = client(rt, &clouds, &folder_b, "device-b", 12);

    // A creates both files; B pulls them.
    let big_v1 = content(600_000, 3);
    let note = content(5_000, 7);
    folder_a.write(FILES[0], &big_v1, 1).unwrap();
    folder_a.write(FILES[1], &note, 1).unwrap();
    let up = sync_until(&mut a, "A commit");
    assert_eq!(up.uploaded.len(), 2, "A uploaded {:?}", up.uploaded);
    let down = sync_until(&mut b, "B fetch");
    assert_eq!(down.downloaded.len(), 2, "B downloaded {:?}", down.downloaded);
    assert_eq!(folder_b.read(FILES[0]).unwrap().to_vec(), big_v1);

    // B edits the large file (delta path); A picks up the edit.
    let big_v2 = content(480_000, 9);
    folder_b.write(FILES[0], &big_v2, 2).unwrap();
    sync_until(&mut b, "B edit commit");
    let rep = sync_until(&mut a, "A pull edit");
    assert_eq!(rep.downloaded, vec![FILES[0].to_string()]);
    assert_eq!(folder_a.read(FILES[0]).unwrap().to_vec(), big_v2);

    // A deletes the note; B observes the deletion.
    folder_a.remove(FILES[1]).unwrap();
    sync_until(&mut a, "A delete commit");
    let rep = sync_until(&mut b, "B pull delete");
    assert_eq!(rep.deleted_locally, vec![FILES[1].to_string()]);

    // The servers really were on the data path.
    let served: u64 = servers.iter().map(|s| s.requests()).sum();
    assert!(served > 0, "no HTTP requests reached the mock servers");

    // Convergence: both devices agree byte-for-byte on every file.
    let digest: Vec<Option<Vec<u8>>> = FILES
        .iter()
        .map(|f| folder_a.read(f).ok().map(|b| b.to_vec()))
        .collect();
    let digest_b: Vec<Option<Vec<u8>>> = FILES
        .iter()
        .map(|f| folder_b.read(f).ok().map(|b| b.to_vec()))
        .collect();
    assert_eq!(digest, digest_b, "devices diverged");
    digest
}

fn start_servers() -> Vec<MockS3> {
    (0..CLOUDS)
        .map(|_| MockS3::start().expect("bind mock server"))
        .collect()
}

#[test]
fn two_devices_round_trip_through_http_backend() {
    let servers = start_servers();
    let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
    let clouds = s3_cloud_set(&rt, &endpoints(&servers), &config("probe").data);
    let digest = run_workload(&servers, clouds, &rt);
    assert!(digest[0].is_some(), "edited file must survive");
    assert!(digest[1].is_none(), "deleted file must stay deleted");
}

#[test]
fn chaos_run_converges_to_the_clean_run_outcome() {
    // Phase 1: healthy servers, production cloud-set constructor.
    let clean_servers = start_servers();
    let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
    let clean_clouds = s3_cloud_set(&rt, &endpoints(&clean_servers), &config("probe").data);
    let clean = run_workload(&clean_servers, clean_clouds, &rt);

    // Phase 2: fresh servers, same workload, but every cloud tears a
    // slice of its uploads (client-edge chaos) and the servers answer
    // bursts of requests with 503s and throttles (server-edge chaos).
    let chaos_servers = start_servers();
    let rt2: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
    let mut chaos_handles = Vec::new();
    let members: Vec<Arc<dyn CloudStore>> = endpoints(&chaos_servers)
        .iter()
        .enumerate()
        .map(|(i, ep)| {
            let base = Arc::new(S3Cloud::connect(&rt2, ep, 5)) as Arc<dyn CloudStore>;
            let plan = FaultPlan::with_events(
                0x5eed_u64 * 31 + i as u64,
                vec![FaultEvent::always(
                    format!("s3-{i}"),
                    FaultKind::TornUpload { probability: 0.10 },
                )],
            );
            let built = CloudBuilder::new(&rt2, base)
                .chaos(&plan, &format!("s3-{i}"))
                .build();
            chaos_handles.push(built.chaos.expect("chaos stage configured"));
            built.store
        })
        .collect();
    for (i, s) in chaos_servers.iter().enumerate() {
        // Staggered so every retry budget sees a different burst shape.
        s.fail_next(503, 2 + i as u32 % 3);
        s.throttle_next(1 + i as u32 % 2);
    }
    let chaos = run_workload(&chaos_servers, CloudSet::new(members), &rt2);

    // The chaos actually bit: faults fired at both edges...
    let torn: u64 = chaos_handles.iter().map(|c| c.injected_faults()).sum();
    let served_faults: u64 = chaos_servers.iter().map(|s| s.faults_injected()).sum();
    assert!(torn > 0, "no torn uploads injected; workload too small");
    assert!(served_faults > 0, "server-side 503/throttle never fired");

    // ...and the outcome is byte-identical to the healthy run: no lost
    // acks, no half-applied edits, no resurrected deletes.
    assert_eq!(clean, chaos, "chaos run diverged from clean run");
}

#[test]
fn server_injected_faults_are_absorbed_by_the_retry_plane() {
    let servers = start_servers();
    let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
    let clouds = s3_cloud_set(&rt, &endpoints(&servers), &config("probe").data);

    let folder_a = MemFolder::new();
    let folder_b = MemFolder::new();
    let mut a = client(&rt, &clouds, &folder_a, "device-a", 21);
    let mut b = client(&rt, &clouds, &folder_b, "device-b", 22);

    let data = content(200_000, 5);
    folder_a.write("x.bin", &data, 1).unwrap();
    for s in &servers {
        s.fail_next(500, 1);
        s.fail_next(503, 1);
        s.throttle_next(1);
    }
    sync_until(&mut a, "A commit through faults");
    let rep = sync_until(&mut b, "B fetch through faults");
    assert_eq!(rep.downloaded, vec!["x.bin".to_string()]);
    assert_eq!(folder_b.read("x.bin").unwrap().to_vec(), data);
    let injected: u64 = servers.iter().map(|s| s.faults_injected()).sum();
    assert_eq!(injected, 15, "every armed fault fired exactly once");
}
