//! Fleet determinism and chaos-soak properties.
//!
//! The load-bearing guarantees of the fleet harness: a run's metrics
//! JSON is a pure function of `(seed, population config)` — identical
//! across repeat runs, shard counts, and thread counts — and the
//! chaos-soak invariants hold at population scale.

use std::time::Duration;

use unidrive_fleet::{default_chaos_plan, FleetConfig, FleetSim};

/// A population small enough for test time, large enough to exercise
/// contention, churn, faults, and the drain phase.
fn test_config(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::quick(seed);
    cfg.devices = 2_000;
    cfg.horizon = Duration::from_secs(300);
    cfg.hot_folders = 20;
    cfg.fault_plan = default_chaos_plan(seed, 300);
    cfg
}

#[test]
fn same_seed_same_bytes() {
    let a = FleetSim::new(test_config(42)).run().to_json();
    let b = FleetSim::new(test_config(42)).run().to_json();
    assert_eq!(a, b, "same seed must reproduce byte-identical JSON");
}

#[test]
fn different_seed_different_run() {
    let a = FleetSim::new(test_config(42)).run().to_json();
    let b = FleetSim::new(test_config(43)).run().to_json();
    assert_ne!(a, b, "the seed must actually drive the run");
}

#[test]
fn metrics_are_shard_count_invariant() {
    let reference = FleetSim::new(test_config(7)).run().to_json();
    for shards in [1usize, 4, 16] {
        let mut cfg = test_config(7);
        cfg.shards = shards;
        let got = FleetSim::new(cfg).run().to_json();
        assert_eq!(got, reference, "shards = {shards}");
    }
}

#[test]
fn metrics_are_thread_count_invariant() {
    let mut single = test_config(9);
    single.threads = 1;
    let reference = FleetSim::new(single).run().to_json();
    let mut wide = test_config(9);
    wide.threads = 8;
    let got = FleetSim::new(wide).run().to_json();
    assert_eq!(got, reference);
}

#[test]
fn chaos_soak_invariants_hold_at_population_scale() {
    let m = FleetSim::new(test_config(1)).run();
    assert!(
        m.all_pass(),
        "chaos invariants failed: {:?}",
        m.invariants
            .iter()
            .filter(|i| !i.pass)
            .collect::<Vec<_>>()
    );
    // The run must have actually exercised the interesting paths.
    assert!(m.counter("sessions.started") > 1_000, "arrivals happened");
    assert!(
        m.counter("lock.contended_rounds") > 0,
        "hot folders contended"
    );
    assert!(
        m.counter("fault.burst_slowdowns") + m.counter("fault.torn_repairs") > 0,
        "chaos plan touched transfers"
    );
    assert!(m.counter("folders.members") > 0, "hot membership formed");
    assert_eq!(
        m.counter("sessions.started"),
        m.counter("sessions.completed"),
        "no session lost"
    );
}

#[test]
fn quick_preset_json_has_schema_and_headline_fields() {
    let mut cfg = test_config(3);
    cfg.devices = 500;
    let json = FleetSim::new(cfg).run().to_json();
    for needle in [
        "\"bench_fleet\": \"unidrive/v1\"",
        "\"sync_latency_ns\"",
        "\"lock_wait_ns\"",
        "\"lock_rounds\"",
        "\"qps_peak\"",
        "\"invariants\"",
        "\"p99\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
