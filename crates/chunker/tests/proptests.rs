//! Randomized property tests of the content-defined chunker: the
//! invariants UniDrive's deduplication and update-traffic claims rest
//! on. Driven by the workspace's deterministic `SimRng` (seeded, so
//! failures reproduce exactly) instead of an external property-testing
//! crate.

use unidrive_chunker::{segment_bytes, ChunkerConfig};
use unidrive_sim::SimRng;

fn config() -> ChunkerConfig {
    ChunkerConfig::new(4096)
}

fn random_vec(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Segments tile the input exactly: contiguous, complete, in order.
#[test]
fn segments_tile_input() {
    let mut rng = SimRng::seed_from_u64(0xC401);
    for _ in 0..64 {
        let data = random_vec(&mut rng, 60_000);
        let segs = segment_bytes(&data, &config());
        let mut pos = 0usize;
        for s in &segs {
            assert_eq!(s.offset, pos);
            pos += s.len;
        }
        assert_eq!(pos, data.len());
    }
}

/// All segments except the final one respect the (0.5θ, 1.5θ] size
/// bounds; the final one only the upper bound.
#[test]
fn segment_sizes_bounded() {
    let mut rng = SimRng::seed_from_u64(0xC402);
    let cfg = config();
    for _ in 0..64 {
        let data = random_vec(&mut rng, 60_000);
        let segs = segment_bytes(&data, &cfg);
        for (i, s) in segs.iter().enumerate() {
            assert!(s.len <= cfg.max_size());
            if i + 1 < segs.len() {
                assert!(s.len >= cfg.min_size());
            }
        }
    }
}

/// Segmentation is a pure function of the content.
#[test]
fn segmentation_is_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xC403);
    for _ in 0..32 {
        let data = random_vec(&mut rng, 30_000);
        assert_eq!(
            segment_bytes(&data, &config()),
            segment_bytes(&data, &config())
        );
    }
}

/// Digests identify content: identical slices <=> identical digests
/// within one run (no accidental collisions on random data).
#[test]
fn digests_match_content() {
    let mut rng = SimRng::seed_from_u64(0xC404);
    for _ in 0..32 {
        let data = random_vec(&mut rng, 30_000);
        let segs = segment_bytes(&data, &config());
        for s in &segs {
            let expect = unidrive_crypto::Sha1::digest(&data[s.range()]);
            assert_eq!(s.digest, expect);
        }
    }
}

/// Appending data never changes the digests of segments that end well
/// before the appended region (the dedup-stability property).
#[test]
fn appends_preserve_early_segments() {
    let mut rng = SimRng::seed_from_u64(0xC405);
    let cfg = config();
    for _ in 0..32 {
        let base_len = 20_000 + rng.below(20_000) as usize;
        let data: Vec<u8> = (0..base_len).map(|_| rng.next_u64() as u8).collect();
        let tail_len = 1 + rng.below(4_999) as usize;
        let tail: Vec<u8> = (0..tail_len).map(|_| rng.next_u64() as u8).collect();
        let before = segment_bytes(&data, &cfg);
        let mut extended = data.clone();
        extended.extend_from_slice(&tail);
        let after = segment_bytes(&extended, &cfg);
        // Every 'before' segment except possibly the last two must
        // reappear verbatim (the tail can merge into the final segment,
        // and the forced max-size cut before it may shift once).
        if before.len() > 2 {
            for (b, a) in before[..before.len() - 2].iter().zip(&after) {
                assert_eq!(b, a);
            }
        }
    }
}
