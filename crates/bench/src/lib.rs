//! # unidrive-bench
//!
//! Harness that regenerates every table and figure of the UniDrive
//! paper's evaluation (§3.2 measurement study, §7 experiments, §7.3
//! trial). Each `src/bin/*` binary prints one table/figure; see
//! `EXPERIMENTS.md` at the repository root for the index and recorded
//! outcomes, and `benches/` for Criterion micro-benchmarks of the
//! primitives.
//!
//! All experiments run under deterministic virtual time, so a "month" of
//! half-hourly probes takes seconds of wall time; run the binaries with
//! `--release` (debug-mode Reed-Solomon is ~20× slower).

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::{
    IntuitiveMultiCloud, MultiCloudBenchmark, SingleCloudClient, UniDriveTransfer,
};
use unidrive_cloud::{CloudSet, SimCloud};
use unidrive_core::DataPlaneConfig;
use unidrive_erasure::RedundancyConfig;
use unidrive_sim::SimRuntime;
use unidrive_workload::{build_multicloud, Provider, Site};

/// Evaluation parameters shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Repetitions per measured point.
    pub repeats: usize,
    /// The "32 MB" micro-benchmark file size.
    pub large_file: usize,
    /// The batch-sync workload: `(count, size)` (paper: 100 × 1 MB).
    pub batch: (usize, usize),
    /// Segment size θ.
    pub theta: usize,
}

impl ExperimentScale {
    /// Paper-faithful sizes (slow in debug builds; use `--release`).
    pub fn paper() -> Self {
        ExperimentScale {
            repeats: 5,
            large_file: 32 * 1024 * 1024,
            batch: (100, 1024 * 1024),
            theta: 4 * 1024 * 1024,
        }
    }

    /// Reduced sizes preserving every ratio the figures depend on; used
    /// when an experiment binary is invoked with `quick`.
    pub fn quick() -> Self {
        ExperimentScale {
            repeats: 3,
            large_file: 8 * 1024 * 1024,
            batch: (30, 512 * 1024),
            theta: 1024 * 1024,
        }
    }

    /// Parses the scale from the process arguments (`quick` selects the
    /// reduced scale; default is the paper scale).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "quick") {
            ExperimentScale::quick()
        } else {
            ExperimentScale::paper()
        }
    }
}

/// The four systems under comparison at one site (paper §7.1).
pub struct Systems {
    /// UniDrive proper.
    pub unidrive: UniDriveTransfer,
    /// RACS/DepSky-like benchmark.
    pub benchmark: MultiCloudBenchmark,
    /// Parts-to-native-apps baseline.
    pub intuitive: IntuitiveMultiCloud,
    /// One native single-cloud client per provider.
    pub natives: Vec<(Provider, SingleCloudClient)>,
    /// The cloud handles (outage/traffic control).
    pub handles: Vec<Arc<SimCloud>>,
    /// The underlying cloud set.
    pub clouds: CloudSet,
}

impl std::fmt::Debug for Systems {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Systems")
            .field("clouds", &self.clouds)
            .finish()
    }
}

/// Builds all comparison systems over the same five simulated clouds at
/// `site`, with the paper's parameters (K_r = 3, K_s = 2, k = 3, ≤ 5
/// connections per cloud).
pub fn systems_at(sim: &Arc<SimRuntime>, site: Site, theta: usize) -> Systems {
    let (clouds, handles) = build_multicloud(sim, site);
    let redundancy = RedundancyConfig::new(5, 3, 3, 2).expect("paper parameters");
    let config = DataPlaneConfig {
        connections_per_cloud: 5,
        ..DataPlaneConfig::with_params(redundancy, theta)
    };
    let rt = sim.clone().as_runtime();
    let unidrive = UniDriveTransfer::new(rt.clone(), clouds.clone(), config);
    let benchmark =
        MultiCloudBenchmark::new(rt.clone(), clouds.clone(), redundancy, 5).with_chunk_size(theta);
    let intuitive = IntuitiveMultiCloud::new(rt.clone(), &clouds, 5);
    let natives = Provider::ALL
        .iter()
        .zip(clouds.ids())
        .map(|(&p, id)| {
            (
                p,
                SingleCloudClient::new(rt.clone(), Arc::clone(clouds.get(id)), 5),
            )
        })
        .collect();
    Systems {
        unidrive,
        benchmark,
        intuitive,
        natives,
        handles,
        clouds,
    }
}

/// Formats a duration in seconds with two decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats a sample as `mean (min-max)`.
pub fn fmt_stats(values: &[f64]) -> String {
    match unidrive_workload::Summary::of(values) {
        Some(s) => format!("{:.2} ({:.2}-{:.2})", s.mean, s.min, s.max),
        None => "n/a".to_owned(),
    }
}

/// Throughput in Mbit/s for `bytes` over `d`.
pub fn mbps(bytes: usize, d: Duration) -> f64 {
    bytes as f64 * 8.0 / 1e6 / d.as_secs_f64().max(1e-9)
}
