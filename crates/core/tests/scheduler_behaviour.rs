//! Behavioural tests of the data-plane schedulers: over-provisioning
//! extent, the two-phase principle, download gating under probing, and
//! deferred-upload retry through the client's pass loop.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use unidrive_util::bytes::Bytes;
use unidrive_cloud::{CloudSet, CloudStore, SimCloud, SimCloudConfig};
use unidrive_core::{DataPlane, DataPlaneConfig, SegmentFetch, UploadRequest};
use unidrive_erasure::RedundancyConfig;
use unidrive_meta::{BlockRef, SegmentId};
use unidrive_sim::SimRuntime;

struct Rig {
    sim: Arc<SimRuntime>,
    handles: Vec<Arc<SimCloud>>,
    plane: DataPlane,
}

fn rig(seed: u64, rates: &[f64], tweak: impl Fn(&mut DataPlaneConfig)) -> Rig {
    let sim = SimRuntime::new(seed);
    let mut handles = Vec::new();
    let clouds = CloudSet::new(
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let c = Arc::new(SimCloud::new(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(r, r * 4.0),
                ));
                handles.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect(),
    );
    let mut config = DataPlaneConfig::with_params(
        RedundancyConfig::new(rates.len(), 3, 3, 2).unwrap(),
        64 * 1024,
    );
    tweak(&mut config);
    let plane = DataPlane::new(sim.clone().as_runtime(), clouds, config);
    Rig { sim, handles, plane }
}

fn content(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8).wrapping_add(tag)).collect::<Vec<u8>>())
}

/// The segments `(id, len)` and placed blocks of one uploaded file.
type UploadOutcome = (Vec<(SegmentId, u64)>, Vec<(SegmentId, BlockRef)>);

fn upload_one(rig: &Rig, tag: u8) -> UploadOutcome {
    let data = content(200_000, tag);
    let (report, segs) = rig.plane.upload_files(
        vec![UploadRequest {
            path: format!("f{tag}"),
            data,
        }],
        &HashSet::new(),
    );
    assert!(report.all_available());
    (segs[0].segments.clone(), report.blocks)
}

#[test]
fn overprovisioning_stops_at_security_cap() {
    // One extremely fast cloud cannot exceed cap blocks per segment no
    // matter how idle it is.
    let r = rig(1, &[100e6, 0.1e6, 0.1e6, 0.1e6, 0.1e6], |_| {});
    let (segs, blocks) = upload_one(&r, 1);
    let cap = 2; // ⌈3/(2−1)⌉ − 1
    for (id, _) in &segs {
        let on_fast = blocks
            .iter()
            .filter(|(s, b)| s == id && b.cloud == 0)
            .count();
        assert!(on_fast <= cap, "segment {id}: {on_fast} blocks on cloud 0");
    }
}

#[test]
fn no_overprovisioning_means_exactly_normal_blocks() {
    let r = rig(2, &[10e6, 1e6, 1e6, 1e6, 0.5e6], |c| {
        c.overprovisioning = false;
    });
    let (segs, blocks) = upload_one(&r, 2);
    // fair share 1 × 5 clouds = exactly 5 blocks per segment.
    for (id, _) in &segs {
        let total = blocks.iter().filter(|(s, _)| s == id).count();
        assert_eq!(total, 5, "segment {id}");
    }
}

#[test]
fn equal_clouds_get_even_normal_distribution() {
    let r = rig(3, &[2e6; 5], |c| {
        c.overprovisioning = false;
    });
    let (_, blocks) = upload_one(&r, 3);
    let mut per_cloud: HashMap<u16, usize> = HashMap::new();
    for (_, b) in &blocks {
        *per_cloud.entry(b.cloud).or_default() += 1;
    }
    let counts: Vec<usize> = (0..5u16).map(|c| per_cloud[&c]).collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
}

#[test]
fn download_prefers_fast_clouds_once_probed() {
    // After an upload (which warms the probe), the dominant share of
    // downloaded blocks must come from the fast clouds.
    let r = rig(4, &[8e6, 8e6, 8e6, 0.2e6, 0.2e6], |_| {});
    let (segs, blocks) = upload_one(&r, 4);
    let mut by_seg: HashMap<SegmentId, Vec<BlockRef>> = HashMap::new();
    for (id, b) in &blocks {
        by_seg.entry(*id).or_default().push(*b);
    }
    let traffic_before: Vec<u64> = r
        .handles
        .iter()
        .map(|h| h.traffic().downloaded_bytes)
        .collect();
    let fetches: Vec<SegmentFetch> = segs
        .iter()
        .map(|(id, len)| SegmentFetch {
            id: *id,
            len: *len,
            blocks: by_seg[id].clone(),
        })
        .collect();
    let report = r.plane.download_segments(fetches);
    assert!(report.is_complete());
    let served: Vec<u64> = r
        .handles
        .iter()
        .zip(&traffic_before)
        .map(|(h, &before)| h.traffic().downloaded_bytes - before)
        .collect();
    let fast: u64 = served[..3].iter().sum();
    let slow: u64 = served[3..].iter().sum();
    assert!(
        fast > 5 * slow.max(1),
        "fast clouds should dominate downloads: {served:?}"
    );
}

#[test]
fn download_timeline_orders_segments() {
    let r = rig(5, &[2e6; 5], |_| {});
    let data = content(400_000, 5); // several 64 KB-θ segments
    let (report, segs) = r.plane.upload_files(
        vec![UploadRequest {
            path: "multi".into(),
            data,
        }],
        &HashSet::new(),
    );
    let mut by_seg: HashMap<SegmentId, Vec<BlockRef>> = HashMap::new();
    for (id, b) in &report.blocks {
        by_seg.entry(*id).or_default().push(*b);
    }
    let fetches: Vec<SegmentFetch> = segs[0]
        .segments
        .iter()
        .map(|(id, len)| SegmentFetch {
            id: *id,
            len: *len,
            blocks: by_seg[id].clone(),
        })
        .collect();
    let n = fetches.len();
    let dl = r.plane.download_segments(fetches);
    assert!(dl.is_complete());
    assert_eq!(dl.timeline.len(), n);
    // Timestamps are non-decreasing.
    for w in dl.timeline.windows(2) {
        assert!(w[0].0 <= w[1].0);
    }
}

#[test]
fn upload_timeline_matches_file_order_under_two_phase() {
    let r = rig(6, &[2e6; 5], |_| {});
    let requests: Vec<UploadRequest> = (0..6)
        .map(|i| UploadRequest {
            path: format!("f{i}"),
            data: content(150_000, i as u8 + 1),
        })
        .collect();
    let (report, _) = r.plane.upload_files(requests, &HashSet::new());
    assert!(report.all_available());
    assert_eq!(report.timeline.len(), 6);
    // With equal clouds and equal sizes, availability-first means files
    // become available in request order.
    let order: Vec<usize> = report.timeline.iter().map(|(_, f)| *f).collect();
    assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn available_duration_is_before_total_duration() {
    let r = rig(7, &[4e6, 4e6, 4e6, 0.2e6, 0.2e6], |_| {});
    let data = content(300_000, 9);
    let (report, _) = r.plane.upload_files(
        vec![UploadRequest {
            path: "f".into(),
            data,
        }],
        &HashSet::new(),
    );
    let avail = report.available_duration().expect("available");
    let total = report.total_duration();
    assert!(
        avail < total,
        "availability ({avail:?}) must precede the reliability tail ({total:?})"
    );
    let _ = r.sim.clone();
}
