//! # unidrive-fleet
//!
//! Fleet-scale deterministic simulation: 100k+ lightweight device
//! actors syncing through five consumer clouds, with chaos plans,
//! Zipf-hot shared folders, and per-cloud QPS shaping.
//!
//! The [`SimRuntime`](unidrive_sim::SimRuntime) used by the protocol
//! tests runs one OS thread per actor — perfect for exercising the
//! *real* `QuorumLock`/`SyncEngine` code, hopeless for populations.
//! This crate trades code-path fidelity for scale: devices are
//! analytic state machines driven by the same derived-RNG streams,
//! sharded across a [`WorkerPool`](unidrive_util::WorkerPool), with a
//! deterministic cross-shard merge so a run's metrics are a pure
//! function of `(seed, config)` — byte-identical at any shard or
//! thread count.
//!
//! * [`FleetConfig`] — population, horizon, QPS ceilings, lock
//!   parameters, and a [`FaultPlan`](unidrive_cloud::FaultPlan)
//!   chaos schedule ([`default_chaos_plan`] exercises every
//!   [`FaultKind`](unidrive_cloud::FaultKind)).
//! * [`FleetSim`] — the conservative parallel discrete-event engine
//!   (windowed lookahead execution, lazy device materialization,
//!   upload-then-commit sessions against quorum-locked hot folders).
//! * [`FleetMetrics`] — counters, latency/wait/round histograms,
//!   per-cloud accounting, chaos-soak invariants, and the
//!   deterministic `BENCH_fleet.json` serialization.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod metrics;

pub use config::{default_chaos_plan, FleetConfig, FleetLockParams};
pub use engine::{FleetSim, LOOKAHEAD_NS};
pub use metrics::{CloudRow, FleetMetrics, Invariant};
