//! Deterministic pseudo-random number generation for the simulator.
//!
//! The engine needs its own RNG (rather than the `rand` crate) so that
//! virtual-time runs remain bit-for-bit reproducible regardless of
//! dependency upgrades. We implement SplitMix64 (for seeding) and
//! xoshiro256** (the workhorse generator), both public-domain algorithms
//! by Blackman and Vigna.

/// SplitMix64: a tiny, high-quality generator used to expand a single
/// `u64` seed into the xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: fast, statistically strong 64-bit PRNG with 256 bits of
/// state. Used for every stochastic decision inside the simulator
/// (bandwidth fluctuation, latency jitter, failure injection).
///
/// # Examples
///
/// ```
/// use unidrive_sim::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        SimRng { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's bounded-rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Unbiased multiply-shift with rejection.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Sample from a standard normal distribution (Box-Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Sample from a lognormal distribution with the given parameters of
    /// the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Derive an independent child generator; handy for giving each link
    /// or cloud its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Derives a generator from a seed and a label, so that components
    /// addressed by name (a cloud, a device, a fault plan) get stable
    /// independent streams without threading a parent RNG around: the
    /// same `(seed, label)` always yields the same stream.
    pub fn derive(seed: u64, label: &str) -> SimRng {
        // FNV-1a over the label, mixed into the seed through SplitMix64.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = SplitMix64::new(seed ^ h);
        SimRng::seed_from_u64(sm.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ almost everywhere");
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::seed_from_u64(4);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::seed_from_u64(9);
        let mut child = a.fork();
        // The child must not simply replay the parent.
        let same = (0..64).filter(|_| a.next_u64() == child.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_is_stable_per_label_and_independent_across_labels() {
        let mut a = SimRng::derive(7, "cloud0/device-a");
        let mut b = SimRng::derive(7, "cloud0/device-a");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::derive(7, "cloud0/device-b");
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "labels should yield distinct streams");
    }
}
