//! One conformance suite, four backends.
//!
//! `cloud_contract_tests!` (see `unidrive_cloud::contract`) expands the
//! same behavioral checks against every [`CloudStore`] implementation
//! the workspace ships: the checks are identical, only the *driver* —
//! how a fresh store is built and torn down — differs per backend.
//! A backend that needs special semantics gets no carve-outs here;
//! passing this file is what "implements `CloudStore`" means.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use unidrive_cloud::{
    cloud_contract_tests, CloudStore, LocalDirCloud, MemCloud, MockS3, S3Cloud, S3Endpoint,
    SimCloud, SimCloudConfig,
};
use unidrive_sim::{RealRuntime, Runtime, SimRuntime};

/// Instantaneous in-memory reference backend.
mod mem {
    use super::*;

    cloud_contract_tests!(|check: fn(&dyn CloudStore)| {
        check(&MemCloud::new("mem"));
    });
}

/// Real bytes on disk, each check in its own scratch directory.
mod local {
    use super::*;

    static NEXT_DIR: AtomicU32 = AtomicU32::new(0);

    cloud_contract_tests!(|check: fn(&dyn CloudStore)| {
        let dir = std::env::temp_dir().join(format!(
            "unidrive-contract-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        let cloud = LocalDirCloud::create("local", &dir).expect("scratch dir");
        check(&cloud);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// The simulated-network backend under a deterministic virtual clock.
mod sim {
    use super::*;

    cloud_contract_tests!(|check: fn(&dyn CloudStore)| {
        let sim = SimRuntime::new(0xc047ac7);
        let cloud = SimCloud::new(&sim, "sim", SimCloudConfig::steady(64e6, 64e6));
        check(&cloud);
    });
}

/// The HTTP backend, each check against its own in-process `MockS3`.
mod s3 {
    use super::*;

    cloud_contract_tests!(|check: fn(&dyn CloudStore)| {
        let server = MockS3::start().expect("bind mock server");
        // A one-key listing page forces every multi-entry directory in
        // the suite through the IsTruncated/NextContinuationToken chain.
        server.set_page_size(1);
        let rt: Arc<dyn Runtime> = Arc::new(RealRuntime::new());
        let endpoint = S3Endpoint::new("s3", server.addr(), "contract-bucket");
        let cloud = S3Cloud::connect(&rt, &endpoint, 2);
        check(&cloud);
    });
}
