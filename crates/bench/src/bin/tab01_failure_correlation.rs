//! **Table 1** — correlation between failed Web API requests among the
//! three US CCSs (§3.2): pairwise *negative* correlation, i.e. clouds
//! rarely degrade at the same time. Also reprints the §3.2 success-rate
//! text figures (≈99 % US↔US, ≈90 % from China, ≈95 % BaiduPCS).
//!
//! The mechanism in the simulation matches the paper's interpretation:
//! degradation windows are cloud-local and disjoint, so when one cloud
//! is failing the others are statistically healthier than average.

use std::sync::Arc;
use std::time::Duration;

use unidrive_baseline::SingleCloudClient;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{
    build_cloud, disjoint_degraded_windows, pearson, random_bytes, site_by_name, Provider,
    TextTable,
};

fn main() {
    let site = site_by_name("Princeton").expect("site exists");
    let horizon = Duration::from_secs(14 * 86_400);
    let probes = 1_000u64;
    let data = random_bytes(1024 * 1024, 5);

    // One shared world: the three clouds take turns being degraded.
    let sim = SimRuntime::new(77);
    let windows = disjoint_degraded_windows(horizon, 3, 0.30, 9);
    let clouds: Vec<(Provider, std::sync::Arc<unidrive_cloud::SimCloud>)> = Provider::US
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let cloud = build_cloud(&sim, site, p);
            cloud.set_degraded_windows(windows[i].clone());
            (p, cloud)
        })
        .collect();

    // Probe all three back-to-back with raw Web API requests (the paper
    // counts per-request outcomes, before client retries).
    let mut fails: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let step = horizon.as_secs() / probes;
    for probe in 0..probes {
        for (i, (_, cloud)) in clouds.iter().enumerate() {
            use unidrive_cloud::CloudStore;
            let failed = cloud.upload(&format!("p{probe}"), data.clone()).is_err();
            fails[i].push(if failed { 1.0 } else { 0.0 });
        }
        sim.sleep(Duration::from_secs(step));
    }

    println!("Table 1: correlation of failed requests among the US CCSs (uploads)\n");
    let mut table = TextTable::new(&["", "Dropbox", "OneDrive", "GoogleDrive"]);
    for a in 0..3 {
        let mut cells = vec![clouds[a].0.name().to_owned()];
        for b in 0..3 {
            if a == b {
                cells.push("-".into());
            } else {
                let r = pearson(&fails[a], &fails[b]).unwrap_or(f64::NAN);
                cells.push(format!("{r:+.3}"));
            }
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!("(paper reports values between -0.12 and -0.97: negative throughout)\n");

    // Success-rate text figures from §3.2.
    println!("API success rates (fresh worlds, no degraded windows):");
    for (from, provider, label) in [
        ("Princeton", Provider::Dropbox, "US -> US cloud (paper ~99%)"),
        ("Beijing", Provider::Dropbox, "CN -> US cloud (paper ~90%)"),
        ("London", Provider::BaiduPcs, "EU -> BaiduPCS (paper ~95%)"),
    ] {
        let site = site_by_name(from).expect("site");
        let sim = SimRuntime::new(500 + from.len() as u64);
        let cloud = build_cloud(&sim, site, provider);
        let client = SingleCloudClient::new(sim.clone().as_runtime(), Arc::clone(&cloud) as _, 1);
        let small = random_bytes(256 * 1024, 9);
        for i in 0..400 {
            let _ = client.upload(&format!("s{i}"), small.clone());
            sim.sleep(Duration::from_secs(120));
        }
        let t = cloud.traffic();
        println!(
            "  {from:10} -> {:12} {:5.1}%   ({label})",
            provider.name(),
            100.0 * t.success_rate()
        );
    }
}
