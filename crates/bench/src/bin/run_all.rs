//! Convenience runner: executes every experiment binary in sequence
//! (with whatever scale argument was passed through) and prints each
//! one's output with a banner. Useful for regenerating EXPERIMENTS.md.
//!
//! `--metrics-out <path>` / `--trace-out <path>` are treated as base
//! paths: each experiment writes to its own derived file (the
//! experiment name is inserted before the extension, e.g.
//! `out.json` → `out.fig11_batch_sync.json`), so the exports don't
//! clobber each other.
//!
//! ```sh
//! cargo run --release -p unidrive-bench --bin run_all quick
//! ```

use std::process::Command;

/// `out.json` + `fig11_batch_sync` → `out.fig11_batch_sync.json`.
fn derive_path(base: &str, name: &str) -> String {
    match base.rfind('.') {
        // Only treat a dot in the final component as an extension.
        Some(pos) if !base[pos..].contains('/') => {
            format!("{}.{name}{}", &base[..pos], &base[pos..])
        }
        _ => format!("{base}.{name}"),
    }
}

const EXPERIMENTS: [&str; 20] = [
    "fig01_spatial",
    "fig02_filesize_throughput",
    "fig03_temporal",
    "fig04_failure_rate",
    "tab01_failure_correlation",
    "fig08_micro",
    "fig09_sizes",
    "fig10_hourly",
    "fig11_batch_sync",
    "fig12_cumulative",
    "tab02_variance",
    "tab03_overhead",
    "fig13_delta_sync",
    "fig14_reliability",
    "fig15_trial_throughput",
    "fig16_trial_daily",
    "ablations",
    "chaos_soak",
    "bench_fleet",
    "bench_oplog",
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Pull the output flags out of the passthrough; their paths become
    // per-experiment bases.
    let mut passthrough = Vec::new();
    let mut metrics_base = None;
    let mut trace_base = None;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics-out" {
            metrics_base = it.next();
        } else if arg == "--trace-out" {
            trace_base = it.next();
        } else {
            passthrough.push(arg);
        }
    }
    let this_exe = std::env::current_exe().expect("own path");
    let bin_dir = this_exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================\n");
        let mut args = passthrough.clone();
        if let Some(base) = &metrics_base {
            args.push("--metrics-out".into());
            args.push(derive_path(base, name));
        }
        if let Some(base) = &trace_base {
            args.push("--trace-out".into());
            args.push(derive_path(base, name));
        }
        let status = Command::new(bin_dir.join(name)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to start: {e} (build with `cargo build --release -p unidrive-bench --bins` first)");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::derive_path;

    #[test]
    fn derive_path_inserts_name_before_extension() {
        assert_eq!(derive_path("out.json", "fig11"), "out.fig11.json");
        assert_eq!(derive_path("a/b/out.csv", "tab03"), "a/b/out.tab03.csv");
        assert_eq!(derive_path("noext", "fig11"), "noext.fig11");
        // A dot in a directory name is not an extension.
        assert_eq!(derive_path("a.b/out", "fig11"), "a.b/out.fig11");
    }
}
