//! **Ablations A1-A5** — design-choice studies for the mechanisms
//! DESIGN.md calls out: over-provisioning, in-channel probing, the
//! two-phase batch principle, single-image metadata, and quorum-lock
//! contention.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_bench::ExperimentScale;
use unidrive_cloud::{CloudSet, CloudStore};
use unidrive_core::{
    DataPlane, DataPlaneConfig, LockConfig, QuorumLock, SegmentFetch, UploadRequest,
};
use unidrive_erasure::RedundancyConfig;
use unidrive_meta::SegmentId;
use unidrive_sim::{spawn, Runtime, SimRng, SimRuntime};
use unidrive_workload::{build_multicloud, random_bytes, site_by_name, Summary};

fn plane_with(
    sim: &Arc<SimRuntime>,
    site: unidrive_workload::Site,
    theta: usize,
    tweak: impl Fn(&mut DataPlaneConfig),
) -> DataPlane {
    let (clouds, _) = build_multicloud(sim, site);
    let mut config = DataPlaneConfig {
        connections_per_cloud: 5,
        ..DataPlaneConfig::with_params(RedundancyConfig::new(5, 3, 3, 2).expect("valid"), theta)
    };
    tweak(&mut config);
    DataPlane::new(sim.clone().as_runtime(), clouds, config)
}

fn upload_avail_secs(plane: &DataPlane, data: &Bytes, tag: &str) -> Option<f64> {
    let (report, _) = plane.upload_files(
        vec![UploadRequest {
            path: tag.to_owned(),
            data: data.clone(),
        }],
        &HashSet::new(),
    );
    report.available_duration().map(|d| d.as_secs_f64())
}

fn main() {
    let scale = ExperimentScale::from_args();
    let site = site_by_name("Beijing").expect("site"); // extreme disparity within the top-3 clouds
    let size = scale.large_file / 2;
    let repeats = scale.repeats.max(3);

    // --- A1: over-provisioning on/off (upload availability time). ---
    {
        let mut on = Vec::new();
        let mut off = Vec::new();
        for rep in 0..repeats {
            let data = random_bytes(size, 2000 + rep as u64);
            for (flag, out) in [(true, &mut on), (false, &mut off)] {
                let sim = SimRuntime::new(2000 + rep as u64);
                let plane = plane_with(&sim, site, scale.theta, |c| {
                    c.overprovisioning = flag;
                });
                if let Some(secs) = upload_avail_secs(&plane, &data, "a1") {
                    out.push(secs);
                }
            }
        }
        let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean).unwrap_or(f64::NAN);
        println!(
            "A1 over-provisioning: upload availability {:.1}s with vs {:.1}s without ({:.2}x)",
            mean(&on),
            mean(&off),
            mean(&off) / mean(&on)
        );
    }

    // --- A2: in-channel probing on/off (download time). ---
    {
        let mut on = Vec::new();
        let mut off = Vec::new();
        for rep in 0..repeats {
            let data = random_bytes(size, 2100 + rep as u64);
            for (flag, out) in [(true, &mut on), (false, &mut off)] {
                let sim = SimRuntime::new(2100 + rep as u64);
                let plane = plane_with(&sim, site, scale.theta, |c| {
                    c.probing = flag;
                });
                let (report, segs) = plane.upload_files(
                    vec![UploadRequest {
                        path: "a2".into(),
                        data: data.clone(),
                    }],
                    &HashSet::new(),
                );
                if !report.all_available() {
                    continue;
                }
                let mut by_seg: std::collections::HashMap<SegmentId, Vec<_>> =
                    std::collections::HashMap::new();
                for (id, b) in &report.blocks {
                    by_seg.entry(*id).or_default().push(*b);
                }
                let fetches: Vec<SegmentFetch> = segs[0]
                    .segments
                    .iter()
                    .map(|(id, len)| SegmentFetch {
                        id: *id,
                        len: *len,
                        blocks: by_seg.get(id).cloned().unwrap_or_default(),
                    })
                    .collect();
                let dl = plane.download_segments(fetches);
                if dl.is_complete() {
                    out.push(dl.total_duration().as_secs_f64());
                }
            }
        }
        let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean).unwrap_or(f64::NAN);
        println!(
            "A2 in-channel probing: download {:.1}s with vs {:.1}s without ({:.2}x)",
            mean(&on),
            mean(&off),
            mean(&off) / mean(&on)
        );
    }

    // --- A3: two-phase batch principle on/off (batch availability). ---
    {
        let mut on = Vec::new();
        let mut off = Vec::new();
        for rep in 0..repeats {
            for (flag, out) in [(true, &mut on), (false, &mut off)] {
                let sim = SimRuntime::new(2200 + rep as u64);
                let plane = plane_with(&sim, site, scale.theta, |c| {
                    c.two_phase = flag;
                });
                let requests: Vec<UploadRequest> = (0..8)
                    .map(|i| UploadRequest {
                        path: format!("a3-{i}"),
                        data: random_bytes(size / 8, 2200 + rep as u64 * 10 + i),
                    })
                    .collect();
                let (report, _) = plane.upload_files(requests, &HashSet::new());
                if let Some(d) = report.available_duration() {
                    out.push(d.as_secs_f64());
                }
            }
        }
        let mean = |v: &[f64]| Summary::of(v).map(|s| s.mean).unwrap_or(f64::NAN);
        println!(
            "A3 two-phase batches: all-available {:.1}s with vs {:.1}s without ({:.2}x)",
            mean(&on),
            mean(&off),
            mean(&off) / mean(&on)
        );
    }

    // --- A4: single metadata image vs per-file tiny metadata (paper §4,
    //     footnote 2: 1024 tiny files cost ~19x the traffic of one blob).
    {
        let sim = SimRuntime::new(2300);
        let (clouds, handles) = build_multicloud(&sim, site);
        let cloud = clouds
            .try_get(unidrive_cloud::CloudId(0))
            .expect("build_multicloud returns a non-empty set");
        let t0 = sim.now();
        for i in 0..256 {
            cloud
                .upload(&format!("meta/tiny-{i:04}"), Bytes::from(vec![7u8; 100]))
                .ok();
        }
        let tiny_secs = (sim.now() - t0).as_secs_f64();
        let tiny_traffic = handles[0].traffic().uploaded_bytes;
        let t1 = sim.now();
        cloud
            .upload("meta/single", Bytes::from(vec![7u8; 256 * 100]))
            .ok();
        let single_secs = (sim.now() - t1).as_secs_f64();
        let single_traffic = handles[0].traffic().uploaded_bytes - tiny_traffic;
        println!(
            "A4 metadata granularity: 256 tiny files {tiny_secs:.1}s / {:.1} KB vs one image \
             {single_secs:.2}s / {:.1} KB ({:.0}x time, {:.1}x traffic)",
            tiny_traffic as f64 / 1024.0,
            single_traffic as f64 / 1024.0,
            tiny_secs / single_secs.max(1e-9),
            tiny_traffic as f64 / single_traffic.max(1) as f64
        );
    }

    // --- A5: quorum-lock contention (acquire latency vs device count). ---
    {
        for devices in [1usize, 2, 4, 8] {
            let sim = SimRuntime::new(2400 + devices as u64);
            let (clouds, _) = build_multicloud(&sim, site);
            let rt = sim.clone().as_runtime();
            let latencies: Arc<unidrive_util::sync::Mutex<Vec<f64>>> =
                Arc::new(unidrive_util::sync::Mutex::new(Vec::new()));
            let tasks: Vec<_> = (0..devices)
                .map(|d| {
                    let rt2 = rt.clone();
                    let sim2 = sim.clone();
                    let clouds = clouds.clone();
                    let latencies = Arc::clone(&latencies);
                    spawn(&rt, &format!("dev-{d}"), move || {
                        let lock = QuorumLock::new(
                            rt2.clone(),
                            clouds,
                            format!("dev-{d}"),
                            LockConfig::default(),
                            SimRng::seed_from_u64(2400 + d as u64),
                        );
                        for _ in 0..4 {
                            let t0 = sim2.now();
                            if let Ok(guard) = lock.acquire() {
                                latencies
                                    .lock()
                                    .push((sim2.now() - t0).as_secs_f64());
                                rt2.sleep(Duration::from_millis(500));
                                guard.release();
                            }
                            rt2.sleep(Duration::from_secs(1));
                        }
                    })
                })
                .collect();
            for t in tasks {
                t.join();
            }
            let l = latencies.lock();
            if let Some(s) = Summary::of(&l) {
                println!(
                    "A5 lock contention: {devices} devices -> acquire mean {:.2}s max {:.2}s \
                     ({} acquisitions, all succeeded)",
                    s.mean,
                    s.max,
                    l.len()
                );
            }
        }
    }
    let _ = CloudSet::new(vec![Arc::new(unidrive_cloud::MemCloud::new("x")) as Arc<dyn CloudStore>]);
}
