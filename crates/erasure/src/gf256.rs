//! Arithmetic in GF(2⁸), the finite field underlying Reed-Solomon coding.
//!
//! The field is GF(2)[x]/(x⁸ + x⁴ + x³ + x² + 1) (the 0x11D polynomial,
//! as in AES-agnostic RS implementations). Multiplication and inversion
//! go through log/exp tables computed at compile time, so there is no
//! runtime table-initialization state.

/// The irreducible polynomial (without the x⁸ term) defining the field.
pub const POLY: u16 = 0x1D;

const fn build_tables() -> ([u8; 256], [u8; 512]) {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        // Multiply x by the generator 2 in GF(256).
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    // Duplicate the exp table so exp[log a + log b] needs no modulo.
    let mut j = 255;
    while j < 510 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (log, exp)
}

const TABLES: ([u8; 256], [u8; 512]) = build_tables();
const LOG: [u8; 256] = TABLES.0;
const EXP: [u8; 512] = TABLES.1;

/// Adds two field elements (XOR; addition and subtraction coincide).
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize + 255 - LOG[b as usize] as usize) % 255]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Raises `a` to the power `e`.
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = LOG[a as usize] as u64 * e as u64;
    EXP[(l % 255) as usize]
}

/// `dst[i] ^= c * src[i]` for all `i` — the inner loop of encoding and
/// decoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let lc = LOG[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[lc + LOG[*s as usize] as usize];
        }
    }
}

/// `dst[i] = c * dst[i]` for all `i`.
pub fn scale_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let lc = LOG[c as usize] as usize;
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = EXP[lc + LOG[*d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // exp and log are mutual inverses on the nonzero elements.
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply + reduction, the definitional algorithm.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut r = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1D;
                }
                b >>= 1;
            }
            r
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
            assert_eq!(mul(a, 1), a);
            assert_eq!(add(a, a), 0);
        }
    }

    #[test]
    fn distributivity_spot_checks() {
        for a in [3u8, 87, 255] {
            for b in [5u8, 120, 254] {
                for c in [7u8, 99, 200] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [2u8, 3, 29, 255] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a={a} e={e}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn mul_add_slice_is_fused_multiply_xor() {
        let src = [1u8, 2, 3, 250];
        let mut dst = [9u8, 9, 9, 9];
        mul_add_slice(&mut dst, &src, 7);
        for i in 0..4 {
            assert_eq!(dst[i], add(9, mul(7, src[i])));
        }
    }

    #[test]
    fn scale_slice_by_zero_and_one() {
        let mut a = [5u8, 6, 7];
        scale_slice(&mut a, 1);
        assert_eq!(a, [5, 6, 7]);
        scale_slice(&mut a, 0);
        assert_eq!(a, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(5, 0);
    }
}
