//! Download scheduling (paper §6.2, "Dynamic Scheduling for Download").
//!
//! Any `k` blocks reconstruct a segment, normal or over-provisioned,
//! from whichever clouds. The dispatcher is pull-based: an idle
//! connection of a cloud takes the next block *that cloud can supply*
//! for the earliest unfinished segment — so faster clouds, whose
//! connections go idle more often, naturally contribute more blocks
//! (and over-provisioned blocks give them more to contribute). With
//! in-channel probing enabled, an idle fast cloud may additionally
//! duplicate a block that is in flight on a much slower cloud,
//! protecting the tail.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use unidrive_util::bytes::Bytes;
use unidrive_cloud::{CloudError, CloudId, CloudSet};
use unidrive_erasure::Codec;
use unidrive_meta::{block_path, BlockRef, SegmentId};
use unidrive_obs::{Obs, SpanGuard, SpanId};
use unidrive_sim::{Runtime, Time};

use crate::engine::{EngineParams, JobDesc, TransferEngine, TransferPolicy, WireOp};
use crate::plan::DataPlaneConfig;
use crate::probe::BandwidthProbe;

/// One segment to fetch: its identity, plaintext length, and known
/// block locations (from the metadata's segment pool).
#[derive(Debug, Clone)]
pub struct SegmentFetch {
    /// Content-addressed id.
    pub id: SegmentId,
    /// Plaintext length (needed to size the decode).
    pub len: u64,
    /// Known `<Block-ID, Cloud-ID>` locations.
    pub blocks: Vec<BlockRef>,
}

/// Error from a download batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownloadError {
    /// A segment could not gather `k` distinct blocks from reachable
    /// clouds — with fewer than `K_s` clouds reachable this is the
    /// *security property working as intended*; with at least `K_r` it
    /// is a genuine failure.
    NotEnoughBlocks {
        /// The segment that failed.
        segment: SegmentId,
        /// Blocks obtained.
        got: usize,
        /// Blocks needed.
        need: usize,
    },
    /// A downloaded segment did not hash to its id (corruption).
    IntegrityMismatch {
        /// The segment that failed verification.
        segment: SegmentId,
    },
}

impl std::fmt::Display for DownloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DownloadError::NotEnoughBlocks { segment, got, need } => {
                write!(f, "segment {segment}: only {got} of {need} blocks reachable")
            }
            DownloadError::IntegrityMismatch { segment } => {
                write!(f, "segment {segment}: content does not match its hash")
            }
        }
    }
}

impl std::error::Error for DownloadError {}

/// Outcome of a download batch.
#[derive(Debug)]
pub struct DownloadReport {
    /// Successfully reconstructed segments. Shared [`Bytes`] so callers
    /// can fan a segment out (file reassembly, re-encode, caching)
    /// without copying the plaintext again.
    pub segments: HashMap<SegmentId, Bytes>,
    /// Segments that failed, with the reason.
    pub failed: Vec<DownloadError>,
    /// When the batch started / finished.
    pub started: Time,
    /// When the batch finished.
    pub finished: Time,
    /// `(time, segment)` completion events in order.
    pub timeline: Vec<(Time, SegmentId)>,
}

impl DownloadReport {
    /// Whether every requested segment was reconstructed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Total duration of the batch.
    pub fn total_duration(&self) -> Duration {
        self.finished.saturating_duration_since(self.started)
    }
}

struct FetchState {
    id: SegmentId,
    len: usize,
    /// Block indices available per cloud.
    candidates: Vec<Vec<u16>>,
    /// Indices requested at least once.
    requested: HashSet<u16>,
    /// Spare blocks requested beyond k (probing tail protection).
    over_requests: usize,
    /// Which cloud each in-flight request is on: index → cloud.
    inflight: HashMap<u16, usize>,
    /// Failed attempts per block index. A block whose holder keeps
    /// erroring without reporting itself unavailable (a deleted
    /// directory reads as `NotFound`, not `Unavailable`) would
    /// otherwise be re-queued forever.
    bounces: HashMap<u16, u32>,
    /// Blocks received.
    have: HashMap<u16, Bytes>,
    /// Decode attempts that failed the content hash (corrupt blocks).
    integrity_retries: u32,
    done: bool,
    exhausted: bool,
}

struct DownloadState {
    fetches: Vec<FetchState>,
    cloud_alive: Vec<bool>,
    finished: bool,
    timeline: Vec<(Time, SegmentId)>,
    /// Live `engine.batch` span; dropped (= ended) when `finished`
    /// flips so it stamps the true batch completion time.
    batch_guard: Option<SpanGuard>,
}

struct Job {
    fetch: usize,
    index: u16,
}

/// Runs one download batch, reconstructing each segment from any `k`
/// blocks.
pub fn run_download(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    codec: &Arc<Codec>,
    config: &DataPlaneConfig,
    probe: &Arc<BandwidthProbe>,
    fetches: Vec<SegmentFetch>,
) -> DownloadReport {
    run_download_in(rt, clouds, codec, config, probe, fetches, None)
}

/// [`run_download`] with span causality: the batch's `engine.batch`
/// span is parented to `parent` (usually a client's `sync.round`
/// span).
#[allow(clippy::too_many_arguments)]
pub fn run_download_in(
    rt: &Arc<dyn Runtime>,
    clouds: &CloudSet,
    codec: &Arc<Codec>,
    config: &DataPlaneConfig,
    probe: &Arc<BandwidthProbe>,
    fetches: Vec<SegmentFetch>,
    parent: Option<SpanId>,
) -> DownloadReport {
    let started = rt.now();
    let n_clouds = clouds.len();
    let k = codec.k();

    let mut batch_guard = config.obs.span("engine.batch", parent);
    batch_guard.attr_str("label", "download");
    batch_guard.attr_u64("segments", fetches.len() as u64);
    let batch_span = batch_guard.id();

    let st = DownloadState {
        fetches: fetches
            .iter()
            .map(|f| {
                let mut candidates = vec![Vec::new(); n_clouds];
                for b in &f.blocks {
                    if (b.cloud as usize) < n_clouds {
                        candidates[b.cloud as usize].push(b.index);
                    }
                }
                FetchState {
                    id: f.id,
                    len: f.len as usize,
                    candidates,
                    requested: HashSet::new(),
                    over_requests: 0,
                    inflight: HashMap::new(),
                    bounces: HashMap::new(),
                    have: HashMap::new(),
                    integrity_retries: 0,
                    done: false,
                    exhausted: false,
                }
            })
            .collect(),
        cloud_alive: vec![true; n_clouds],
        finished: fetches.is_empty(),
        timeline: Vec::new(),
        batch_guard: Some(batch_guard),
    };

    let mut policy = DownloadPolicy {
        st,
        segments: HashMap::new(),
        failures: Vec::new(),
        codec: Arc::clone(codec),
        probe: Arc::clone(probe),
        obs: config.obs.clone(),
        k,
        probing: config.probing,
        dup_speed_ratio: config.dup_speed_ratio,
        max_block_bounces: config.max_block_bounces,
        batch_span,
    };
    // Handle the possibility that nothing is fetchable at all — the
    // batch must be born finished then (engine deadlock-safety
    // invariant: no work, nothing in flight, done).
    finish_check(&mut policy.st, k, &mut policy.failures);

    let params = EngineParams {
        connections_per_cloud: config.connections_per_cloud,
        retry: config.retry.clone(),
        obs: config.obs.clone(),
        label: "download".into(),
        probe: Some(Arc::clone(probe)),
        idle_wait: config.idle_wait,
        batch_span,
        watchdog: config.watchdog.clone(),
    };
    let policy = TransferEngine::start(rt, clouds, params, policy).join();

    let finished = rt.now();
    DownloadReport {
        segments: policy.segments,
        failed: policy.failures,
        started,
        finished,
        timeline: policy.st.timeline,
    }
}

/// Download-side scheduling brain: earliest-unfinished-segment
/// dispatch, probing-gated primaries, and tail duplication, driven by
/// the shared engine.
struct DownloadPolicy {
    st: DownloadState,
    segments: HashMap<SegmentId, Bytes>,
    failures: Vec<DownloadError>,
    codec: Arc<Codec>,
    probe: Arc<BandwidthProbe>,
    obs: Obs,
    k: usize,
    probing: bool,
    dup_speed_ratio: f64,
    max_block_bounces: u32,
    batch_span: Option<SpanId>,
}

impl TransferPolicy for DownloadPolicy {
    type Token = Job;

    fn next_job(&mut self, cloud: CloudId) -> Option<JobDesc<Job>> {
        let job = next_job(
            &mut self.st,
            cloud.0,
            self.k,
            self.probing,
            self.dup_speed_ratio,
            &self.probe,
            &self.obs,
        )?;
        let path = block_path(&self.st.fetches[job.fetch].id, job.index);
        Some(JobDesc {
            index: job.index,
            extra: false,
            parent_span: self.batch_span,
            op: WireOp::Download { path },
            token: job,
        })
    }

    fn is_done(&self) -> bool {
        self.st.finished
    }

    fn on_success(&mut self, cloud: CloudId, job: Job, data: Option<Bytes>, now: Time) {
        let data = data.expect("download job completed without data");
        let fetch = &mut self.st.fetches[job.fetch];
        let seg_id = fetch.id;
        if fetch.inflight.get(&job.index) == Some(&cloud.0) {
            fetch.inflight.remove(&job.index);
        }
        // Torn blocks must be surfaced, not masked: a block whose length
        // differs from the codec's share length (e.g. a torn upload that
        // persisted only a prefix) can never decode, and feeding it in
        // would burn an integrity retry on the whole combination. Reject
        // it here, stop chasing that index, and let the fetch proceed
        // from the remaining candidates.
        if data.len() != self.codec.block_len(fetch.len) {
            self.obs.inc("download.truncated_blocks");
            for c in &mut fetch.candidates {
                c.retain(|i| *i != job.index);
            }
            finish_check(&mut self.st, self.k, &mut self.failures);
            return;
        }
        fetch.have.entry(job.index).or_insert(data);
        while !fetch.done && fetch.have.len() >= self.k {
            match decode_segment(&self.codec, fetch, self.k) {
                Ok(plain) => {
                    fetch.done = true;
                    self.st.timeline.push((now, seg_id));
                    self.segments.insert(seg_id, plain);
                }
                Err(e @ DownloadError::IntegrityMismatch { .. }) => {
                    // One of the k blocks decode just used is corrupt
                    // (we cannot tell which): discard exactly that
                    // combination — the sorted first k, matching
                    // decode_segment's choice — and keep any other
                    // gathered blocks; over-provisioned spares exist
                    // precisely for moments like this. Looping retries
                    // the decode right away if enough spares are
                    // already in hand. Give up after a few combinations.
                    fetch.integrity_retries += 1;
                    if fetch.integrity_retries > 3 {
                        fetch.done = true;
                        self.failures.push(e);
                    } else {
                        let mut used: Vec<u16> = fetch.have.keys().copied().collect();
                        used.sort_unstable();
                        used.truncate(self.k);
                        for idx in used {
                            fetch.have.remove(&idx);
                            for c in &mut fetch.candidates {
                                c.retain(|i| *i != idx);
                            }
                        }
                    }
                }
                Err(e) => {
                    fetch.done = true;
                    self.failures.push(e);
                }
            }
        }
        finish_check(&mut self.st, self.k, &mut self.failures);
    }

    fn on_failure(&mut self, cloud: CloudId, job: Job, error: CloudError, _now: Time) {
        let fetch = &mut self.st.fetches[job.fetch];
        if fetch.inflight.get(&job.index) == Some(&cloud.0) {
            fetch.inflight.remove(&job.index);
        }
        let bounces = fetch.bounces.entry(job.index).or_insert(0);
        *bounces += 1;
        if *bounces >= self.max_block_bounces {
            // The block's holder keeps failing without going
            // unavailable: stop chasing it so the batch can settle
            // (finish_check then completes from other blocks or
            // reports NotEnoughBlocks instead of looping forever).
            for c in &mut fetch.candidates {
                c.retain(|i| *i != job.index);
            }
        } else {
            fetch.requested.remove(&job.index);
        }
        if matches!(error, CloudError::Unavailable { .. }) {
            self.st.cloud_alive[cloud.0] = false;
        }
        finish_check(&mut self.st, self.k, &mut self.failures);
    }
}

fn decode_segment(
    codec: &Codec,
    fetch: &FetchState,
    k: usize,
) -> Result<Bytes, DownloadError> {
    // Sort for determinism: HashMap iteration order would make the
    // chosen k-subset (and thus replayed experiment traces) vary run to
    // run.
    let mut indices: Vec<u16> = fetch.have.keys().copied().collect();
    indices.sort_unstable();
    let shares: Vec<(usize, &[u8])> = indices
        .iter()
        .take(k)
        .map(|i| (*i as usize, fetch.have[i].as_ref()))
        .collect();
    let plain = codec
        .decode(&shares, fetch.len)
        .map_err(|_| DownloadError::NotEnoughBlocks {
            segment: fetch.id,
            got: fetch.have.len(),
            need: k,
        })?;
    // Verify content addressing end to end.
    let digest = unidrive_crypto::Sha1::digest(&plain);
    if digest != fetch.id.0 {
        return Err(DownloadError::IntegrityMismatch { segment: fetch.id });
    }
    Ok(Bytes::from(plain))
}

/// Picks the next block an idle connection of `cloud` should fetch.
fn next_job(
    st: &mut DownloadState,
    cloud: usize,
    k: usize,
    probing: bool,
    dup_speed_ratio: f64,
    probe: &BandwidthProbe,
    obs: &Obs,
) -> Option<Job> {
    if !st.cloud_alive[cloud] {
        return None;
    }
    let my_speed = probe.speed(unidrive_cloud::CloudId(cloud));
    for fi in 0..st.fetches.len() {
        let fetch = &st.fetches[fi];
        if fetch.done || fetch.exhausted {
            continue;
        }
        let has_candidate = |c: usize, fetch: &FetchState| {
            fetch.candidates[c]
                .iter()
                .any(|i| !fetch.requested.contains(i) && !fetch.have.contains_key(i))
        };
        let my_candidate = fetch.candidates[cloud]
            .iter()
            .find(|i| !fetch.requested.contains(i) && !fetch.have.contains_key(i))
            .copied();
        let Some(index) = my_candidate else {
            continue;
        };
        let outstanding = fetch.inflight.len();
        // Primary: fetch a block nobody has requested yet, as long as we
        // still need more than are in flight. With probing enabled,
        // "eligible clouds are kept sorted according to their connection
        // speed" (paper §6.2): a much slower cloud leaves the block to
        // the faster ones that also have candidates.
        if fetch.have.len() + outstanding < k {
            let fastest_eligible = (0..st.cloud_alive.len())
                .filter(|&c| st.cloud_alive[c] && has_candidate(c, fetch))
                .map(|c| probe.speed(unidrive_cloud::CloudId(c)))
                .fold(0.0f64, f64::max);
            let gated = probing && my_speed * 4.0 < fastest_eligible;
            if !gated {
                let fetch = &mut st.fetches[fi];
                fetch.requested.insert(index);
                fetch.inflight.insert(index, cloud);
                return Some(Job { fetch: fi, index });
            }
        }
        // Over-request: enough blocks are in flight, but some sit on
        // much slower clouds — a fast idle connection fetches a *spare*
        // block (typically an over-provisioned one) so the segment
        // completes from whichever k arrive first. This is the
        // download-side payoff of over-provisioning (paper §6.2).
        if probing && outstanding > 0 && fetch.over_requests < k {
            let stuck_on_slow = fetch.inflight.iter().any(|(_, &other)| {
                other != cloud
                    && my_speed > dup_speed_ratio * probe.speed(unidrive_cloud::CloudId(other))
            });
            if stuck_on_slow {
                let fetch = &mut st.fetches[fi];
                fetch.over_requests += 1;
                // Counter-only: safe under the scheduler lock (no clock).
                obs.inc("download.over_requests");
                fetch.requested.insert(index);
                fetch.inflight.insert(index, cloud);
                return Some(Job { fetch: fi, index });
            }
        }
    }
    None
}

/// Detects completion: every fetch is done, or stuck fetches cannot make
/// progress (no reachable unrequested candidates and nothing in flight).
fn finish_check(st: &mut DownloadState, k: usize, failures: &mut Vec<DownloadError>) {
    if st.finished {
        return;
    }
    let n_clouds = st.cloud_alive.len();
    let mut all_settled = true;
    for fi in 0..st.fetches.len() {
        let fetch = &st.fetches[fi];
        if fetch.done || fetch.exhausted {
            continue;
        }
        if !fetch.inflight.is_empty() {
            all_settled = false;
            continue;
        }
        let has_candidate = (0..n_clouds).any(|c| {
            st.cloud_alive[c]
                && fetch.candidates[c]
                    .iter()
                    .any(|i| !fetch.requested.contains(i) && !fetch.have.contains_key(i))
        });
        if has_candidate {
            all_settled = false;
            continue;
        }
        // Stuck: record the failure.
        failures.push(DownloadError::NotEnoughBlocks {
            segment: fetch.id,
            got: fetch.have.len(),
            need: k,
        });
        st.fetches[fi].exhausted = true;
    }
    if all_settled {
        st.finished = true;
        // End the batch span at settle time, not at `join` time.
        st.batch_guard.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SegmentData;
    use crate::upload::{run_upload, FileUpload};
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_crypto::Sha1;
    use unidrive_erasure::RedundancyConfig;
    use unidrive_sim::SimRuntime;

    struct Rig {
        sim: Arc<SimRuntime>,
        rt: Arc<dyn Runtime>,
        clouds: CloudSet,
        sim_clouds: Vec<Arc<SimCloud>>,
        codec: Arc<Codec>,
        config: DataPlaneConfig,
        probe: Arc<BandwidthProbe>,
    }

    fn rig(seed: u64, rates: &[f64]) -> Rig {
        let sim = SimRuntime::new(seed);
        let mut sim_clouds = Vec::new();
        let members: Vec<Arc<dyn CloudStore>> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let c = Arc::new(SimCloud::new(
                    &sim,
                    format!("c{i}"),
                    SimCloudConfig::steady(r, r * 5.0),
                ));
                sim_clouds.push(Arc::clone(&c));
                c as Arc<dyn CloudStore>
            })
            .collect();
        let clouds = CloudSet::new(members);
        let redundancy = RedundancyConfig::new(rates.len(), 3, 3, 2).unwrap();
        let config = DataPlaneConfig::with_params(redundancy, 64 * 1024);
        let codec = Arc::new(Codec::for_config(&config.redundancy).unwrap());
        let probe = Arc::new(BandwidthProbe::new(rates.len(), 1e6));
        let rt = sim.clone().as_runtime();
        Rig {
            sim,
            rt,
            clouds,
            sim_clouds,
            codec,
            config,
            probe,
        }
    }

    fn upload_one(rig: &Rig, size: usize, tag: u8) -> (SegmentId, Vec<u8>, Vec<BlockRef>) {
        let data: Vec<u8> = (0..size).map(|i| (i as u8).wrapping_mul(tag).wrapping_add(tag)).collect();
        let id = SegmentId(Sha1::digest(&data));
        let report = run_upload(
            &rig.rt,
            &rig.clouds,
            &rig.codec,
            &rig.config,
            &rig.probe,
            vec![FileUpload {
                path: "f".into(),
                segments: vec![SegmentData {
                    id,
                    data: Bytes::from(data.clone()),
                }],
            }],
        );
        assert!(report.all_available());
        let blocks = report
            .blocks
            .iter()
            .filter(|(s, _)| *s == id)
            .map(|(_, b)| *b)
            .collect();
        (id, data, blocks)
    }

    #[test]
    fn round_trip_through_the_multicloud() {
        let r = rig(1, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 200_000, 3);
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks,
            }],
        );
        assert!(report.is_complete(), "failures: {:?}", report.failed);
        assert_eq!(report.segments[&id], data);
    }

    #[test]
    fn download_succeeds_with_k_r_clouds_down() {
        let r = rig(2, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 200_000, 5);
        // K_r = 3: any 3 clouds must suffice, so kill 2.
        r.sim_clouds[1].set_available(false);
        r.sim_clouds[3].set_available(false);
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks,
            }],
        );
        assert!(report.is_complete(), "failures: {:?}", report.failed);
        assert_eq!(report.segments[&id], data);
    }

    #[test]
    fn download_fails_securely_with_one_cloud_left() {
        let r = rig(3, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 200_000, 7);
        for i in 0..4 {
            r.sim_clouds[i].set_available(false);
        }
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks,
            }],
        );
        // One cloud holds at most cap = 2 < k = 3 blocks: K_s = 2 means
        // a single provider can never reconstruct.
        assert!(!report.is_complete());
        assert!(matches!(
            report.failed[0],
            DownloadError::NotEnoughBlocks { .. }
        ));
    }

    #[test]
    fn fast_cloud_supplies_most_blocks() {
        let r = rig(4, &[20e6, 1e6, 1e6, 1e6, 1e6]);
        let (id, data, blocks) = upload_one(&r, 400_000, 9);
        // Warm the probe so ranking reflects reality.
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks: blocks.clone(),
            }],
        );
        assert!(report.is_complete());
        // The fast cloud holds cap=2 blocks (over-provisioned during
        // upload); a correct dynamic scheduler uses them.
        let fast_has = blocks.iter().filter(|b| b.cloud == 0).count();
        assert_eq!(fast_has, 2, "upload should have over-provisioned cloud 0");
    }

    #[test]
    fn corrupted_block_fails_integrity() {
        let r = rig(5, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 100_000, 11);
        // Corrupt one stored block on cloud of the first block.
        let victim = blocks[0];
        let path = block_path(&id, victim.index);
        let cloud = r.clouds.get(unidrive_cloud::CloudId(victim.cloud as usize));
        let mut corrupted = cloud.download(&path).unwrap().to_vec();
        corrupted[0] ^= 0xFF;
        cloud.upload(&path, Bytes::from(corrupted)).unwrap();
        // Kill enough clouds that the corrupted block must be used:
        // keep only the clouds that appear in `blocks`... simpler: fetch
        // with candidates restricted to k blocks including the victim.
        let mut restricted = vec![victim];
        restricted.extend(blocks.iter().filter(|b| **b != victim).take(2).copied());
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks: restricted,
            }],
        );
        // With only k candidate blocks and one of them corrupt, the
        // fetch must fail (after discarding the bad combination it has
        // nothing left to retry with) — never silently succeed.
        assert!(!report.is_complete());
    }

    #[test]
    fn corruption_fails_over_to_spare_blocks() {
        let r = rig(7, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 300_000, 13);
        assert!(blocks.len() > 3, "need spares for this test");
        // Corrupt one stored block; the fetch should succeed from the
        // remaining candidates after the integrity retry discards the
        // poisoned combination.
        let victim = blocks[0];
        let path = block_path(&id, victim.index);
        let cloud = r.clouds.get(unidrive_cloud::CloudId(victim.cloud as usize));
        let mut corrupted = cloud.download(&path).unwrap().to_vec();
        corrupted[10] ^= 0xAA;
        cloud.upload(&path, Bytes::from(corrupted)).unwrap();
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks,
            }],
        );
        assert!(
            report.is_complete(),
            "spares must absorb one corrupt block: {:?}",
            report.failed
        );
        assert_eq!(report.segments[&id], data);
    }

    #[test]
    fn missing_blocks_bounce_out_instead_of_looping() {
        // Deleting objects from a cloud makes its downloads fail with
        // NotFound — the cloud never reports Unavailable, so only the
        // bounce limit stops the scheduler from re-queuing those blocks
        // forever. The batch must terminate and reconstruct from the
        // surviving blocks.
        let r = rig(8, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 300_000, 17);
        // Erase every stored block on two clouds (ransack, not outage).
        for b in blocks.iter().filter(|b| b.cloud <= 1) {
            let cloud = r.clouds.get(unidrive_cloud::CloudId(b.cloud as usize));
            cloud.delete(&block_path(&id, b.index)).unwrap();
        }
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks,
            }],
        );
        assert!(report.is_complete(), "failures: {:?}", report.failed);
        assert_eq!(report.segments[&id], data);
    }

    #[test]
    fn unreachable_batch_terminates_with_failure() {
        // Erase so many blocks that reconstruction is impossible: the
        // batch must settle on NotEnoughBlocks, not hang.
        let r = rig(9, &[1e6; 5]);
        let (id, data, blocks) = upload_one(&r, 200_000, 19);
        for b in blocks.iter().filter(|b| b.cloud <= 3) {
            let cloud = r.clouds.get(unidrive_cloud::CloudId(b.cloud as usize));
            cloud.delete(&block_path(&id, b.index)).unwrap();
        }
        let report = run_download(
            &r.rt,
            &r.clouds,
            &r.codec,
            &r.config,
            &r.probe,
            vec![SegmentFetch {
                id,
                len: data.len() as u64,
                blocks,
            }],
        );
        assert!(!report.is_complete());
        assert!(matches!(
            report.failed[0],
            DownloadError::NotEnoughBlocks { .. }
        ));
    }

    #[test]
    fn empty_fetch_list_finishes_immediately() {
        let r = rig(6, &[1e6; 5]);
        let t0 = r.sim.now();
        let report = run_download(&r.rt, &r.clouds, &r.codec, &r.config, &r.probe, vec![]);
        assert!(report.is_complete());
        assert!(report.segments.is_empty());
        assert_eq!(r.sim.now(), t0);
    }
}
