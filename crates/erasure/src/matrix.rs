//! Dense matrices over GF(2⁸) with the operations Reed-Solomon needs:
//! multiplication, Gauss-Jordan inversion, and Vandermonde construction.

use crate::gf256;

/// A row-major dense matrix over GF(2⁸).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "ragged rows in matrix"
        );
        let n = rows.len();
        Matrix {
            rows: n,
            cols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// A Vandermonde matrix whose row `i` is
    /// `(1, xᵢ, xᵢ², …, xᵢ^(cols-1))` for the given evaluation points.
    /// Any `cols` rows with distinct points form an invertible matrix —
    /// the MDS property Reed-Solomon relies on.
    ///
    /// # Panics
    ///
    /// Panics if points are not distinct.
    pub fn vandermonde(points: &[u8], cols: usize) -> Self {
        let mut seen = [false; 256];
        for &p in points {
            assert!(!seen[p as usize], "duplicate Vandermonde point {p}");
            seen[p as usize] = true;
        }
        let mut m = Matrix::zero(points.len(), cols);
        for (i, &x) in points.iter().enumerate() {
            for j in 0..cols {
                m.set(i, j, gf256::pow(x, j as u32));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix made of the selected rows (in the given
    /// order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        Matrix::from_rows(indices.iter().map(|&i| self.row(i).to_vec()).collect())
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = gf256::mul(a, rhs.get(l, j));
                    out.set(i, j, gf256::add(out.get(i, j), prod));
                }
            }
        }
        out
    }

    /// Inverts a square matrix by Gauss-Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            let pinv = gf256::inv(p);
            a.scale_row(col, pinv);
            inv.scale_row(col, pinv);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor != 0 {
                    a.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
        gf256::scale_slice(row, factor);
    }

    /// `row[dst] ^= factor * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: u8) {
        let cols = self.cols;
        let (a, b) = if dst < src {
            let (head, tail) = self.data.split_at_mut(src * cols);
            (
                &mut head[dst * cols..(dst + 1) * cols],
                &tail[..cols],
            )
        } else {
            let (head, tail) = self.data.split_at_mut(dst * cols);
            (
                &mut tail[..cols],
                &head[src * cols..(src + 1) * cols],
            )
        };
        gf256::mul_add_slice(a, b, factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        assert_eq!(m.mul(&Matrix::identity(3)), m);
        assert_eq!(Matrix::identity(3).mul(&m), m);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Matrix::vandermonde(&[1, 2, 3, 4], 4);
        let inv = m.inverse().expect("vandermonde is invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(4));
        assert_eq!(inv.mul(&m), Matrix::identity(4));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn any_k_vandermonde_rows_invert() {
        // The MDS property on which UniDrive's "any k blocks reconstruct"
        // guarantee rests.
        let points: Vec<u8> = (1..=20).collect();
        let m = Matrix::vandermonde(&points, 4);
        // Try a spread of 4-row subsets.
        for a in 0..6 {
            for b in (a + 1)..10 {
                for c in (b + 1)..14 {
                    for d in (c + 1)..20 {
                        let sub = m.select_rows(&[a, b, c, d]);
                        assert!(
                            sub.inverse().is_some(),
                            "rows {a},{b},{c},{d} singular"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn select_rows_keeps_order() {
        let m = Matrix::from_rows(vec![vec![1], vec![2], vec![3]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3]);
        assert_eq!(s.row(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "duplicate Vandermonde point")]
    fn duplicate_points_rejected() {
        let _ = Matrix::vandermonde(&[1, 2, 1], 3);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn bad_mul_dimensions_panic() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }
}
