//! Randomized property tests of the erasure-coding invariants
//! UniDrive's reliability and security guarantees rest on. Driven by
//! the workspace's deterministic `SimRng` (seeded, so failures
//! reproduce exactly).

use unidrive_erasure::{Codec, RedundancyConfig};
use unidrive_sim::SimRng;

fn random_vec(rng: &mut SimRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len + rng.below((max_len - min_len) as u64) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Any k distinct blocks of a non-systematic code reconstruct the
/// original data exactly — the MDS property.
#[test]
fn any_k_blocks_reconstruct() {
    let mut rng = SimRng::seed_from_u64(0xE501);
    for _ in 0..48 {
        let data = random_vec(&mut rng, 1, 2048);
        let k = 2 + rng.below(2) as usize;
        let n = (k + 1) + rng.below((20 - k - 1) as u64) as usize;
        let codec = Codec::non_systematic(n, k).unwrap();
        // Pick k distinct indices with a Fisher-Yates prefix shuffle.
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.below((n - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(k);
        let blocks = codec.encode_blocks(&data, &indices);
        let shares: Vec<(usize, &[u8])> = indices
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        assert_eq!(codec.decode(&shares, data.len()).unwrap(), data);
    }
}

/// Fewer than k blocks always fail to decode (the K_s security
/// property at the codec level).
#[test]
fn fewer_than_k_blocks_fail() {
    let mut rng = SimRng::seed_from_u64(0xE502);
    for _ in 0..48 {
        let data = random_vec(&mut rng, 1, 512);
        let have = rng.below(3) as usize;
        let codec = Codec::non_systematic(10, 3).unwrap();
        let indices: Vec<usize> = (0..have).collect();
        let blocks = codec.encode_blocks(&data, &indices);
        let shares: Vec<(usize, &[u8])> = indices
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        assert!(codec.decode(&shares, data.len()).is_err());
    }
}

/// Encoding is deterministic and blocks have the advertised length.
#[test]
fn encoding_is_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xE503);
    for _ in 0..48 {
        let data = random_vec(&mut rng, 1, 4096);
        let index = rng.below(10) as usize;
        let codec = Codec::non_systematic(10, 3).unwrap();
        let a = codec.encode_block(&data, index);
        let b = codec.encode_block(&data, index);
        assert_eq!(&a, &b);
        assert_eq!(a.len(), codec.block_len(data.len()));
    }
}

/// Every accepted redundancy configuration satisfies both paper
/// requirements: K_r clouds always suffice, K_s − 1 never do.
#[test]
fn config_requirements_hold() {
    // Small discrete space: sweep it exhaustively instead of sampling.
    for clouds in 1..10usize {
        for k in 1..16usize {
            for k_r in 1..10usize {
                for k_s in 1..10usize {
                    if let Ok(cfg) = RedundancyConfig::new(clouds, k, k_r, k_s) {
                        assert!(cfg.k_r() * cfg.fair_share() >= cfg.k());
                        assert!((cfg.k_s() - 1) * cfg.per_cloud_cap() < cfg.k());
                        assert!(cfg.fair_share() <= cfg.per_cloud_cap());
                        assert!(cfg.max_block_count() <= 255);
                    }
                }
            }
        }
    }
}

/// A corrupted share either fails to decode or produces different
/// output — never silently the same plaintext.
#[test]
fn corruption_is_never_silently_correct() {
    let mut rng = SimRng::seed_from_u64(0xE505);
    for _ in 0..48 {
        let data = random_vec(&mut rng, 8, 512);
        let flip_byte = 1 + rng.below(255) as u8;
        let codec = Codec::non_systematic(10, 3).unwrap();
        let indices = [1usize, 5, 8];
        let mut blocks = codec.encode_blocks(&data, &indices);
        let mut corrupted = blocks[1].to_vec();
        corrupted[0] ^= flip_byte;
        blocks[1] = corrupted.into();
        let shares: Vec<(usize, &[u8])> = indices
            .iter()
            .zip(&blocks)
            .map(|(&i, b)| (i, b.as_ref()))
            .collect();
        if let Ok(decoded) = codec.decode(&shares, data.len()) {
            assert_ne!(decoded, data);
        }
    }
}
