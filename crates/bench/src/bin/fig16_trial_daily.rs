//! **Figure 16** — daily average upload throughput for medium-sized
//! files (100 KB - 1 MB) over one simulated week at four trial sites
//! (§7.3): performance is stable across days and similar across sites.

use std::time::Duration;

use unidrive_baseline::UniDriveTransfer;
use unidrive_bench::{mbps, metrics_out, ExperimentScale};
use unidrive_core::DataPlaneConfig;
use unidrive_erasure::RedundancyConfig;
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{build_multicloud, random_bytes, site_by_name, Summary, TextTable};

fn main() {
    let scale = ExperimentScale::from_args();
    let metrics = metrics_out::from_args();
    let sites = ["Princeton", "London", "Tokyo", "Sydney"];
    let days = 7;
    let uploads_per_day = if scale.repeats >= 5 { 24 } else { 8 };

    println!(
        "Figure 16: daily mean upload throughput (Mbit/s), medium files (100 KB-1 MB), one week\n"
    );
    let mut table = TextTable::new(&["day", "Princeton", "London", "Tokyo", "Sydney"]);
    let mut rows: Vec<Vec<String>> = (0..days).map(|d| vec![format!("{d}")]).collect();
    let mut site_cvs = Vec::new();

    for (si, name) in sites.iter().enumerate() {
        let site = site_by_name(name).expect("site exists");
        let sim = SimRuntime::new(1600 + si as u64);
        let (clouds, handles) = build_multicloud(&sim, site);
        for handle in &handles {
            handle.install_obs(metrics.obs.clone());
        }
        let config = DataPlaneConfig {
            connections_per_cloud: 5,
            obs: metrics.obs.clone(),
            ..DataPlaneConfig::with_params(
                RedundancyConfig::new(5, 3, 3, 2).expect("valid"),
                scale.theta,
            )
        };
        let client = UniDriveTransfer::new(sim.clone().as_runtime(), clouds, config);
        let mut daily_means = Vec::new();
        for (day, row) in rows.iter_mut().enumerate().take(days) {
            let mut samples = Vec::new();
            for u in 0..uploads_per_day {
                // Medium-sized files: 100 KB - 1 MB.
                let size = 100 * 1024 + ((day * uploads_per_day + u) * 37 % 900) * 1024;
                let data = random_bytes(size, (day * 100 + u) as u64);
                if let Ok(took) = client.upload(&format!("d{day}-u{u}"), data) {
                    samples.push(mbps(size, took));
                }
                sim.sleep(Duration::from_secs(86_400 / uploads_per_day as u64));
            }
            let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
            daily_means.push(mean);
            row.push(format!("{mean:.1}"));
        }
        if let Some(s) = Summary::of(&daily_means) {
            site_cvs.push((name, s.std_dev() / s.mean, s.mean));
        }
    }
    for row in rows {
        table.row(row);
    }
    println!("{}", table.render());
    for (name, cv, mean) in site_cvs {
        println!("{name:10} weekly mean {mean:5.1} Mbit/s, day-to-day cv {cv:.2}");
    }
    println!("(paper: stable across the week and similar across the four sites)");
    if let Some(path) = metrics.write() {
        println!("metrics snapshot written to {path}");
    }
}
