//! **Table 2** — variance of average sync time across locations (§7.2):
//! UniDrive's average sync time varies several-fold less across the 7
//! EC2 sites than any single CCS's.
//!
//! This is the stability cross-section of the Figure 11 campaign; here
//! we run a lighter single-file sync per site so the table regenerates
//! quickly (the fig11 binary prints the full batch variant).

use std::time::Duration;

use unidrive_bench::{systems_at, ExperimentScale};
use unidrive_sim::{Runtime, SimRuntime};
use unidrive_workload::{random_bytes, Summary, TextTable, EC2_SITES};

fn main() {
    let scale = ExperimentScale::from_args();
    let size = scale.batch.1 * 8; // a medium sync payload
    let repeats = scale.repeats;

    // Sync time model per site: upload at the site + download at the
    // site (a two-device round through the multi-cloud).
    let mut per_system: Vec<(&str, Vec<f64>)> = vec![
        ("UniDrive", Vec::new()),
        ("Dropbox", Vec::new()),
        ("OneDrive", Vec::new()),
        ("GoogleDrive", Vec::new()),
    ];
    for (si, site) in EC2_SITES.iter().enumerate() {
        let sim = SimRuntime::new(1202 + si as u64);
        let sys = systems_at(&sim, *site, scale.theta);
        let data = random_bytes(size, si as u64);
        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for rep in 0..repeats {
            let name = format!("v{rep}");
            if let (Ok(u), Ok((d, _))) = (
                sys.unidrive.upload(&name, data.clone()),
                sys.unidrive.download(&name),
            ) {
                samples[0].push(u.as_secs_f64() + d.as_secs_f64());
            }
            for (i, (_, native)) in sys.natives.iter().take(3).enumerate() {
                if let Ok(u) = native.upload(&name, data.clone()) {
                    if let Ok((d, _)) = native.download(&name) {
                        samples[1 + i].push(u.as_secs_f64() + d.as_secs_f64());
                    }
                }
            }
            sim.sleep(Duration::from_secs(1800));
        }
        for (i, s) in samples.iter().enumerate() {
            if let Some(sum) = Summary::of(s) {
                per_system[i].1.push(sum.mean);
            }
        }
    }

    println!(
        "Table 2: variance of per-site average sync time (s^2), {} MB payload\n",
        size / (1024 * 1024)
    );
    let mut table = TextTable::new(&["", "Dropbox", "OneDrive", "GoogleDr.", "UniDrive"]);
    let var = |v: &[f64]| Summary::of(v).map(|s| s.variance).unwrap_or(f64::NAN);
    table.row(vec![
        "Variance".into(),
        format!("{:.1}", var(&per_system[1].1)),
        format!("{:.1}", var(&per_system[2].1)),
        format!("{:.1}", var(&per_system[3].1)),
        format!("{:.1}", var(&per_system[0].1)),
    ]);
    println!("{}", table.render());
    println!(
        "(paper: Dropbox 134.2, OneDrive 140.9, GoogleDrive 558.0, UniDrive 33.1 —\n\
         UniDrive remarkably more stable, by several folds)"
    );
}
