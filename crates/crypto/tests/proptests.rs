//! Randomized property tests of the from-scratch crypto primitives,
//! driven by the workspace's deterministic `SimRng` (seeded, so
//! failures reproduce exactly).

use unidrive_crypto::{Des, MetadataCipher, Sha1};
use unidrive_sim::SimRng;

fn random_vec(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn random_block(rng: &mut SimRng) -> [u8; 8] {
    rng.next_u64().to_le_bytes()
}

/// DES decrypt(encrypt(x)) == x for every key and block.
#[test]
fn des_round_trips() {
    let mut rng = SimRng::seed_from_u64(0xDE50);
    for _ in 0..128 {
        let key = random_block(&mut rng);
        let block = random_block(&mut rng);
        let des = Des::new(key);
        assert_eq!(des.decrypt_block(des.encrypt_block(block)), block);
    }
}

/// The DES complementation property holds for all inputs.
#[test]
fn des_complementation() {
    let mut rng = SimRng::seed_from_u64(0xDE51);
    let not = |x: [u8; 8]| x.map(|b| !b);
    for _ in 0..128 {
        let key = random_block(&mut rng);
        let block = random_block(&mut rng);
        let a = Des::new(key).encrypt_block(block);
        let b = Des::new(not(key)).encrypt_block(not(block));
        assert_eq!(not(a), b);
    }
}

/// CBC round-trips arbitrary plaintext under arbitrary passphrases and
/// nonces.
#[test]
fn cbc_round_trips() {
    let mut rng = SimRng::seed_from_u64(0xDE52);
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    for _ in 0..48 {
        let pass_len = rng.below(33) as usize;
        let passphrase: String = (0..pass_len)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
            .collect();
        let plaintext = random_vec(&mut rng, 2047);
        let nonce = rng.next_u64();
        let cipher = MetadataCipher::from_passphrase(&passphrase);
        let ct = cipher.encrypt(&plaintext, nonce);
        assert_eq!(cipher.decrypt(&ct).unwrap(), plaintext);
    }
}

/// Ciphertext length is plaintext rounded up to the block plus IV, and
/// always a multiple of 8.
#[test]
fn cbc_length_is_predictable() {
    let mut rng = SimRng::seed_from_u64(0xDE53);
    let cipher = MetadataCipher::from_passphrase("p");
    for _ in 0..64 {
        let plaintext = random_vec(&mut rng, 511);
        let ct = cipher.encrypt(&plaintext, 1);
        let pad = 8 - plaintext.len() % 8;
        assert_eq!(ct.len(), 8 + plaintext.len() + pad);
        assert_eq!(ct.len() % 8, 0);
    }
}

/// Streaming SHA-1 equals one-shot SHA-1 under arbitrary splits.
#[test]
fn sha1_streaming_matches_oneshot() {
    let mut rng = SimRng::seed_from_u64(0xDE54);
    for _ in 0..64 {
        let data = random_vec(&mut rng, 4095);
        let n_splits = rng.below(6) as usize;
        let mut h = Sha1::new();
        let mut cursor = 0usize;
        for _ in 0..n_splits {
            let s = rng.below(u16::MAX as u64 + 1) as usize;
            let next = (cursor + s).min(data.len());
            h.update(&data[cursor..next]);
            cursor = next;
        }
        h.update(&data[cursor..]);
        assert_eq!(h.finalize(), Sha1::digest(&data));
    }
}

/// Hex round-trip of digests.
#[test]
fn digest_hex_round_trips() {
    let mut rng = SimRng::seed_from_u64(0xDE55);
    for _ in 0..64 {
        let data = random_vec(&mut rng, 255);
        let d = Sha1::digest(&data);
        assert_eq!(unidrive_crypto::Digest::from_hex(&d.to_hex()), Some(d));
    }
}
