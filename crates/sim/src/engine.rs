//! The virtual-time engine: [`SimRuntime`].
//!
//! # Model
//!
//! Every thread participating in a simulation is an **actor**. Actors run
//! real Rust code on real OS threads; only their *blocking* goes through
//! the engine (sleeps, semaphore waits, network flows). The engine keeps
//! two global invariants:
//!
//! * **Cooperative serialization** — at most one actor *executes* at any
//!   moment. All other runnable actors wait in a FIFO queue for the
//!   execution token, which is handed over whenever the current actor
//!   blocks (or exits). Since every wake-up is enqueued in a
//!   deterministic order (timers by deadline then actor index, flows in
//!   link/flow order, semaphore waiters FIFO), the entire interleaving —
//!   and therefore every scheduling decision made by client code — is a
//!   pure function of the seed. Same seed ⇒ byte-identical run.
//! * Virtual time advances **only when every live actor is blocked**.
//!   The last actor to block performs the advance inline:
//!
//!   1. find the earliest pending event (timer deadline, flow completion
//!      under current bandwidth sharing, or a link's multiplier
//!      re-sample),
//!   2. integrate all in-flight flows forward to that instant,
//!   3. fire everything due, enqueueing the affected actors.
//!
//! Because flow rates only change at events (a flow starting or ending, or
//! an epoch boundary), completions can be computed analytically and a
//! month of simulated transfers takes milliseconds of wall time.
//!
//! # Rules for actor code
//!
//! * Never block through anything except this runtime's primitives
//!   ([`Runtime::sleep`], [`Semaphore`](crate::Semaphore),
//!   [`SimRuntime::transfer`], [`Task::join`](crate::Task::join)); an
//!   actor blocked in, say, `std::sync::mpsc::recv` looks *running* to the
//!   engine and time will never advance (the engine cannot detect this —
//!   the run simply hangs).
//! * Short critical sections under `parking_lot` mutexes are fine; they
//!   are not "blocking" in the scheduling sense.
//! * The thread that calls [`SimRuntime::new`] is registered as the
//!   `main` actor and must itself obey these rules.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unidrive_obs::{Event, Obs};
use unidrive_util::sync::{Condvar, Mutex};

use crate::link::{Flow, LinkId, LinkProfile, LinkState};
use crate::rng::SimRng;
use crate::{Notifier, Runtime, Semaphore, Time};

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (engine id, actor index) of the actor running on this thread.
    static CURRENT_ACTOR: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Why a blocked actor was woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WakeReason {
    /// Its timer deadline fired.
    Timeout,
    /// A semaphore permit was granted to it.
    Acquired,
    /// Its network flow completed.
    FlowDone,
    /// A notifier it waited on was broadcast.
    Notified,
}

/// What an actor is currently blocked on (used to validate wake-ups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Sleep,
    Sem(usize),
    Flow(u64),
    Notify(usize),
}

#[derive(Debug)]
struct Actor {
    name: String,
    /// Incremented every time the actor blocks; lets the engine discard
    /// stale timer/semaphore registrations after an early wake.
    epoch: u64,
    running: bool,
    alive: bool,
    block: Option<BlockKind>,
    woken: Option<WakeReason>,
    cv: Arc<Condvar>,
}

#[derive(Debug)]
struct SemState {
    permits: usize,
    waiters: VecDeque<(usize, u64)>,
}

#[derive(Debug)]
struct NotifyState {
    generation: u64,
    waiters: VecDeque<(usize, u64)>,
}

#[derive(Debug)]
struct EngineState {
    now_ns: u64,
    actors: Vec<Actor>,
    /// The actor currently holding the execution token (at most one
    /// actor runs client code at a time; see the module docs).
    current: Option<usize>,
    /// Woken/ready actors awaiting the token, granted FIFO.
    runnable: VecDeque<usize>,
    /// Min-heap of (deadline ns, actor, actor-epoch).
    timers: BinaryHeap<Reverse<(u64, usize, u64)>>,
    sems: Vec<SemState>,
    notifies: Vec<NotifyState>,
    links: Vec<LinkState>,
    next_flow_id: u64,
    rng: SimRng,
}

/// Deterministic virtual-time [`Runtime`].
///
/// See the module docs for the actor model. Construct with
/// [`SimRuntime::new`], which registers the calling thread as the main
/// actor.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use unidrive_sim::{spawn, Runtime, SimRuntime};
///
/// let sim = SimRuntime::new(42);
/// let rt = sim.clone().as_runtime();
/// let t = spawn(&rt, "sleeper", {
///     let rt = rt.clone();
///     move || {
///         rt.sleep(Duration::from_secs(3600)); // one virtual hour
///         rt.now()
///     }
/// });
/// let woke_at = t.join();
/// assert_eq!(woke_at.as_secs_f64(), 3600.0); // instant in wall time
/// ```
pub struct SimRuntime {
    id: u64,
    state: Mutex<EngineState>,
    /// Back-reference so spawned threads and semaphores can keep the
    /// engine alive without unsafe pointer juggling.
    weak_self: std::sync::Weak<SimRuntime>,
    /// Observability handle (no-op until [`SimRuntime::install_obs`]).
    /// Kept outside `state` so recording never nests inside the engine
    /// lock: the registry clock reads `state` and would deadlock.
    obs: Mutex<Obs>,
}

impl std::fmt::Debug for SimRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SimRuntime")
            .field("id", &self.id)
            .field("now", &Time::from_nanos(st.now_ns))
            .field("actors", &st.actors.len())
            .field("current", &st.current)
            .field("runnable", &st.runnable.len())
            .finish()
    }
}

impl SimRuntime {
    /// Creates a virtual-time runtime seeded with `seed` and registers the
    /// calling thread as the `main` actor.
    pub fn new(seed: u64) -> Arc<SimRuntime> {
        let rt = Arc::new_cyclic(|weak| SimRuntime {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(EngineState {
                now_ns: 0,
                actors: Vec::new(),
                current: None,
                runnable: VecDeque::new(),
                timers: BinaryHeap::new(),
                sems: Vec::new(),
                notifies: Vec::new(),
                links: Vec::new(),
                next_flow_id: 0,
                rng: SimRng::seed_from_u64(seed),
            }),
            weak_self: weak.clone(),
            obs: Mutex::new(Obs::noop()),
        });
        rt.register_thread("main");
        rt
    }

    /// Installs an observability handle. When `obs` is backed by a
    /// registry, the registry clock is pointed at this engine's virtual
    /// time (through a weak reference, so the registry can outlive the
    /// engine), making every recorded event deterministic under a fixed
    /// seed. The engine then counts flows (`sim.flows_*`,
    /// `sim.flow_bytes`) and epoch re-samples (`sim.epoch_resamples`)
    /// and traces `FlowStarted`/`FlowFinished`.
    pub fn install_obs(&self, obs: Obs) {
        if let Some(registry) = obs.registry() {
            let weak = self.weak_self.clone();
            registry.set_clock(move || {
                weak.upgrade().map_or(0, |rt| rt.state.lock().now_ns)
            });
        }
        *self.obs.lock() = obs;
    }

    /// The currently installed observability handle (cheap clone;
    /// no-op unless [`SimRuntime::install_obs`] was called).
    pub fn obs(&self) -> Obs {
        self.obs.lock().clone()
    }

    fn strong_self(&self) -> Arc<SimRuntime> {
        self.weak_self
            .upgrade()
            .expect("SimRuntime used after being dropped")
    }

    /// Upcasts to the `Runtime` trait object.
    pub fn as_runtime(self: Arc<Self>) -> Arc<dyn Runtime> {
        self
    }

    /// Registers the calling thread as a new actor named `name`.
    ///
    /// Normally unnecessary: [`SimRuntime::new`] registers the creator and
    /// [`Runtime::spawn_raw`] registers spawned threads. Only threads
    /// created outside the runtime need this.
    ///
    /// # Panics
    ///
    /// Panics if the thread is already registered with this runtime.
    pub fn register_thread(&self, name: &str) {
        let (idx, granted) = {
            let mut st = self.state.lock();
            st.actors.push(Actor {
                name: name.to_owned(),
                epoch: 0,
                running: true,
                alive: true,
                block: None,
                woken: None,
                cv: Arc::new(Condvar::new()),
            });
            let idx = st.actors.len() - 1;
            // First-ever actor takes the execution token directly;
            // anyone registering later queues behind the current holder.
            if st.current.is_none() && st.runnable.is_empty() {
                st.current = Some(idx);
                (idx, true)
            } else {
                st.runnable.push_back(idx);
                (idx, false)
            }
        };
        CURRENT_ACTOR.with(|c| {
            assert!(
                c.get().is_none_or(|(eid, _)| eid != self.id),
                "thread already registered with this SimRuntime"
            );
            c.set(Some((self.id, idx)));
        });
        if !granted {
            self.wait_for_grant(idx);
        }
    }

    /// Deregisters the calling thread. After this, the thread may no
    /// longer block on the runtime. The execution token passes to the
    /// next runnable actor (advancing time if everyone is blocked).
    pub fn deregister_thread(&self) {
        let me = self.current_actor();
        CURRENT_ACTOR.with(|c| c.set(None));
        let mut st = self.state.lock();
        st.actors[me].alive = false;
        st.actors[me].running = false;
        debug_assert_eq!(st.current, Some(me));
        st.current = None;
        self.schedule_next(&mut st);
    }

    /// Derives an independent deterministic RNG stream from the engine
    /// seed; used by higher layers (failure injection, workload
    /// generation) so whole scenarios stay reproducible.
    pub fn fork_rng(&self) -> SimRng {
        self.state.lock().rng.fork()
    }

    /// Registers a directed network link; see [`LinkProfile`].
    pub fn add_link(&self, profile: LinkProfile) -> LinkId {
        let mut st = self.state.lock();
        let rng = st.rng.fork();
        st.links.push(LinkState::new(profile, rng));
        LinkId(st.links.len() - 1)
    }

    /// Enables or disables a link. Transfers attempted on a disabled link
    /// return [`TransferError::LinkDisabled`] immediately; flows already in
    /// progress continue (modeling an admission-level outage).
    pub fn set_link_enabled(&self, link: LinkId, enabled: bool) {
        self.state.lock().links[link.0].enabled = enabled;
    }

    /// Current bandwidth multiplier of a link (diagnostics).
    pub fn link_multiplier(&self, link: LinkId) -> f64 {
        self.state.lock().links[link.0].multiplier
    }

    /// Blocks the calling actor while `bytes` flow over `link`, modeling
    /// request latency, processor-sharing bandwidth, and epoch
    /// fluctuation. Zero-byte transfers still pay the request latency
    /// (they model metadata/listing calls).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::LinkDisabled`] if the link is disabled at
    /// request time.
    pub fn transfer(&self, link: LinkId, bytes: u64) -> Result<(), TransferError> {
        let obs = self.obs();
        let latency = {
            let mut st = self.state.lock();
            let l = &mut st.links[link.0];
            if !l.enabled {
                drop(st);
                obs.inc("sim.flows_rejected");
                return Err(TransferError::LinkDisabled);
            }
            l.sample_latency()
        };
        if latency > Duration::ZERO {
            self.sleep(latency);
        }
        if bytes == 0 {
            return Ok(());
        }
        // Events stamp through the registry clock (which reads engine
        // state), so they must be recorded while the state lock is free.
        obs.inc("sim.flows_started");
        obs.add("sim.flow_bytes", bytes);
        obs.event(|| Event::FlowStarted {
            link: link.0,
            bytes,
        });
        let me = self.current_actor();
        let mut st = self.state.lock();
        let now = st.now_ns;
        let resampled = st.links[link.0].maybe_resample(now);
        let flow_id = st.next_flow_id;
        st.next_flow_id += 1;
        let epoch = {
            let a = &mut st.actors[me];
            a.epoch += 1;
            a.epoch
        };
        let _ = epoch;
        st.links[link.0].flows.push(Flow {
            remaining_bytes: bytes as f64,
            actor: me,
        });
        let reason = self.block_prepared(st, me, epoch, BlockKind::Flow(flow_id));
        debug_assert_eq!(reason, WakeReason::FlowDone);
        if resampled > 0 {
            obs.add("sim.epoch_resamples", resampled);
        }
        obs.inc("sim.flows_finished");
        obs.event(|| Event::FlowFinished {
            link: link.0,
            bytes,
        });
        Ok(())
    }

    /// Mean rate in bytes/second a fresh single connection would get on
    /// `link` right now (diagnostics / probing oracle in tests).
    pub fn instantaneous_rate(&self, link: LinkId) -> f64 {
        let (rate, resampled) = {
            let mut st = self.state.lock();
            let now = st.now_ns;
            let l = &mut st.links[link.0];
            let resampled = l.maybe_resample(now);
            let n = l.flows.len() as f64 + 1.0;
            let per_conn = l.profile.per_conn_bytes_per_sec * l.multiplier;
            let agg = l.profile.agg_bytes_per_sec * l.multiplier;
            (per_conn.min(agg / n), resampled)
        };
        if resampled > 0 {
            self.obs().add("sim.epoch_resamples", resampled);
        }
        rate
    }

    fn current_actor(&self) -> usize {
        CURRENT_ACTOR.with(|c| match c.get() {
            Some((eid, idx)) if eid == self.id => idx,
            _ => panic!(
                "thread '{}' is not registered with this SimRuntime; \
                 spawn it via Runtime::spawn_raw or call register_thread",
                std::thread::current().name().unwrap_or("?")
            ),
        })
    }

    /// Core blocking path. The caller must have already (under `st`)
    /// bumped the actor's epoch to `epoch` and registered whatever will
    /// eventually wake it (timer entry, semaphore waiter, flow). Blocking
    /// releases the execution token; returning means the actor was both
    /// woken *and* granted the token again.
    fn block_prepared(
        &self,
        mut st: unidrive_util::sync::MutexGuard<'_, EngineState>,
        me: usize,
        epoch: u64,
        kind: BlockKind,
    ) -> WakeReason {
        {
            let a = &mut st.actors[me];
            debug_assert!(a.running, "actor blocking twice");
            debug_assert_eq!(a.epoch, epoch);
            a.running = false;
            a.block = Some(kind);
            a.woken = None;
        }
        debug_assert_eq!(st.current, Some(me), "blocking without the token");
        st.current = None;
        self.schedule_next(&mut st);
        let cv = Arc::clone(&st.actors[me].cv);
        loop {
            if st.current == Some(me) {
                let reason = st.actors[me]
                    .woken
                    .take()
                    .expect("token granted without a wake reason");
                debug_assert!(st.actors[me].running);
                return reason;
            }
            cv.wait(&mut st);
        }
    }

    /// Hands the execution token to the next runnable actor, advancing
    /// virtual time first if everyone is blocked. Caller must have
    /// cleared `current`. Leaves `current == None` only when no live
    /// actor remains.
    fn schedule_next(&self, st: &mut EngineState) {
        debug_assert!(st.current.is_none());
        loop {
            if let Some(next) = st.runnable.pop_front() {
                st.current = Some(next);
                let cv = Arc::clone(&st.actors[next].cv);
                cv.notify_all();
                return;
            }
            if !st.actors.iter().any(|a| a.alive && !a.running) {
                return; // nothing left to run or wake
            }
            self.advance(st);
        }
    }

    /// Parks the calling thread until its actor holds the token.
    fn wait_for_grant(&self, idx: usize) {
        let mut st = self.state.lock();
        let cv = Arc::clone(&st.actors[idx].cv);
        while st.current != Some(idx) {
            cv.wait(&mut st);
        }
    }

    /// One engine step: move to the earliest event and fire it.
    fn advance(&self, st: &mut EngineState) {
        let mut next: Option<u64> = None;
        let consider = |t: u64, next: &mut Option<u64>| {
            *next = Some(next.map_or(t, |n| n.min(t)));
        };

        // Timer candidates: pop stale heads eagerly.
        while let Some(&Reverse((t, actor, epoch))) = st.timers.peek() {
            if Self::timer_valid(st, actor, epoch) {
                consider(t, &mut next);
                break;
            }
            st.timers.pop();
        }

        // Flow completions and epoch boundaries on busy links.
        let now = Time::from_nanos(st.now_ns);
        for l in &st.links {
            if l.flows.is_empty() {
                continue;
            }
            if let Some(done) = l.earliest_completion(now) {
                consider(done.as_nanos(), &mut next);
            }
            consider(l.next_resample_ns.max(st.now_ns), &mut next);
        }

        let Some(t_next) = next else {
            let blocked: Vec<String> = st
                .actors
                .iter()
                .filter(|a| a.alive && !a.running)
                .map(|a| format!("{} ({:?})", a.name, a.block))
                .collect();
            panic!(
                "virtual-time deadlock: all actors blocked with no pending \
                 events; blocked actors: [{}]",
                blocked.join(", ")
            );
        };
        let t_next = t_next.max(st.now_ns);
        let dt = Duration::from_nanos(t_next - st.now_ns);

        // Integrate flows up to the event instant.
        for l in &mut st.links {
            l.integrate(dt);
        }
        st.now_ns = t_next;

        // Fire due timers. Woken actors join the runnable queue in
        // deterministic heap order (deadline, then actor index).
        while let Some(&Reverse((t, actor, epoch))) = st.timers.peek() {
            if t > st.now_ns {
                break;
            }
            st.timers.pop();
            if Self::timer_valid(st, actor, epoch) {
                // Marking immediately also discards duplicate timers for
                // the same actor via the validity check.
                Self::mark_woken(st, actor, WakeReason::Timeout);
            }
        }

        // Epoch boundaries.
        let now_ns = st.now_ns;
        let mut resampled = 0;
        for l in &mut st.links {
            if !l.flows.is_empty() {
                resampled += l.maybe_resample(now_ns);
            }
        }
        if resampled > 0 {
            // Counter only — no clock access, so safe under the state
            // lock (the separate obs mutex never nests the other way).
            self.obs().add("sim.epoch_resamples", resampled);
        }

        // Flow completions, in link order then flow order — also
        // deterministic, because flow insertion order is itself a
        // function of the (serialized) actor schedule.
        const EPS_BYTES: f64 = 0.5;
        let mut finished: Vec<usize> = Vec::new();
        for l in &mut st.links {
            let mut i = 0;
            while i < l.flows.len() {
                if l.flows[i].remaining_bytes <= EPS_BYTES {
                    let f = l.flows.swap_remove(i);
                    finished.push(f.actor);
                } else {
                    i += 1;
                }
            }
        }
        for actor in finished {
            Self::mark_woken(st, actor, WakeReason::FlowDone);
        }
    }

    fn timer_valid(st: &EngineState, actor: usize, epoch: u64) -> bool {
        let a = &st.actors[actor];
        a.alive && !a.running && a.woken.is_none() && a.epoch == epoch
    }

    /// Wakes `actor`: records the reason and appends it to the runnable
    /// queue. The actual execution grant happens later in FIFO order via
    /// [`SimRuntime::schedule_next`].
    fn mark_woken(st: &mut EngineState, actor: usize, reason: WakeReason) {
        let a = &mut st.actors[actor];
        if a.woken.is_some() || a.running {
            return; // already woken this round
        }
        a.woken = Some(reason);
        a.running = true;
        a.block = None;
        st.runnable.push_back(actor);
    }

    fn sem_acquire(&self, sem: usize, timeout: Option<Duration>) -> bool {
        let me = self.current_actor();
        let mut st = self.state.lock();
        if st.sems[sem].permits > 0 {
            st.sems[sem].permits -= 1;
            return true;
        }
        if timeout == Some(Duration::ZERO) {
            return false;
        }
        let epoch = {
            let a = &mut st.actors[me];
            a.epoch += 1;
            a.epoch
        };
        st.sems[sem].waiters.push_back((me, epoch));
        if let Some(t) = timeout {
            let deadline = st.now_ns + t.as_nanos() as u64;
            st.timers.push(Reverse((deadline, me, epoch)));
        }
        let reason = self.block_prepared(st, me, epoch, BlockKind::Sem(sem));
        match reason {
            WakeReason::Acquired => true,
            WakeReason::Timeout => false,
            other => unreachable!("{other:?} wake on semaphore wait"),
        }
    }

    fn notify_generation(&self, idx: usize) -> u64 {
        self.state.lock().notifies[idx].generation
    }

    /// Blocks the calling actor until the notifier's generation moves
    /// past `seen` (no-op if it already has). Returns `false` only on
    /// timeout. Waiters wake in FIFO registration order, keeping the
    /// schedule deterministic.
    fn notify_wait(&self, idx: usize, seen: u64, timeout: Option<Duration>) -> bool {
        let me = self.current_actor();
        let mut st = self.state.lock();
        if st.notifies[idx].generation != seen {
            return true; // a broadcast already landed; never lose it
        }
        let epoch = {
            let a = &mut st.actors[me];
            a.epoch += 1;
            a.epoch
        };
        st.notifies[idx].waiters.push_back((me, epoch));
        if let Some(t) = timeout {
            let deadline = st.now_ns + t.as_nanos() as u64;
            st.timers.push(Reverse((deadline, me, epoch)));
        }
        let reason = self.block_prepared(st, me, epoch, BlockKind::Notify(idx));
        match reason {
            WakeReason::Notified => true,
            WakeReason::Timeout => false,
            other => unreachable!("{other:?} wake on notifier wait"),
        }
    }

    fn notify_broadcast(&self, idx: usize) {
        let mut st = self.state.lock();
        st.notifies[idx].generation += 1;
        // Wake everyone currently parked, FIFO. Entries staled by a
        // timeout wake are filtered by the epoch/block check.
        let waiters = std::mem::take(&mut st.notifies[idx].waiters);
        for (actor, epoch) in waiters {
            let valid = {
                let a = &st.actors[actor];
                a.alive
                    && !a.running
                    && a.woken.is_none()
                    && a.epoch == epoch
                    && a.block == Some(BlockKind::Notify(idx))
            };
            if valid {
                Self::mark_woken(&mut st, actor, WakeReason::Notified);
            }
        }
    }

    fn sem_release(&self, sem: usize, n: usize) {
        let mut st = self.state.lock();
        st.sems[sem].permits += n;
        loop {
            if st.sems[sem].permits == 0 {
                break;
            }
            let Some((actor, epoch)) = st.sems[sem].waiters.pop_front() else {
                break;
            };
            let valid = {
                let a = &st.actors[actor];
                a.alive
                    && !a.running
                    && a.woken.is_none()
                    && a.epoch == epoch
                    && a.block == Some(BlockKind::Sem(sem))
            };
            if valid {
                st.sems[sem].permits -= 1;
                Self::mark_woken(&mut st, actor, WakeReason::Acquired);
            }
        }
    }
}

impl Runtime for SimRuntime {
    fn now(&self) -> Time {
        Time::from_nanos(self.state.lock().now_ns)
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let me = self.current_actor();
        let mut st = self.state.lock();
        let epoch = {
            let a = &mut st.actors[me];
            a.epoch += 1;
            a.epoch
        };
        let deadline = st.now_ns + d.as_nanos() as u64;
        st.timers.push(Reverse((deadline, me, epoch)));
        let reason = self.block_prepared(st, me, epoch, BlockKind::Sleep);
        debug_assert_eq!(reason, WakeReason::Timeout);
    }

    fn spawn_raw(&self, name: &str, f: Box<dyn FnOnce() + Send>) {
        // Register the actor *before* the thread starts so the engine
        // never advances past its birth. The new actor queues for the
        // execution token behind the spawner; its thread body waits for
        // the grant before running `f`, keeping the schedule serial and
        // deterministic regardless of OS thread startup timing.
        let idx = {
            let mut st = self.state.lock();
            st.actors.push(Actor {
                name: name.to_owned(),
                epoch: 0,
                running: true,
                alive: true,
                block: None,
                woken: None,
                cv: Arc::new(Condvar::new()),
            });
            let idx = st.actors.len() - 1;
            st.runnable.push_back(idx);
            idx
        };
        let engine_id = self.id;
        let this = self.strong_self();
        std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                CURRENT_ACTOR.with(|c| c.set(Some((engine_id, idx))));
                this.wait_for_grant(idx);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                {
                    let mut st = this.state.lock();
                    // The closure may have deregistered itself already;
                    // only settle the books once.
                    if st.actors[idx].alive {
                        st.actors[idx].alive = false;
                        st.actors[idx].running = false;
                        debug_assert_eq!(st.current, Some(idx));
                        st.current = None;
                        this.schedule_next(&mut st);
                    }
                }
                if let Err(payload) = result {
                    std::panic::resume_unwind(payload);
                }
            })
            .expect("failed to spawn OS thread");
    }

    fn semaphore(&self, permits: usize) -> Arc<dyn Semaphore> {
        let idx = {
            let mut st = self.state.lock();
            st.sems.push(SemState {
                permits,
                waiters: VecDeque::new(),
            });
            st.sems.len() - 1
        };
        Arc::new(SimSemaphore {
            engine: self.strong_self(),
            idx,
        })
    }

    fn notifier(&self) -> Arc<dyn Notifier> {
        let idx = {
            let mut st = self.state.lock();
            st.notifies.push(NotifyState {
                generation: 0,
                waiters: VecDeque::new(),
            });
            st.notifies.len() - 1
        };
        Arc::new(SimNotifier {
            engine: self.strong_self(),
            idx,
        })
    }
}

/// Error returned by [`SimRuntime::transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The link was administratively disabled (simulated outage).
    LinkDisabled,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::LinkDisabled => write!(f, "link is disabled"),
        }
    }
}

impl std::error::Error for TransferError {}

struct SimSemaphore {
    engine: Arc<SimRuntime>,
    idx: usize,
}

impl Semaphore for SimSemaphore {
    fn acquire(&self) {
        let ok = self.engine.sem_acquire(self.idx, None);
        debug_assert!(ok);
    }

    fn acquire_timeout(&self, timeout: Duration) -> bool {
        self.engine.sem_acquire(self.idx, Some(timeout))
    }

    fn try_acquire(&self) -> bool {
        self.engine.sem_acquire(self.idx, Some(Duration::ZERO))
    }

    fn release(&self, n: usize) {
        self.engine.sem_release(self.idx, n);
    }

    fn permits(&self) -> usize {
        self.engine.state.lock().sems[self.idx].permits
    }
}

struct SimNotifier {
    engine: Arc<SimRuntime>,
    idx: usize,
}

impl Notifier for SimNotifier {
    fn generation(&self) -> u64 {
        self.engine.notify_generation(self.idx)
    }

    fn wait(&self, seen: u64) {
        let ok = self.engine.notify_wait(self.idx, seen, None);
        debug_assert!(ok);
    }

    fn wait_timeout(&self, seen: u64, timeout: Duration) -> bool {
        self.engine.notify_wait(self.idx, seen, Some(timeout))
    }

    fn notify_all(&self) {
        self.engine.notify_broadcast(self.idx);
    }
}
