//! The data plane facade: from file bytes to erasure-coded blocks in
//! the multi-cloud and back (paper §6).

use std::collections::HashSet;
use std::sync::Arc;

use unidrive_util::bytes::Bytes;
use unidrive_util::pool::WorkerPool;
use unidrive_chunker::Segment;
use unidrive_cloud::CloudSet;
use unidrive_crypto::Sha1;
use unidrive_erasure::Codec;
use unidrive_meta::{block_path, SegmentId, SyncFolderImage};
use unidrive_sim::Runtime;

use crate::download::{run_download_in, DownloadReport, SegmentFetch};
use crate::plan::{DataPlaneConfig, SegmentData};
use crate::probe::BandwidthProbe;
use crate::upload::{run_upload_opts, FileUpload, UploadOptions, UploadReport};

/// A file (path + content) handed to [`DataPlane::upload_files`].
#[derive(Debug, Clone)]
pub struct UploadRequest {
    /// Sync-folder-relative path.
    pub path: String,
    /// Whole file content.
    pub data: Bytes,
}

/// Segmentation outcome for one uploaded file, needed to build its
/// metadata [`Snapshot`](unidrive_meta::Snapshot).
#[derive(Debug, Clone)]
pub struct FileSegmentation {
    /// Path as supplied.
    pub path: String,
    /// `(segment id, length)` in file order.
    pub segments: Vec<(SegmentId, u64)>,
    /// Total file size.
    pub size: u64,
}

/// The data plane: segmentation, erasure coding, and the
/// over-provisioning block scheduler over a cloud set.
pub struct DataPlane {
    rt: Arc<dyn Runtime>,
    clouds: CloudSet,
    config: DataPlaneConfig,
    codec: Arc<Codec>,
    probe: Arc<BandwidthProbe>,
    ingest_pool: WorkerPool,
}

impl std::fmt::Debug for DataPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataPlane")
            .field("clouds", &self.clouds)
            .field("config", &self.config)
            .finish()
    }
}

impl DataPlane {
    /// Creates a data plane over `clouds`.
    ///
    /// # Panics
    ///
    /// Panics if `config.redundancy.clouds()` disagrees with
    /// `clouds.len()`.
    pub fn new(rt: Arc<dyn Runtime>, clouds: CloudSet, config: DataPlaneConfig) -> Self {
        assert_eq!(
            config.redundancy.clouds(),
            clouds.len(),
            "redundancy config is for a different number of clouds"
        );
        let codec = Arc::new(Codec::for_config(&config.redundancy).expect("validated config"));
        let probe = Arc::new(
            BandwidthProbe::new(clouds.len(), 1_000_000.0).with_obs(config.obs.clone()),
        );
        let ingest_pool = WorkerPool::new(config.ingest_threads);
        DataPlane {
            rt,
            clouds,
            config,
            codec,
            probe,
            ingest_pool,
        }
    }

    /// Content-defined segmentation with *both* halves fanned out
    /// across the ingest pool: cut-point discovery scans disjoint
    /// slices in parallel (candidate positions are judged on their own
    /// trailing window, so the merged set — and therefore the fold
    /// that applies the size contract — cannot see the slicing), then
    /// each segment's SHA-1 runs on a worker, with results collected
    /// by index. Output is byte-for-byte what
    /// [`unidrive_chunker::segment_bytes`] returns, at any thread
    /// count.
    ///
    /// Emits the `chunker.*` windowed series (bytes scanned, segments
    /// cut, resync skips), labelled by the configured
    /// [`ChunkerKind`](unidrive_chunker::ChunkerKind).
    fn segment_parallel(&self, data: &[u8]) -> Vec<Segment> {
        let (cuts, stats) = unidrive_chunker::cut_points_parallel_stats(
            data,
            &self.config.chunker,
            &self.ingest_pool,
        );
        let obs = &self.config.obs;
        let kind = self.config.chunker.kind.label();
        obs.series_add("chunker.bytes", kind, data.len() as u64);
        obs.series_add("chunker.segments", kind, cuts.len() as u64);
        obs.series_add("chunker.resync_skips", kind, stats.skipped as u64);
        self.ingest_pool
            .par_map_indexed(&cuts, |_, &(offset, len)| Segment {
                offset,
                len,
                digest: Sha1::digest(&data[offset..offset + len]),
            })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DataPlaneConfig {
        &self.config
    }

    /// The bandwidth probe (shared with the schedulers).
    pub fn probe(&self) -> &Arc<BandwidthProbe> {
        &self.probe
    }

    /// The cloud set.
    pub fn clouds(&self) -> &CloudSet {
        &self.clouds
    }

    /// Content-defined segmentation of one file (no network traffic).
    pub fn segment_file(&self, path: &str, data: &[u8]) -> FileSegmentation {
        let segments = self
            .segment_parallel(data)
            .into_iter()
            .map(|s| (SegmentId(s.digest), s.len as u64))
            .collect();
        FileSegmentation {
            path: path.to_owned(),
            segments,
            size: data.len() as u64,
        }
    }

    /// Uploads a batch of files: segments them, skips segments in
    /// `known` (deduplication against the current metadata), and runs
    /// the two-phase over-provisioning scheduler. Returns the upload
    /// report plus the per-file segmentations (for metadata snapshots).
    pub fn upload_files(
        &self,
        requests: Vec<UploadRequest>,
        known: &HashSet<SegmentId>,
    ) -> (UploadReport, Vec<FileSegmentation>) {
        self.upload_files_opts(requests, known, UploadOptions::default())
    }

    /// [`upload_files`](DataPlane::upload_files) with [`UploadOptions`]
    /// (availability detach, asynchronous block sink).
    pub fn upload_files_opts(
        &self,
        requests: Vec<UploadRequest>,
        known: &HashSet<SegmentId>,
        options: UploadOptions,
    ) -> (UploadReport, Vec<FileSegmentation>) {
        let mut segmentations = Vec::new();
        let mut uploads = Vec::new();
        let mut scheduled: HashSet<SegmentId> = HashSet::new();
        for req in &requests {
            let cuts = self.segment_parallel(&req.data);
            let mut seg_meta = Vec::new();
            let mut to_send = Vec::new();
            for s in cuts {
                let id = SegmentId(s.digest);
                seg_meta.push((id, s.len as u64));
                if !known.contains(&id) && scheduled.insert(id) {
                    to_send.push(SegmentData {
                        id,
                        data: req.data.slice(s.range()),
                    });
                }
            }
            segmentations.push(FileSegmentation {
                path: req.path.clone(),
                segments: seg_meta,
                size: req.data.len() as u64,
            });
            uploads.push(FileUpload {
                path: req.path.clone(),
                segments: to_send,
            });
        }
        let report = run_upload_opts(
            &self.rt,
            &self.clouds,
            &self.codec,
            &self.config,
            &self.probe,
            uploads,
            options,
        );
        (report, segmentations)
    }

    /// Downloads and reconstructs the given segments.
    pub fn download_segments(&self, fetches: Vec<SegmentFetch>) -> DownloadReport {
        self.download_segments_in(fetches, None)
    }

    /// [`download_segments`](DataPlane::download_segments) with span
    /// causality: the batch span is parented to `parent` (usually a
    /// `sync.round` span).
    pub fn download_segments_in(
        &self,
        fetches: Vec<SegmentFetch>,
        parent: Option<unidrive_obs::SpanId>,
    ) -> DownloadReport {
        run_download_in(
            &self.rt,
            &self.clouds,
            &self.codec,
            &self.config,
            &self.probe,
            fetches,
            parent,
        )
    }

    /// Downloads a whole file per the metadata `image`: fetches every
    /// missing segment and concatenates.
    ///
    /// # Errors
    ///
    /// First failure from the underlying fetches, or a missing pool
    /// entry.
    pub fn download_file(
        &self,
        image: &SyncFolderImage,
        path: &str,
    ) -> Result<Vec<u8>, crate::DownloadError> {
        let entry = image.file(path).ok_or(crate::DownloadError::NotEnoughBlocks {
            segment: SegmentId(unidrive_crypto::Sha1::digest(path.as_bytes())),
            got: 0,
            need: self.codec.k(),
        })?;
        let fetches: Vec<SegmentFetch> = entry
            .snapshot
            .segments
            .iter()
            .map(|id| {
                let pool = image.segment(id).expect("pool entry for snapshot segment");
                SegmentFetch {
                    id: *id,
                    len: pool.len,
                    blocks: pool.blocks.clone(),
                }
            })
            .collect();
        let order: Vec<SegmentId> = fetches.iter().map(|f| f.id).collect();
        let mut report = self.download_segments(fetches);
        if let Some(err) = report.failed.pop() {
            return Err(err);
        }
        let mut out = Vec::with_capacity(entry.snapshot.size as usize);
        for id in order {
            out.extend_from_slice(
                report
                    .segments
                    .get(&id)
                    .expect("complete report contains every segment"),
            );
        }
        Ok(out)
    }

    /// Deletes the stored blocks of garbage-collected segments from the
    /// clouds (best effort).
    pub fn delete_blocks(&self, garbage: &[(SegmentId, unidrive_meta::SegmentEntry)]) {
        for (id, entry) in garbage {
            for b in &entry.blocks {
                // Metadata can reference a cloud that has since been
                // removed from the set (§6.2, removing a CCS); its
                // blocks are unreachable, not a crash.
                let Some(cloud) = self.clouds.try_get(unidrive_cloud::CloudId(b.cloud as usize))
                else {
                    continue;
                };
                let _ = cloud.delete(&block_path(id, b.index));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unidrive_cloud::{CloudStore, SimCloud, SimCloudConfig};
    use unidrive_erasure::RedundancyConfig;
    use unidrive_obs::Obs;
    use unidrive_sim::SimRuntime;

    fn plane(seed: u64) -> (Arc<SimRuntime>, DataPlane) {
        plane_with_threads(seed, 1)
    }

    fn plane_with_threads(seed: u64, ingest_threads: usize) -> (Arc<SimRuntime>, DataPlane) {
        plane_with_config(seed, ingest_threads, unidrive_chunker::ChunkerKind::Rabin, Obs::noop())
    }

    fn plane_with_config(
        seed: u64,
        ingest_threads: usize,
        kind: unidrive_chunker::ChunkerKind,
        obs: Obs,
    ) -> (Arc<SimRuntime>, DataPlane) {
        let sim = SimRuntime::new(seed);
        let clouds = CloudSet::new(
            (0..5)
                .map(|i| {
                    Arc::new(SimCloud::new(
                        &sim,
                        format!("c{i}"),
                        SimCloudConfig::steady(2e6, 10e6),
                    )) as Arc<dyn CloudStore>
                })
                .collect(),
        );
        let mut config = DataPlaneConfig::with_params(
            RedundancyConfig::new(5, 3, 3, 2).unwrap(),
            64 * 1024,
        );
        config.chunker = config.chunker.with_kind(kind);
        config.ingest_threads = ingest_threads;
        config.obs = obs;
        let rt = sim.clone().as_runtime();
        (sim, DataPlane::new(rt, clouds, config))
    }

    fn content(len: usize, seed: u64) -> Bytes {
        let mut state = seed | 1;
        Bytes::from(
            (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state >> 32) as u8
                })
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn upload_then_download_file_round_trips() {
        let (_sim, plane) = plane(1);
        let data = content(300_000, 42);
        let (report, segs) = plane.upload_files(
            vec![UploadRequest {
                path: "doc.bin".into(),
                data: data.clone(),
            }],
            &HashSet::new(),
        );
        assert!(report.all_available());

        // Build an image the way the client would.
        let mut image = SyncFolderImage::new();
        for (id, len) in &segs[0].segments {
            image.ensure_segment(*id, *len);
        }
        for (id, b) in &report.blocks {
            image.record_block(*id, *b);
        }
        image.upsert_file(
            "doc.bin",
            unidrive_meta::Snapshot {
                mtime_ns: 0,
                size: segs[0].size,
                segments: segs[0].segments.iter().map(|(id, _)| *id).collect(),
            },
        );
        let restored = plane.download_file(&image, "doc.bin").unwrap();
        assert_eq!(restored, data.to_vec());
    }

    #[test]
    fn dedup_skips_known_segments() {
        let (_sim, plane) = plane(2);
        let data = content(150_000, 7);
        let (first, segs) = plane.upload_files(
            vec![UploadRequest {
                path: "a".into(),
                data: data.clone(),
            }],
            &HashSet::new(),
        );
        assert!(!first.blocks.is_empty());
        let known: HashSet<SegmentId> = segs[0].segments.iter().map(|(id, _)| *id).collect();
        let (second, _) = plane.upload_files(
            vec![UploadRequest {
                path: "b".into(),
                data,
            }],
            &known,
        );
        assert!(second.all_available());
        assert!(second.blocks.is_empty(), "dedup hit must transfer nothing");
    }

    #[test]
    fn delete_blocks_removes_objects() {
        let (_sim, plane) = plane(3);
        let data = content(100_000, 9);
        let (report, segs) = plane.upload_files(
            vec![UploadRequest {
                path: "x".into(),
                data,
            }],
            &HashSet::new(),
        );
        let mut image = SyncFolderImage::new();
        for (id, len) in &segs[0].segments {
            image.ensure_segment(*id, *len);
        }
        for (id, b) in &report.blocks {
            image.record_block(*id, *b);
        }
        let garbage = image.collect_garbage(); // nothing referenced them
        assert!(!garbage.is_empty());
        plane.delete_blocks(&garbage);
        for (id, entry) in &garbage {
            for b in &entry.blocks {
                let cloud = plane
                    .clouds()
                    .get(unidrive_cloud::CloudId(b.cloud as usize));
                assert!(!cloud.exists(&block_path(id, b.index)).unwrap());
            }
        }
    }

    #[test]
    fn parallel_ingest_segmentation_matches_serial() {
        // The determinism contract of the ingest pool: any thread count
        // yields the exact segmentation the serial chunker computes.
        let data = content(700_000, 31);
        let (_sim, serial) = plane_with_threads(10, 1);
        let reference = serial.segment_file("f", &data);
        assert!(reference.segments.len() > 5, "want a multi-segment file");
        for threads in [2usize, 8] {
            let (_sim, parallel) = plane_with_threads(10, threads);
            let got = parallel.segment_file("f", &data);
            assert_eq!(got.segments, reference.segments, "threads={threads}");
            assert_eq!(got.size, reference.size);
        }
    }

    #[test]
    fn parallel_ingest_upload_is_byte_identical() {
        // Full upload path at 1/2/8 ingest threads on same-seed sims:
        // the placements, segmentations, and virtual-time outcomes must
        // not see the thread count at all.
        let data = content(500_000, 33);
        let run = |threads: usize| {
            let (_sim, plane) = plane_with_threads(11, threads);
            let (report, segs) = plane.upload_files(
                vec![UploadRequest {
                    path: "par.bin".into(),
                    data: data.clone(),
                }],
                &HashSet::new(),
            );
            assert!(report.all_available(), "threads={threads}");
            (report.blocks, report.timeline, segs[0].segments.clone())
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn gear_ingest_matches_serial_and_round_trips() {
        // The gear chunker through the full data plane: segmentation is
        // thread-count-invariant, and an uploaded gear-chunked file
        // reassembles byte-identically.
        use unidrive_chunker::ChunkerKind;
        let data = content(700_000, 51);
        let (_sim, serial) = plane_with_config(20, 1, ChunkerKind::Gear, Obs::noop());
        let reference = serial.segment_file("g", &data);
        assert!(reference.segments.len() > 5, "want a multi-segment file");
        for threads in [2usize, 8] {
            let (_sim, parallel) = plane_with_config(20, threads, ChunkerKind::Gear, Obs::noop());
            assert_eq!(
                parallel.segment_file("g", &data).segments,
                reference.segments,
                "threads={threads}"
            );
        }
        let (_sim, plane) = plane_with_config(21, 4, ChunkerKind::Gear, Obs::noop());
        let (report, segs) = plane.upload_files(
            vec![UploadRequest {
                path: "g.bin".into(),
                data: data.clone(),
            }],
            &HashSet::new(),
        );
        assert!(report.all_available());
        let mut image = SyncFolderImage::new();
        for (id, len) in &segs[0].segments {
            image.ensure_segment(*id, *len);
        }
        for (id, b) in &report.blocks {
            image.record_block(*id, *b);
        }
        image.upsert_file(
            "g.bin",
            unidrive_meta::Snapshot {
                mtime_ns: 0,
                size: segs[0].size,
                segments: segs[0].segments.iter().map(|(id, _)| *id).collect(),
            },
        );
        assert_eq!(plane.download_file(&image, "g.bin").unwrap(), data.to_vec());
    }

    #[test]
    fn ingest_emits_chunker_series() {
        // The chunker.* windowed series surface in obs_report's
        // sparkline digest; here we pin that ingest records them,
        // labelled by kind, with sane values.
        use unidrive_chunker::ChunkerKind;
        let registry = unidrive_obs::Registry::new();
        registry.set_clock(|| 1);
        registry.enable_series(1_000_000);
        let obs = Obs::with_registry(std::sync::Arc::clone(&registry));
        let (_sim, plane) = plane_with_config(22, 2, ChunkerKind::Gear, obs);
        let data = content(400_000, 61);
        let seg = plane.segment_file("s", &data);
        let snap = registry.series_snapshot();
        let bytes = snap.entry("chunker.bytes", "gear").expect("bytes series");
        assert_eq!(bytes.windows[0].stat.sum, data.len() as u64);
        let segments = snap.entry("chunker.segments", "gear").expect("segments series");
        assert_eq!(segments.windows[0].stat.sum, seg.segments.len() as u64);
        assert!(snap.entry("chunker.resync_skips", "gear").is_some());
        assert!(snap.entry("chunker.bytes", "rabin").is_none());
    }

    #[test]
    fn multi_segment_files_reassemble_in_order() {
        let (_sim, plane) = plane(4);
        // Big enough to span several 64 KB-θ segments.
        let data = content(500_000, 11);
        let (report, segs) = plane.upload_files(
            vec![UploadRequest {
                path: "big.bin".into(),
                data: data.clone(),
            }],
            &HashSet::new(),
        );
        assert!(segs[0].segments.len() > 2, "expected multiple segments");
        let mut image = SyncFolderImage::new();
        for (id, len) in &segs[0].segments {
            image.ensure_segment(*id, *len);
        }
        for (id, b) in &report.blocks {
            image.record_block(*id, *b);
        }
        image.upsert_file(
            "big.bin",
            unidrive_meta::Snapshot {
                mtime_ns: 0,
                size: segs[0].size,
                segments: segs[0].segments.iter().map(|(id, _)| *id).collect(),
            },
        );
        assert_eq!(plane.download_file(&image, "big.bin").unwrap(), data.to_vec());
    }
}
